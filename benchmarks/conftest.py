"""Shared helpers for the benchmark harness.

Every benchmark here plays two roles:

1. **Reproduction** — it asserts the paper's values (so ``--benchmark-
   only`` runs double as a verification pass) and prints a
   paper-vs-measured table via :func:`report`.
2. **Measurement** — it times the underlying computation with
   pytest-benchmark, giving regression numbers for the library itself.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

from __future__ import annotations


def report(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table.

    ``rows`` are (quantity, paper value, measured value) triples.
    """
    width = max(24, max((len(r[0]) for r in rows), default=0) + 2)
    line = f"{'quantity':<{width}} {'paper':>14} {'measured':>14}"
    print()
    print(f"== {title}")
    print(line)
    print("-" * len(line))
    for name, paper, measured in rows:
        print(f"{name:<{width}} {_fmt(paper):>14} {_fmt(measured):>14}")


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
