"""Shared helpers for the benchmark harness.

Every benchmark here plays two roles:

1. **Reproduction** — it asserts the paper's values (so ``--benchmark-
   only`` runs double as a verification pass) and prints a
   paper-vs-measured table via :func:`report`.
2. **Measurement** — it times the underlying computation with
   pytest-benchmark, giving regression numbers for the library itself.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.

Machine-readable results: an autouse fixture records every
:func:`report` table (plus each test's wall time) and, at session end,
writes one ``BENCH_<module>.json`` per benchmark module — the files
the performance trajectory consumes.  They land in the repository
root by default; set ``REPRO_BENCH_DIR`` to redirect (or to an empty
string to disable).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

#: nodeid -> list of recorded report tables.
_RESULTS: dict[str, list[dict]] = {}
#: nodeid -> wall-clock seconds for the whole test (setup excluded).
_WALL: dict[str, float] = {}
#: The test currently executing (set by the autouse fixture).
_CURRENT: dict[str, str | None] = {"nodeid": None}


def report(title: str, rows: list[tuple[str, object, object]]) -> None:
    """Print a paper-vs-measured table and record it for BENCH JSON.

    ``rows`` are (quantity, paper value, measured value) triples.
    """
    width = max(24, max((len(r[0]) for r in rows), default=0) + 2)
    line = f"{'quantity':<{width}} {'paper':>14} {'measured':>14}"
    print()
    print(f"== {title}")
    print(line)
    print("-" * len(line))
    for name, paper, measured in rows:
        print(f"{name:<{width}} {_fmt(paper):>14} {_fmt(measured):>14}")
    nodeid = _CURRENT["nodeid"]
    if nodeid is not None:
        _RESULTS.setdefault(nodeid, []).append(
            {
                "title": title,
                "rows": [
                    {
                        "quantity": name,
                        "paper": _json_safe(paper),
                        "measured": _json_safe(measured),
                    }
                    for name, paper, measured in rows
                ],
            }
        )


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@pytest.fixture(autouse=True)
def bench_capture(request):
    """Route :func:`report` tables to the current test and time it."""
    _CURRENT["nodeid"] = request.node.nodeid
    start = time.perf_counter()
    try:
        yield
    finally:
        _WALL[request.node.nodeid] = time.perf_counter() - start
        _CURRENT["nodeid"] = None


def _out_dir() -> Path | None:
    configured = os.environ.get("REPRO_BENCH_DIR")
    if configured is not None:
        return Path(configured) if configured else None
    return Path(__file__).resolve().parent.parent


def pytest_sessionfinish(session, exitstatus) -> None:
    """Write one ``BENCH_<module>.json`` per benchmark module."""
    out_dir = _out_dir()
    if out_dir is None or not _RESULTS:
        return
    by_module: dict[str, dict[str, list[dict]]] = {}
    for nodeid, tables in _RESULTS.items():
        module = Path(nodeid.split("::", 1)[0]).stem
        by_module.setdefault(module, {})[nodeid] = tables
    out_dir.mkdir(parents=True, exist_ok=True)
    for module, tests in sorted(by_module.items()):
        stem = module.removeprefix("bench_")
        payload = {
            "module": module,
            "generated_at": time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            ),
            "tests": {
                nodeid: {
                    "wall_seconds": _WALL.get(nodeid),
                    "reports": tables,
                }
                for nodeid, tables in sorted(tests.items())
            },
        }
        path = out_dir / f"BENCH_{stem}.json"
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
