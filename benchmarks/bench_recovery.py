"""Recovery — restart time vs WM size, snapshot interval, compaction.

Not a paper figure: this charts the durable-store subsystem added on
top of the reproduction.  Three claims are measured:

1. **Restart vs WM size** — cold-start replay cost grows with the
   journalled history, and a snapshot collapses it: recovering from a
   checkpoint is bounded by live elements, not by history length.
2. **Restart vs snapshot interval** — the closer the last checkpoint,
   the fewer WAL records replay on restart; the interval is the knob
   trading checkpoint overhead for restart latency.
3. **Compaction bounds the WAL** — under churn (add/remove pairs),
   incremental compaction keeps total WAL bytes flat while the
   uncompacted log grows linearly in the number of deltas.

Set ``REPRO_BENCH_SMOKE=1`` (CI recovery-smoke job) for a reduced
grid; the committed ``BENCH_recovery.json`` carries the full grid
(up to ~1M WMEs).
"""

import os
import time

import pytest
from conftest import report

from repro.wm import DurableStore, WorkingMemory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Working-memory sizes for the restart-time sweep.  Tier titles stay
#: the same in smoke and full runs so CI's reduced grid diffs cleanly
#: against the committed full-grid baseline (tier 3 exists only in
#: the full run).
SIZES = (2_000, 10_000) if SMOKE else (10_000, 100_000, 1_000_000)
#: Ops for the snapshot-interval sweep; intervals divide it.
INTERVAL_OPS = 2_000 if SMOKE else 50_000
INTERVALS = (0, 4, 64)  # checkpoints per run
#: Churn rounds for the compaction-bound sweep.
CHURN_ROUNDS = 4 if SMOKE else 10
CHURN_OPS = 200 if SMOKE else 2_000  # add/remove pairs per round


def _populate(directory, count):
    """Journal a history of ``3 * count`` deltas leaving ``count``
    live elements (each kept add rides with a churned add/remove
    pair), with no fsync — build cost is not the thing under test.
    Returns total WAL bytes.  The 3:1 history:live ratio is what
    separates replay restart (pays for history) from snapshot restart
    (pays for live elements only)."""
    memory = WorkingMemory()
    store = DurableStore(
        memory,
        directory,
        durability="none",
        segment_max_records=100_000,
    )
    for i in range(count):
        memory.make("item", i=i, payload=i * 7 % 1013)
        temp = memory.make("temp", i=i)
        memory.remove(temp)
    wal_bytes = store.wal_bytes()
    store.close()
    return wal_bytes


def _timed_open(directory):
    start = time.perf_counter()
    memory, store = DurableStore.open(directory, durability="none")
    seconds = time.perf_counter() - start
    report_ = store.last_recovery
    store.close()
    return memory, seconds, report_


def test_restart_time_vs_wm_size(tmp_path):
    """Replay restart is linear in history; snapshot restart is
    bounded by live elements and must beat replay at every size.

    Sizes loop inside one test (not parametrize) so the nodeid and
    the per-tier report titles are identical in smoke and full runs —
    CI's reduced grid diffs against the committed baseline without
    structural noise (the full run just has an extra tier)."""
    for tier, size in enumerate(SIZES, start=1):
        directory = tmp_path / f"tier{tier}"
        wal_bytes = _populate(directory, size)

        memory, replay_seconds, rec = _timed_open(directory)
        assert len(memory) == size
        assert rec.replayed == 3 * size

        # Checkpoint, then restart again from the snapshot.
        _, store = DurableStore.open(directory, durability="none")
        store.checkpoint()
        store.close()
        memory2, snapshot_seconds, rec2 = _timed_open(directory)
        assert len(memory2) == size
        assert rec2.replayed == 0

        report(
            f"recovery — restart vs WM size (tier {tier})",
            [
                ("working-memory elements", "-", size),
                ("WAL records journalled", "-", 3 * size),
                ("WAL bytes journalled", "-", wal_bytes),
                ("replay restart (s)", "-", round(replay_seconds, 4)),
                (
                    "replay records/s",
                    "-",
                    round(3 * size / replay_seconds)
                    if replay_seconds
                    else 0,
                ),
                ("snapshot restart (s)", "-",
                 round(snapshot_seconds, 4)),
                (
                    "snapshot speedup",
                    ">= 1",
                    round(replay_seconds / snapshot_seconds, 2)
                    if snapshot_seconds
                    else float("inf"),
                ),
            ],
        )


@pytest.mark.parametrize("checkpoints", INTERVALS)
def test_restart_time_vs_snapshot_interval(tmp_path, checkpoints):
    """Fixed churn workload, varying checkpoint cadence: restart
    replays only the post-checkpoint tail, so more frequent snapshots
    buy faster restarts."""
    interval = INTERVAL_OPS // checkpoints if checkpoints else 0
    memory = WorkingMemory()
    store = DurableStore(
        memory,
        tmp_path,
        durability="none",
        segment_max_records=100_000,
    )
    checkpoint_seconds = 0.0
    live = []
    for i in range(INTERVAL_OPS):
        if i % 3 == 0 and live:
            memory.remove(live.pop())
        else:
            live.append(memory.make("item", i=i))
        if interval and i and i % interval == 0:
            start = time.perf_counter()
            store.checkpoint()
            checkpoint_seconds += time.perf_counter() - start
    elements = len(memory)
    store.close()

    recovered, restart_seconds, rec = _timed_open(tmp_path)
    assert len(recovered) == elements
    if interval:
        assert rec.replayed < INTERVAL_OPS

    label = f"{checkpoints} checkpoints" if interval else "never"
    report(
        f"recovery — restart vs snapshot interval ({label})",
        [
            ("ops journalled", "-", INTERVAL_OPS),
            ("checkpoints taken", checkpoints, checkpoints),
            ("checkpoint interval (ops)", "-", interval),
            ("checkpoint overhead (s)", "-",
             round(checkpoint_seconds, 4)),
            ("records replayed on restart", "-", rec.replayed),
            ("restart (s)", "-", round(restart_seconds, 4)),
        ],
    )


def test_compaction_bounds_wal_size(tmp_path):
    """Churn workload, no checkpoints: the compacted WAL plateaus
    (bytes stay near the post-first-round floor) while the
    uncompacted WAL grows linearly with deltas."""

    def churn(store, memory):
        for i in range(CHURN_OPS):
            wme = memory.make("temp", i=i)
            memory.remove(wme)

    plain_dir = tmp_path / "plain"
    compact_dir = tmp_path / "compacted"
    plain_sizes, compact_sizes = [], []
    compact_seconds = 0.0

    memory_a = WorkingMemory()
    store_a = DurableStore(
        memory_a, plain_dir, durability="none",
        segment_max_records=512,
    )
    memory_b = WorkingMemory()
    store_b = DurableStore(
        memory_b, compact_dir, durability="none",
        segment_max_records=512,
    )
    for _ in range(CHURN_ROUNDS):
        churn(store_a, memory_a)
        plain_sizes.append(store_a.wal_bytes())
        churn(store_b, memory_b)
        start = time.perf_counter()
        store_b.compact()
        compact_seconds += time.perf_counter() - start
        compact_sizes.append(store_b.wal_bytes())
    store_a.close()
    store_b.close()

    # Plateau, not linear: the final compacted WAL must sit at the
    # first-round floor (a noop marker), while the plain WAL ends
    # ~CHURN_ROUNDS times its own first round.
    assert compact_sizes[-1] <= compact_sizes[0] + 256
    assert plain_sizes[-1] >= plain_sizes[0] * (CHURN_ROUNDS - 1)

    # Both recover to the same (empty) state.
    recovered_a, _, _ = _timed_open(plain_dir)
    recovered_b, _, _ = _timed_open(compact_dir)
    assert len(recovered_a) == len(recovered_b) == 0

    deltas = 2 * CHURN_OPS * CHURN_ROUNDS
    report(
        "recovery — compaction bounds WAL size (churn)",
        [
            ("deltas journalled", "-", deltas),
            ("uncompacted WAL bytes (round 1)", "-", plain_sizes[0]),
            ("uncompacted WAL bytes (final)", "-", plain_sizes[-1]),
            ("compacted WAL bytes (round 1)", "-", compact_sizes[0]),
            ("compacted WAL bytes (final)", "-", compact_sizes[-1]),
            (
                "final plain/compacted ratio",
                "> 10",
                round(plain_sizes[-1] / max(compact_sizes[-1], 1), 1),
            ),
            ("compaction overhead (s)", "-",
             round(compact_seconds, 4)),
        ],
    )
