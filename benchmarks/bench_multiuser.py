"""Extension — multi-user parallelism (Section 2: "tasks of different
users can be done in parallel").

Three users' rule sets run over one shared database through the
Rc scheme.  Measured: fairness (firings per user under round-robin
scheduling), wave parallelism, and the semantic-consistency guarantee
on the combined commit sequence.
"""

from conftest import report

from repro.engine import MultiUserEngine, Session, replay_commit_sequence
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.txn.serializability import is_conflict_serializable
from repro.wm import WMSnapshot, WorkingMemory

N_ORDERS = 12


def _sessions():
    return [
        Session.of(
            "billing",
            [
                RuleBuilder("invoice")
                .when("order", id=var("o"), state="new")
                .modify(1, state="paid")
                .make("invoice", order=var("o"))
                .build()
            ],
        ),
        Session.of(
            "shipping",
            [
                RuleBuilder("ship")
                .when("order", id=var("o"), state="paid")
                .modify(1, state="shipped")
                .build()
            ],
        ),
        Session.of(
            "analytics",
            [
                RuleBuilder("tally")
                .when("invoice", order=var("o"))
                .when_not("tally", order=var("o"))
                .make("tally", order=var("o"))
                .build()
            ],
        ),
    ]


def _memory():
    wm = WorkingMemory()
    for i in range(1, N_ORDERS + 1):
        wm.make("order", id=i, state="new")
    return wm


def test_multiuser_fairness_and_consistency(benchmark):
    def run():
        wm = _memory()
        snapshot = WMSnapshot.capture(wm)
        engine = MultiUserEngine(_sessions(), wm, scheme="rc")
        result = engine.run()
        return engine, result, snapshot, wm

    engine, result, snapshot, wm = benchmark(run)
    counts = engine.firings_by_user()
    assert counts == {
        "billing": N_ORDERS,
        "shipping": N_ORDERS,
        "analytics": N_ORDERS,
    }
    all_rules = [p for s in engine.sessions for p in s.productions]
    replay = replay_commit_sequence(snapshot, all_rules, result.firings)
    assert replay.consistent, replay.detail
    assert is_conflict_serializable(engine.history)

    report(
        "Multi-user execution — 3 users, shared database, Rc scheme",
        [
            ("firings: billing", N_ORDERS, counts["billing"]),
            ("firings: shipping", N_ORDERS, counts["shipping"]),
            ("firings: analytics", N_ORDERS, counts["analytics"]),
            ("waves", "-", len(engine.waves)),
            ("rule-(ii) aborts", "-", engine.abort_count),
            ("semantically consistent", "yes",
             "yes" if replay.consistent else "NO"),
            ("serializable", "yes",
             "yes" if is_conflict_serializable(engine.history) else "NO"),
        ],
    )


def test_multiuser_width_one_alternates(benchmark):
    """At wave width 1 the scheduler strictly alternates runnable
    users — the fairness floor."""

    def run():
        wm = WorkingMemory()
        for i in range(8):
            wm.make("a", id=i)
            wm.make("b", id=i)
        sessions = [
            Session.of(
                "user-a",
                [RuleBuilder("eat-a").when("a", id=var("x")).remove(1).build()],
            ),
            Session.of(
                "user-b",
                [RuleBuilder("eat-b").when("b", id=var("x")).remove(1).build()],
            ),
        ]
        engine = MultiUserEngine(sessions, wm, processors=1)
        result = engine.run()
        return [engine.user_of(r.rule_name) for r in result.firings]

    owners = benchmark(run)
    alternations = sum(
        1 for a, b in zip(owners, owners[1:]) if a != b
    )
    assert alternations == len(owners) - 1
    report(
        "Multi-user — strict alternation at width 1",
        [
            ("firings", 16, len(owners)),
            ("alternations", 15, alternations),
        ],
    )
