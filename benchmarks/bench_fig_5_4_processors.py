"""Figure 5.4 — number-of-processors variation.

Paper: reducing Np from 4 to 3 forces P4 to wait for a free processor
(it starts when P3 finishes at t=2 and runs to t=6): T_multi rises to 6
and speedup falls from 2.25 to **1.5** — "intuitive, since now there is
a processor that has more than one production to execute".
"""

import pytest
from conftest import report

from repro.core import table_5_1
from repro.sim.multithread import simulate_multithread

PAPER = {"single": 9.0, "multi": 6.0, "speedup": 1.5, "processors": 3}


def test_fig_5_4_processors(benchmark):
    system = table_5_1()
    result = benchmark(
        simulate_multithread, system, PAPER["processors"]
    )

    assert result.single_thread_time == PAPER["single"]
    assert result.makespan == PAPER["multi"]
    assert result.speedup() == pytest.approx(PAPER["speedup"])

    p4_segments = [
        s for s in result.trace.segments if s.task == "P4"
    ]
    assert p4_segments[0].start == 2.0  # waits for P3's processor

    report(
        "Figure 5.4 — Np reduced to 3 (Table 5.1)",
        [
            ("Np", PAPER["processors"], result.processors),
            ("T_single(sigma)", PAPER["single"], result.single_thread_time),
            ("T_multi(sigma)", PAPER["multi"], result.makespan),
            ("speedup", PAPER["speedup"], result.speedup()),
            ("P4 start time", 2.0, p4_segments[0].start),
            ("speedup vs Fig 5.1", "2.25 -> 1.5", f"-> {result.speedup():.3f}"),
        ],
    )
    print(result.trace.render(52))
