"""Extension — speedup vs degree of conflict (generalizes Figure 5.2).

The paper shows one data point (2.25 -> 1.67 when conflict increases);
this sweep averages random systems per conflict degree and checks the
curve's shape: speedup falls as interference rises.
"""

from conftest import report

from repro.analysis.factors import sweep_conflict_degree
from repro.sim.metrics import monotone_fraction, sweep_table

DEGREES = (0.0, 0.1, 0.2, 0.35, 0.5, 0.7)


def test_sweep_conflict_degree(benchmark):
    points = benchmark(
        sweep_conflict_degree,
        degrees=DEGREES,
        n_productions=16,
        processors=16,
        trials=8,
    )
    speedups = [p.speedup for p in points]
    assert speedups[0] > speedups[-1]
    assert monotone_fraction(speedups, decreasing=True) >= 0.6

    print()
    print(
        sweep_table(
            "Speedup vs degree of conflict (16 productions, Np=16, "
            "8 trials/point)",
            "conflict",
            points,
        )
    )
    report(
        "Shape check — generalizes Figure 5.2",
        [
            ("speedup falls with conflict", "yes",
             "yes" if speedups[0] > speedups[-1] else "no"),
            ("monotone fraction", ">= 0.6",
             round(monotone_fraction(speedups), 2)),
            ("speedup @ conflict=0", "max", round(speedups[0], 3)),
            ("speedup @ conflict=0.7", "min-ish", round(speedups[-1], 3)),
        ],
    )
