"""Figure 5.1 / Table 5.1 — the base speedup case.

Paper: PA = {P1..P4}, T = (5, 3, 2, 4), Np = 4, σ1 allowable with
T_single(σ1) = 2+3+4 = 9; the multiple-thread run takes 4 (P1 is
aborted by P2's commit), so speedup = 9/4 = **2.25**.
"""

import pytest
from conftest import report

from repro.core import table_5_1
from repro.sim.multithread import simulate_multithread

PAPER = {"single": 9.0, "multi": 4.0, "speedup": 2.25, "processors": 4}


def test_fig_5_1_base_case(benchmark):
    system = table_5_1()
    result = benchmark(
        simulate_multithread, system, PAPER["processors"]
    )

    assert result.single_thread_time == PAPER["single"]
    assert result.makespan == PAPER["multi"]
    assert result.speedup() == pytest.approx(PAPER["speedup"])
    assert result.aborted == ("P1",)
    assert system.is_valid_sequence(result.commit_sequence)

    report(
        "Figure 5.1 — base case (Table 5.1, Np=4, T=(5,3,2,4))",
        [
            ("T_single(sigma)", PAPER["single"], result.single_thread_time),
            ("T_multi(sigma)", PAPER["multi"], result.makespan),
            ("speedup", PAPER["speedup"], result.speedup()),
            ("aborted", "P1", ",".join(result.aborted)),
            (
                "commit sequence",
                "p2p3p4 (some order)",
                "".join(result.commit_sequence).lower(),
            ),
        ],
    )
    print(result.trace.render(52))
