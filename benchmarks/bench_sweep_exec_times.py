"""Extension — speedup vs execution-time skew (generalizes Figure 5.3).

Figure 5.3's single point shows speedup rising when a non-critical
production lengthens (numerator grows, max stays).  Sweeping the
max/min skew of *random* systems shows the complementary regime: once
the longest production pins the makespan, higher skew hurts speedup.
Both effects come out of the same T_single/T_multi arithmetic.
"""

from conftest import report

from repro.analysis.factors import sweep_exec_times
from repro.core import table_5_1
from repro.core.addsets import SECTION_5_EXEC_TIMES
from repro.sim.metrics import sweep_table
from repro.sim.multithread import simulate_multithread

SKEWS = (1.0, 1.5, 2.0, 3.0, 5.0, 8.0)


def test_fig_5_3_direction_noncritical_member(benchmark):
    """Lengthening P2 below the wave maximum raises speedup — the
    paper's exact direction."""

    def curve():
        speedups = []
        for t2 in (3.0, 3.5, 4.0):
            times = dict(SECTION_5_EXEC_TIMES, P2=t2)
            result = simulate_multithread(table_5_1(times), 4)
            speedups.append(result.speedup())
        return speedups

    speedups = benchmark(curve)
    assert speedups == sorted(speedups)
    report(
        "Figure 5.3 direction — lengthen non-critical P2",
        [
            ("speedup @ T(P2)=3", 2.25, round(speedups[0], 3)),
            ("speedup @ T(P2)=4", 2.5, round(speedups[-1], 3)),
            ("monotone rising", "yes",
             "yes" if speedups == sorted(speedups) else "no"),
        ],
    )


def test_sweep_exec_time_skew(benchmark):
    points = benchmark(
        sweep_exec_times, skews=SKEWS, trials=8, n_productions=16
    )
    assert len(points) == len(SKEWS)
    assert all(p.speedup >= 1.0 for p in points)

    print()
    print(
        sweep_table(
            "Speedup vs execution-time skew (random systems, Np=16)",
            "skew",
            points,
        )
    )
    report(
        "Shape check — skew regime",
        [
            ("all speedups >= 1", "yes", "yes"),
            ("speedup @ skew=1", "-", round(points[0].speedup, 3)),
            ("speedup @ skew=8", "-", round(points[-1].speedup, 3)),
        ],
    )
