"""Figure 4.3 — the Rc-Wa commit-order rules.

Paper: P_j holds Rc(q) while P_i takes Wa(q) (granted over the Rc).

* (a) P_j commits first: both commit; serial order is P_j P_i.
* (b) P_i commits first: "the lock manager finds all productions
  holding Rc lock on q and forces them to abort" — P_j aborts.
"""

from conftest import report

from repro.locks import RcScheme
from repro.txn import History, Transaction
from repro.txn.serializability import is_conflict_serializable


def _scenario(commit_rc_holder_first: bool):
    history = History()
    scheme = RcScheme(history=history)
    pi = Transaction(rule_name="Pi")
    pj = Transaction(rule_name="Pj")
    assert scheme.lock_condition(pj, "q").is_granted
    assert all(r.is_granted for r in scheme.lock_action(pi, writes=["q"]))
    if commit_rc_holder_first:
        scheme.commit(pj)
        outcome = scheme.commit(pi)
    else:
        outcome = scheme.commit(pi)
        if pj.is_aborted:
            scheme.abort(pj)
    return history, pi, pj, outcome


def test_fig_4_3a_rc_holder_commits_first(benchmark):
    history, pi, pj, outcome = benchmark(lambda: _scenario(True))
    assert pi.is_committed and pj.is_committed
    assert outcome.victims == []
    assert history.commit_order() == (pj.txn_id, pi.txn_id)
    assert is_conflict_serializable(history)
    report(
        "Figure 4.3(a) — Pj (Rc holder) commits first",
        [
            ("Pj outcome", "commits", pj.state.value),
            ("Pi outcome", "commits", pi.state.value),
            ("serial order", "Pj Pi", " ".join(history.commit_order())),
            ("serializable", "yes", "yes" if is_conflict_serializable(history) else "no"),
        ],
    )


def test_fig_4_3b_wa_holder_commits_first(benchmark):
    history, pi, pj, outcome = benchmark(lambda: _scenario(False))
    assert pi.is_committed
    assert pj.is_aborted
    assert [v.txn_id for v in outcome.victims] == [pj.txn_id]
    assert is_conflict_serializable(history)
    report(
        "Figure 4.3(b) — Pi (Wa holder) commits first",
        [
            ("Pi outcome", "commits", pi.state.value),
            ("Pj outcome", "forced abort", pj.state.value),
            ("victims", 1, len(outcome.victims)),
            ("serializable", "yes", "yes" if is_conflict_serializable(history) else "no"),
        ],
    )
