"""Extension — speedup vs Np (generalizes Figure 5.4).

Paper: "N_p >= max |PA| ... will expedite execution"; below that,
"at least two productions will share the same processor".  Expected
shape: speedup rises with Np and saturates once Np covers the widest
conflict set.
"""

from conftest import report

from repro.analysis.factors import sweep_processors
from repro.sim.metrics import monotone_fraction, sweep_table

COUNTS = (1, 2, 3, 4, 6, 8, 12, 16)


def test_sweep_processors(benchmark):
    points = benchmark(
        sweep_processors,
        processor_counts=COUNTS,
        n_productions=16,
        conflict_degree=0.15,
        trials=8,
    )
    speedups = [p.speedup for p in points]
    assert abs(speedups[0] - 1.0) < 1e-9  # Np=1 is serial
    assert speedups[-1] > speedups[0]
    assert monotone_fraction(speedups, decreasing=False) >= 0.75
    # Saturation: the last doubling gains little.
    gain_early = speedups[3] / speedups[0]
    gain_late = speedups[-1] / speedups[-3]
    assert gain_early > gain_late

    print()
    print(
        sweep_table(
            "Speedup vs Np (16 productions, conflict 0.15, 8 trials/point)",
            "Np",
            points,
        )
    )
    report(
        "Shape check — generalizes Figure 5.4",
        [
            ("speedup @ Np=1", 1.0, round(speedups[0], 3)),
            ("speedup rises with Np", "yes",
             "yes" if speedups[-1] > speedups[0] else "no"),
            ("early gain (1->4 cpus)", "> late", round(gain_early, 2)),
            ("late gain (8->16 cpus)", "< early", round(gain_late, 2)),
        ],
    )
