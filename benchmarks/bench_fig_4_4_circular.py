"""Figure 4.4 — circular Rc/Wa conflict dependency.

Paper: P_i holds Rc(q) and Wa(r); P_j holds Rc(r) and Wa(q).  "Using
the rules above, the commitment of one production always forces the
other to abort.  Thus the consistent execution semantics is once again
satisfied." — exactly one of the two commits, whichever reaches its
commit point first.
"""

from conftest import report

from repro.locks import RcScheme
from repro.txn import Transaction


def _scenario(first_committer: str):
    scheme = RcScheme()
    pi = Transaction(rule_name="Pi")
    pj = Transaction(rule_name="Pj")
    assert scheme.lock_condition(pi, "q").is_granted
    assert scheme.lock_condition(pj, "r").is_granted
    assert all(r.is_granted for r in scheme.lock_action(pi, writes=["r"]))
    assert all(r.is_granted for r in scheme.lock_action(pj, writes=["q"]))
    winner, loser = (pi, pj) if first_committer == "Pi" else (pj, pi)
    outcome = scheme.commit(winner)
    if loser.is_aborted:
        scheme.abort(loser)
    return winner, loser, outcome


def test_fig_4_4_pi_commits_first(benchmark):
    winner, loser, outcome = benchmark(lambda: _scenario("Pi"))
    assert winner.is_committed
    assert loser.is_aborted
    assert [v.txn_id for v in outcome.victims] == [loser.txn_id]
    report(
        "Figure 4.4 — circular conflict, Pi commits first",
        [
            ("productions committed", 1, 1),
            ("productions aborted", 1, 1),
            ("winner", "Pi", winner.rule_name),
        ],
    )


def test_fig_4_4_pj_commits_first(benchmark):
    winner, loser, outcome = benchmark(lambda: _scenario("Pj"))
    assert winner.is_committed and winner.rule_name == "Pj"
    assert loser.is_aborted
    report(
        "Figure 4.4 — circular conflict, Pj commits first",
        [
            ("productions committed", 1, 1),
            ("productions aborted", 1, 1),
            ("winner", "Pj", winner.rule_name),
        ],
    )


def test_fig_4_4_no_deadlock_under_rc(benchmark):
    """The same circular shape deadlocks under 2PL; under Rc both Wa
    grants go through (the permissive Rc-Wa cell) so no waits-for cycle
    ever forms — Section 4.3's 'no new kinds of deadlocks' plus one
    removed kind."""
    from repro.locks.deadlock import DeadlockDetector

    def run():
        scheme = RcScheme()
        pi, pj = Transaction(), Transaction()
        scheme.lock_condition(pi, "q")
        scheme.lock_condition(pj, "r")
        scheme.lock_action(pi, writes=["r"])
        scheme.lock_action(pj, writes=["q"])
        return DeadlockDetector(scheme.manager).find_cycle()

    assert benchmark(run) is None
