"""Figure 5.3 — execution-time variation.

Paper: increasing T(P2) by one unit makes T_single(σ1) = 2+4+4 = 10
while T_multi stays 4, so speedup *rises* from 2.25 to **2.5** — the
numerator grows while the wave's slowest member still pins the
denominator.
"""

import pytest
from conftest import report

from repro.core import table_5_1
from repro.core.addsets import SECTION_5_EXEC_TIMES
from repro.sim.multithread import simulate_multithread

PAPER = {"single": 10.0, "multi": 4.0, "speedup": 2.5}


def _slow_p2_times():
    times = dict(SECTION_5_EXEC_TIMES)
    times["P2"] = times["P2"] + 1
    return times


def test_fig_5_3_execution_times(benchmark):
    system = table_5_1(_slow_p2_times())
    result = benchmark(simulate_multithread, system, 4)

    assert result.single_thread_time == PAPER["single"]
    assert result.makespan == PAPER["multi"]
    assert result.speedup() == pytest.approx(PAPER["speedup"])

    report(
        "Figure 5.3 — T(P2) increased by 1 (Np=4)",
        [
            ("T(P2)", 4, system.time("P2")),
            ("T_single(sigma)", PAPER["single"], result.single_thread_time),
            ("T_multi(sigma)", PAPER["multi"], result.makespan),
            ("speedup", PAPER["speedup"], result.speedup()),
            ("speedup vs Fig 5.1", "2.25 -> 2.5", f"-> {result.speedup():.3f}"),
        ],
    )
    print(result.trace.render(52))
