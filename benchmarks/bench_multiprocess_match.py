"""Multi-process match substrate benchmark: escaping the GIL.

The paper's Section 5 speedup curves assume match runs on real
processors.  The thread backend can't show that under CPython's GIL;
the process backend (``repro.match.procpool``) can — each shard is a
worker *process* with its own working-memory replica, so shard match
runs on real cores.  This module measures:

* **replay speedup vs workers** — the same match-bound delta stream
  through the process backend at 1/2/4/8 workers, against the
  single-shard serial reference;
* **thread vs process at equal shard counts** — the head-to-head the
  GIL decides;
* **IPC overhead** — roundtrips, payload bytes, and bytes per WM
  delta for the whole stream (the cost replication pays for
  share-nothing parallelism);
* **the DES projection** — the virtual-clock speedup the same
  sharding achieves on the simulator, i.e. the curve the process
  backend converges to as real cores are added;
* **the equivalence gate** — serial vs process conflict sets must be
  bit-identical (membership AND bindings) after the full stream.

Wall-clock speedup floors are asserted only when the host actually
has at least as many cores as workers (``os.cpu_count()``); on
smaller hosts — including single-core CI runners — the rows are
advisory, exactly as the hotpath benchmarks treat scheduler-noise
floors.  The equivalence gate is hard everywhere.

``REPRO_BENCH_SMOKE=1`` shrinks the stream (CI smoke lane).

Results land in ``BENCH_multiprocess_match.json`` via the conftest
recorder.
"""

from __future__ import annotations

import os
import time

from conftest import report

from repro.lang.builder import RuleBuilder, var
from repro.match import PartitionedMatcher
from repro.match.naive import NaiveMatcher
from repro.wm import WorkingMemory

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Rules in the program — one per worker at the widest configuration,
#: so every worker owns at least one rule at 8 workers.
N_RULES = 8
#: Pre-seeded probe tuples each item joins against.
N_PROBES = 12 if SMOKE else 40
#: Streamed item batches and items per batch.
N_ROUNDS = 6 if SMOKE else 24
BATCH = 4 if SMOKE else 10
WORKER_COUNTS = (1, 2, 4, 8)
CORES = os.cpu_count() or 1


def _rules():
    """A match-bound program: every rule joins against the whole
    probe relation, and the naive inner matcher re-walks its rules'
    conditions against the full store per delta — so per-delta match
    cost scales with (rules per shard) × (store size), the regime
    where rule partitioning pays.
    """
    return [
        RuleBuilder(f"r{i}")
        .when("item", k=var("x"), g=i)
        .when("probe", k=var("x"))
        .remove(1)
        .build()
        for i in range(N_RULES)
    ]


def _operations():
    """The deterministic WM delta stream every configuration replays."""
    ops = []
    for round_no in range(N_ROUNDS):
        batch = [
            ("item", {"k": (round_no * BATCH + j) % N_PROBES,
                      "g": (round_no + j) % N_RULES,
                      "n": round_no * BATCH + j})
            for j in range(BATCH)
        ]
        ops.append(batch)
    return ops


def _seed(memory: WorkingMemory) -> None:
    for k in range(N_PROBES):
        memory.make("probe", k=k)


def _stream(matcher_factory):
    """Build a fresh matcher, replay the stream, return timings.

    Returns ``(stream_seconds, matcher, memory)`` — pool/warmup time
    is excluded: the matcher attaches (and the process backend spawns
    + seeds its pool) before the clock starts.
    """
    memory = WorkingMemory()
    _seed(memory)
    matcher = matcher_factory(memory)
    matcher.add_productions(_rules())
    matcher.attach()
    start = time.perf_counter()
    for batch in _operations():
        with matcher.batch():
            for relation, attrs in batch:
                memory.make(relation, **attrs)
    elapsed = time.perf_counter() - start
    return elapsed, matcher, memory


def _signatures(matcher):
    """Value-identity conflict-set signature, comparable across runs.

    Each configuration replays the stream into its *own* working
    memory and timetags are allocated globally, so cross-run equality
    compares matched WMEs by value (every streamed item carries a
    unique ``n``) plus the variable bindings.  Within one run the
    per-op partitioned suite already pins timetag-exact equality.
    """
    return {
        (
            i.rule_name,
            tuple((w.relation, w.items) for w in i.wmes),
            tuple(sorted(i.bindings_items)),
        )
        for i in matcher.conflict_set
    }


def test_process_speedup_vs_workers():
    """Figure 5.x shape, on real processes: speedup vs worker count."""
    serial_seconds, serial_matcher, _ = _stream(
        lambda m: PartitionedMatcher(
            m, shards=1, inner="naive", backend="serial"
        )
    )
    oracle = _signatures(serial_matcher)
    serial_matcher.detach()

    rows = [
        ("cores", "", CORES),
        ("wm deltas", "", N_ROUNDS * BATCH),
        ("serial 1-shard (s)", "", round(serial_seconds, 4)),
    ]
    process_seconds = {}
    for workers in WORKER_COUNTS:
        seconds, matcher, _ = _stream(
            lambda m, w=workers: PartitionedMatcher(
                m, shards=w, inner="naive", backend="process"
            )
        )
        stats = matcher.stats()["procpool"]
        # The equivalence gate — hard on every host.
        assert _signatures(matcher) == oracle, (
            f"process backend ({workers} workers) diverged from serial"
        )
        matcher.detach()
        process_seconds[workers] = seconds
        speedup = serial_seconds / seconds
        target = (
            f">= {min(workers, CORES) * 0.5:.1f}"
            if CORES >= 2
            else "advisory (1 core)"
        )
        rows.append(
            (f"process x{workers} (s)", "", round(seconds, 4))
        )
        rows.append(
            (f"process x{workers} speedup", target, round(speedup, 2))
        )
        rows.append(
            (
                f"process x{workers} ipc bytes",
                "",
                stats["bytes_out"] + stats["bytes_in"],
            )
        )
        # Wall-clock floors only where the host can express them.
        if not SMOKE and CORES >= workers and workers > 1:
            assert speedup >= workers * 0.5, (
                f"{workers}-worker speedup {speedup:.2f}x below the "
                f"{workers * 0.5:.1f}x floor on a {CORES}-core host"
            )
    report("process-backend speedup vs workers", rows)


def test_thread_vs_process_equal_shards():
    """The GIL head-to-head: same shard count, threads vs processes."""
    shards = 4
    thread_seconds, thread_matcher, _ = _stream(
        lambda m: PartitionedMatcher(
            m, shards=shards, inner="naive", backend="thread"
        )
    )
    thread_signatures = _signatures(thread_matcher)
    thread_matcher.detach()
    process_seconds, process_matcher, _ = _stream(
        lambda m: PartitionedMatcher(
            m, shards=shards, inner="naive", backend="process"
        )
    )
    assert _signatures(process_matcher) == thread_signatures
    process_matcher.detach()
    ratio = thread_seconds / process_seconds
    report(
        "thread vs process at equal shards",
        [
            ("cores", "", CORES),
            ("shards", "", shards),
            ("thread (s)", "", round(thread_seconds, 4)),
            ("process (s)", "", round(process_seconds, 4)),
            (
                "process/thread advantage",
                "> 1.0 on multi-core" if CORES >= 2
                else "advisory (1 core)",
                round(ratio, 2),
            ),
        ],
    )
    if not SMOKE and CORES >= shards:
        assert ratio > 1.0, (
            f"process backend ({process_seconds:.4f}s) not faster than "
            f"threads ({thread_seconds:.4f}s) on a {CORES}-core host"
        )


def test_ipc_overhead_accounting():
    """What replication costs: exact payload bytes, both directions."""
    _, matcher, _ = _stream(
        lambda m: PartitionedMatcher(
            m, shards=2, inner="naive", backend="process"
        )
    )
    stats = matcher.stats()["procpool"]
    matcher.detach()
    deltas = N_ROUNDS * BATCH
    total = stats["bytes_out"] + stats["bytes_in"]
    report(
        "ipc overhead, 2 workers",
        [
            ("roundtrips", "", stats["roundtrips"]),
            ("bytes out", "", stats["bytes_out"]),
            ("bytes in", "", stats["bytes_in"]),
            ("bytes per wm delta", "", round(total / deltas, 1)),
        ],
    )
    assert stats["roundtrips"] >= N_ROUNDS
    assert stats["bytes_out"] > 0 and stats["bytes_in"] > 0


def test_des_projection():
    """The simulator's speedup for the same sharding — the curve the
    process backend approaches as real cores are added (committed so
    single-core CI still records the shape)."""
    rows = [("cores (irrelevant: virtual clock)", "", CORES)]
    for workers in WORKER_COUNTS:
        _, matcher, _ = _stream(
            lambda m, w=workers: PartitionedMatcher(
                m, shards=w, inner="naive", backend="des"
            )
        )
        speedup = matcher.virtual_speedup()
        matcher.detach()
        rows.append(
            (
                f"des x{workers} virtual speedup",
                f"<= {workers}",
                round(speedup, 2),
            )
        )
        assert speedup <= workers + 1e-9
        if workers > 1 and not SMOKE:
            # With N_RULES spread round-robin the load is balanced;
            # the virtual curve must show real parallelism.
            assert speedup >= min(workers, N_RULES) * 0.75
    report("des-projected speedup (virtual clock)", rows)
