"""Extension — static partitioning vs dynamic locking (Section 4.1 vs 4.2/4.3).

The paper's critique of the static approach: analysis "must behave in a
conservative manner, sacrificing parallelism" because interference
"usually depends on run-time values of variables".  We make that
measurable: productions whose *templates* overlap (same relations) but
whose *instantiations* touch different tuples.  The static partitioner
serializes them; dynamic tuple-level locking runs them in one wave.
"""

from conftest import report

from repro.core.interference import interferes
from repro.core.static_partition import (
    greedy_partition,
    partition_quality,
)
from repro.engine import ParallelEngine
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory

N_SHARDS = 8


def _rules():
    """Each rule processes one shard of the same 'task' relation.

    Template level: every rule reads and writes relation 'task' ->
    all pairs interfere statically.  Tuple level: shard keys are
    disjoint -> zero dynamic conflicts.
    """
    return [
        RuleBuilder(f"shard-{i}")
        .when("task", shard=i, id=var("t"), state="todo")
        .modify(1, state="done")
        .build()
        for i in range(N_SHARDS)
    ]


def _memory():
    wm = WorkingMemory()
    for shard in range(N_SHARDS):
        wm.make("task", shard=shard, id=shard * 100, state="todo")
    return wm


def test_static_partition_serializes_false_sharing(benchmark):
    rules = _rules()
    groups = benchmark(greedy_partition, rules, interferes)
    quality = partition_quality(groups)
    # Statically everything interferes: one rule per wave.
    assert quality["waves"] == N_SHARDS
    assert quality["width"] == 1

    report(
        "Static approach — template-level ('false') interference",
        [
            ("rules", N_SHARDS, N_SHARDS),
            ("static waves", N_SHARDS, int(quality["waves"])),
            ("static wave width", 1, int(quality["width"])),
        ],
    )


def test_dynamic_locking_exploits_tuple_disjointness(benchmark):
    rules = _rules()

    def run():
        engine = ParallelEngine(rules, _memory(), scheme="rc")
        engine.run()
        return engine

    engine = benchmark(run)
    first_wave = engine.waves[0]
    # Dynamic tuple-level locks let every shard fire in wave 1.
    assert len(first_wave.committed) == N_SHARDS

    report(
        "Dynamic approach — tuple-level locking on the same workload",
        [
            ("firings in first wave", N_SHARDS, len(first_wave.committed)),
            ("total waves", 1, len(engine.waves)),
            ("rule-(ii) aborts", 0, engine.abort_count),
            (
                "parallelism gained vs static",
                f"{N_SHARDS}x",
                f"{N_SHARDS / max(1, len(engine.waves))}x",
            ),
        ],
    )
