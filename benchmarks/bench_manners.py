"""Extension — Miss Manners, the classic production-system benchmark.

A realistic rule program (guest-seating with sex/hobby joins) driving
the whole engine: parser, matcher, conflict resolution, RHS execution.
Used to compare the four matchers under a real workload (the synthetic
delta-stream comparison is in ``bench_match_algorithms.py``) and to
verify the solution against the manners constraints.
"""

import pytest
from conftest import report

from repro.engine import Interpreter
from repro.workloads import (
    build_manners_memory,
    build_manners_rules,
    seating_order,
    validate_seating,
)

N_GUESTS = 24


def _run(matcher: str, n_guests: int = N_GUESTS):
    memory = build_manners_memory(n_guests, seed=1)
    result = Interpreter(
        build_manners_rules(),
        memory,
        matcher=matcher,
        strategy="priority",
    ).run(max_cycles=5 * n_guests)
    return memory, result


@pytest.mark.parametrize("matcher", ["rete", "treat", "cond", "naive"])
def test_manners_by_matcher(benchmark, matcher):
    memory, result = benchmark(_run, matcher)
    assert result.halted
    validate_seating(memory)
    assert len(seating_order(memory)) == N_GUESTS


def test_manners_report():
    memory, result = _run("rete")
    validate_seating(memory)
    order = seating_order(memory)
    report(
        f"Miss Manners — {N_GUESTS} guests seated",
        [
            ("guests seated", N_GUESTS, len(order)),
            ("cycles", N_GUESTS + 1, result.cycles),
            ("constraints valid", "yes", "yes"),
        ],
    )
    print("seating:", " ".join(order[:8]), "...")
