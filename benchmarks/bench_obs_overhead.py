"""Observability overhead — NullObserver vs metrics vs full spans.

Not a paper figure: this measures the cost of the causal span layer
itself, so the paper-value column carries the expectations instead
(baseline 1.0x, and loose overhead ceilings).  A wave-parallel ``rc``
run over a widening item workload is timed three ways:

* ``off``     — the default ``NullObserver`` (every hook a no-op),
* ``metrics`` — counters/gauges/histograms only (``level="metrics"``),
* ``full``    — metrics + trace events + the causal span tree.

The interesting quantity is the *ratio* to the ``off`` baseline; the
assertion only guards against pathological blow-ups (instrumentation
orders of magnitude slower than the work it observes) because absolute
wall times on CI machines are noisy.
"""

import time

from conftest import report

import repro.obs as obs
from repro.engine import ParallelEngine
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory

ITEMS = 60
REPEATS = 5
# Generous ceilings: instrumentation must stay within an order of
# magnitude of the uninstrumented engine even on noisy CI boxes.
MAX_RATIO = {"metrics": 10.0, "full": 10.0}


def _rules():
    return [
        RuleBuilder("consume")
        .when("item", id=var("i"))
        .remove(1)
        .build()
    ]


def _run_once(level):
    wm = WorkingMemory()
    for i in range(ITEMS):
        wm.make("item", id=i)
    observer = (
        obs.NULL_OBSERVER if level == "off" else obs.Observer(level=level)
    )
    engine = ParallelEngine(
        _rules(), wm, scheme="rc", observer=observer
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert len(result.firings) == ITEMS
    if level == "full":
        assert observer.spans is not None
        assert len(observer.spans.spans("firing")) == ITEMS
    return elapsed


def _best_of(level):
    return min(_run_once(level) for _ in range(REPEATS))


def test_obs_overhead(benchmark):
    base = benchmark(_best_of, "off")
    with_metrics = _best_of("metrics")
    with_spans = _best_of("full")

    metrics_ratio = with_metrics / base
    full_ratio = with_spans / base
    assert metrics_ratio < MAX_RATIO["metrics"]
    assert full_ratio < MAX_RATIO["full"]

    report(
        "Observability overhead (60 firings, rc, best of 5)",
        [
            ("off wall_seconds", "baseline", round(base, 6)),
            ("metrics wall_seconds", "-", round(with_metrics, 6)),
            ("full wall_seconds", "-", round(with_spans, 6)),
            ("metrics ratio", "< 10x", round(metrics_ratio, 3)),
            ("full ratio", "< 10x", round(full_ratio, 3)),
        ],
    )
