"""Observability overhead — NullObserver vs metrics/sampled/full.

Not a paper figure: this measures the cost of the causal span layer
itself, so the paper-value column carries the expectations instead
(baseline 1.0x, and loose overhead ceilings).  A wave-parallel ``rc``
run over a widening item workload is timed four ways:

* ``off``     — the default ``NullObserver`` (every hook a no-op),
* ``metrics`` — counters/gauges/histograms/sketches (``level="metrics"``),
* ``sampled`` — metrics + head-sampled spans at the default 10% rate
  (the always-on production tier),
* ``full``    — metrics + trace events + the complete span tree.

The interesting quantity is the *ratio* to the ``off`` baseline; the
assertion only guards against pathological blow-ups (instrumentation
orders of magnitude slower than the work it observes) because absolute
wall times on CI machines are noisy.  The ``sampled`` tier is the one
meant to ship enabled, so its ceiling is the tightest.
"""

import time

from conftest import report

import repro.obs as obs
from repro.engine import ParallelEngine
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WorkingMemory

ITEMS = 120
REPEATS = 10
# Generous ceilings: instrumentation must stay within an order of
# magnitude of the uninstrumented engine even on noisy CI boxes.  The
# always-on ``sampled`` tier gets a tighter leash since it is the one
# production runs leave enabled.
MAX_RATIO = {"metrics": 10.0, "sampled": 5.0, "full": 10.0}


def _rules():
    return [
        RuleBuilder("consume")
        .when("item", id=var("i"))
        .remove(1)
        .build()
    ]


def _run_once(level):
    wm = WorkingMemory()
    for i in range(ITEMS):
        wm.make("item", id=i)
    observer = (
        obs.NULL_OBSERVER if level == "off" else obs.Observer(level=level)
    )
    engine = ParallelEngine(
        _rules(), wm, scheme="rc", observer=observer
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert len(result.firings) == ITEMS
    if level == "full":
        assert observer.spans is not None
        assert len(observer.spans.spans("firing")) == ITEMS
    if level == "sampled":
        # Head sampling must actually drop spans at the default rate.
        assert observer.spans is not None
        assert observer.spans.sampled_out > 0
    return elapsed


def _best_of(level):
    return min(_run_once(level) for _ in range(REPEATS))


def test_obs_overhead(benchmark):
    base = benchmark(_best_of, "off")
    with_metrics = _best_of("metrics")
    with_sampled = _best_of("sampled")
    with_spans = _best_of("full")

    metrics_ratio = with_metrics / base
    sampled_ratio = with_sampled / base
    full_ratio = with_spans / base
    assert metrics_ratio < MAX_RATIO["metrics"]
    assert sampled_ratio < MAX_RATIO["sampled"]
    assert full_ratio < MAX_RATIO["full"]

    report(
        "Observability overhead (120 firings, rc, best of 10)",
        [
            ("off wall_seconds", "baseline", round(base, 6)),
            ("metrics wall_seconds", "-", round(with_metrics, 6)),
            ("sampled wall_seconds", "-", round(with_sampled, 6)),
            ("full wall_seconds", "-", round(with_spans, 6)),
            ("metrics ratio", "< 10x", round(metrics_ratio, 3)),
            ("sampled ratio", "< 5x", round(sampled_ratio, 3)),
            ("full ratio", "< 10x", round(full_ratio, 3)),
        ],
    )
