"""Example 5.1 — uniprocessor: single thread never loses.

Paper: ``T_single(σ) = Σ T(P_j)`` and ``T_multi,uni(σ) = Σ T(P_j) +
f · Σ_aborted T(P_k)`` with ``0 <= f < 1``, hence ``T_single <=
T_multi,uni``: "single thread execution on a uniprocessor is no worse
than multiple thread execution".
"""

from conftest import report

from repro.analysis.speedup import (
    multi_thread_uniprocessor_time,
    single_thread_time,
)
from repro.core import table_5_1
from repro.core.addsets import SECTION_5_EXEC_TIMES
from repro.sim.multithread import simulate_uniprocessor_multithread

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 0.99)


def test_example_5_1_inequality(benchmark):
    system = table_5_1()

    def evaluate():
        rows = []
        for fraction in FRACTIONS:
            multi, sequence = simulate_uniprocessor_multithread(
                system, abort_fraction=fraction
            )
            single = single_thread_time(SECTION_5_EXEC_TIMES, sequence)
            rows.append((fraction, single, multi))
        return rows

    rows = benchmark(evaluate)
    for fraction, single, multi in rows:
        assert single <= multi, (fraction, single, multi)

    report(
        "Example 5.1 — uniprocessor single vs multiple thread",
        [
            (
                f"f={fraction:.2f}: T_multi,uni - T_single",
                ">= 0",
                round(multi - single, 6),
            )
            for fraction, single, multi in rows
        ],
    )
    print(
        "sigma (from infinite-processor probe):",
        "".join(rows and simulate_uniprocessor_multithread(system, 0.0)[1]),
    )


def test_example_5_1_waste_grows_with_f(benchmark):
    committed, aborted = ["P2", "P3", "P4"], ["P1"]

    def curve():
        return [
            multi_thread_uniprocessor_time(
                SECTION_5_EXEC_TIMES, committed, aborted, f
            )
            for f in FRACTIONS
        ]

    times = benchmark(curve)
    assert times == sorted(times)
    assert times[0] == 9.0           # f=0: pure committed work
    assert times[-1] == 9.0 + 0.99 * 5.0  # f=0.99 of T(P1)=5
