"""Match hot-path benchmark: token layouts and compiled closures vs the
interpreted seed.

The condition-compilation layer (``repro.lang.compile``) replaces the
seed's per-WME interpreted test walks with precompiled closures, caches
instantiation ordering keys, and batches each firing's WM deltas behind
one match barrier; the slotted token layer replaces per-join binding
dicts with fixed-width slot tuples keyed by a per-production variable
index.  This module measures the end-to-end effects and guards the
equivalence contracts:

* end-to-end recognize-act cycle throughput, compiled vs interpreted,
  on Miss Manners (the classic match-dominated workload) across the
  matcher zoo — with a ≥2× floor on the match-heaviest configuration;
* end-to-end cycle throughput, slotted vs dict tokens, with a ≥1.2×
  floor on at least two matchers;
* per-probe allocation counts (tracemalloc): the slotted join fast path
  must allocate nothing where the dict layout copied per extension;
* the critical-path ``match`` bucket share before/after, from the PR-4
  span toolkit (the committed ``obs report`` evidence);
* micro throughput of the alpha/beta probes themselves;
* bit-identical conflict sets between evaluator families and layouts.

``REPRO_BENCH_SMOKE=1`` shrinks the guest counts and skips the
full-mode floor assertions (CI smoke lane).

Results land in ``BENCH_match_hotpath.json`` via the conftest recorder.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import nullcontext

from conftest import report

from repro.engine.interpreter import Interpreter
from repro.engine.parallel import ParallelEngine
from repro.lang.ast import ConditionElement, ConstantTest, VariableTest
from repro.lang.compile import (
    VariableIndex,
    compile_beta_slots,
    dict_tokens,
    interpreted_conditions,
)
from repro.match import NaiveMatcher, ReteMatcher
from repro.obs import Observer
from repro.analysis.critpath import cycle_breakdowns
from repro.wm.element import WME
from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Guests per configuration; Manners match cost grows superlinearly.
GUESTS_NAIVE = 6 if SMOKE else 16
GUESTS_INCREMENTAL = 8 if SMOKE else 24
GUESTS_OBS = 6 if SMOKE else 12
PROBE_ROUNDS = 2_000 if SMOKE else 20_000
ALLOC_PROBES = 1_000
#: Best-of-N repeats for the slotted-vs-dict throughput rates — one
#: Manners run is tens of milliseconds, so single-shot ratios are
#: scheduler noise.
REPEATS = 1 if SMOKE else 5

_MODES = {
    "slotted": nullcontext,
    "dict": dict_tokens,
    "interpreted": interpreted_conditions,
}


def _run_manners(
    matcher: str, n_guests: int, mode: str
) -> tuple[float, object]:
    """One full Manners run; returns (cycles/sec, RunResult).

    ``mode`` is ``"slotted"`` (the default token layout), ``"dict"``
    (compiled closures over binding dicts — the PR 7 baseline) or
    ``"interpreted"`` (the seed's test walks).  The whole
    construct-and-run sits inside the mode context: condition elements
    and productions cache their evaluators/plans on first use, so each
    mode's run must build *and* match under its flag.
    """
    with _MODES[mode]():
        memory = build_manners_memory(n_guests=n_guests, seed=7)
        engine = Interpreter(
            build_manners_rules(), memory, matcher=matcher, strategy="lex"
        )
        start = time.perf_counter()
        result = engine.run(max_cycles=100_000)
        elapsed = time.perf_counter() - start
    assert result.stop_reason in ("quiescent", "halt")
    return result.cycles / elapsed, result


def _firing_sequence(result) -> list[str]:
    return [f.rule_name for f in result.firings]


def test_cycle_throughput_match_heavy_naive():
    """The ≥2× gate, on the configuration the match phase dominates.

    The naive matcher re-walks every condition against the whole store
    per delta — the purest measure of per-probe evaluation cost, and
    the paper's match-dominated regime.
    """
    interp_rate, interp_result = _run_manners(
        "naive", GUESTS_NAIVE, "interpreted"
    )
    compiled_rate, compiled_result = _run_manners(
        "naive", GUESTS_NAIVE, "slotted"
    )
    # End-to-end equivalence: same cycles, same firing sequence.
    assert compiled_result.cycles == interp_result.cycles
    assert _firing_sequence(compiled_result) == _firing_sequence(
        interp_result
    )
    speedup = compiled_rate / interp_rate
    report(
        "end-to-end cycle throughput, naive matcher",
        [
            ("guests", "", GUESTS_NAIVE),
            ("interpreted cycles/s", "", round(interp_rate, 1)),
            ("compiled cycles/s", "", round(compiled_rate, 1)),
            ("speedup", ">= 2.0", round(speedup, 2)),
            ("cycles", "", compiled_result.cycles),
        ],
    )
    if not SMOKE:
        assert speedup >= 2.0, (
            f"compiled/interpreted throughput {speedup:.2f}x "
            f"below the 2x floor"
        )


def test_cycle_throughput_incremental_matchers():
    """Advisory rows: the incremental matchers and partitioned shards."""
    rows = []
    for matcher in ("rete", "treat", "partitioned:rete:4"):
        interp_rate, interp_result = _run_manners(
            matcher, GUESTS_INCREMENTAL, "interpreted"
        )
        compiled_rate, compiled_result = _run_manners(
            matcher, GUESTS_INCREMENTAL, "slotted"
        )
        assert compiled_result.cycles == interp_result.cycles
        assert _firing_sequence(compiled_result) == _firing_sequence(
            interp_result
        )
        rows.append(
            (
                f"{matcher} speedup",
                "> 1.0",
                round(compiled_rate / interp_rate, 2),
            )
        )
        rows.append(
            (f"{matcher} cycles/s", "", round(compiled_rate, 1))
        )
    report(
        "incremental matchers",
        [("guests", "", GUESTS_INCREMENTAL)] + rows,
    )


def test_cycle_throughput_slotted_vs_dict_tokens():
    """The ≥1.2× tokens gate: slotted tuples vs the PR 7 dict layout.

    Both runs use the compiled closures; only the token representation
    differs — per-join ``dict(bindings)`` copies vs fixed-slot tuples
    with a no-copy join fast path.  The floor must hold on at least
    two matchers.  Rete and cond clear it (their hot loops are token
    extension); naive and treat are advisory — their cycles are
    dominated by whole-store alpha scans and conflict-set retention
    respectively, which no token layout can touch.  Rates are
    best-of-``REPEATS`` since a single Manners run is tens of
    milliseconds.
    """
    rows = []
    speedups: dict[str, float] = {}
    for matcher, guests in (
        ("naive", GUESTS_NAIVE),
        ("rete", GUESTS_INCREMENTAL),
        ("treat", GUESTS_INCREMENTAL),
        ("cond", GUESTS_INCREMENTAL),
    ):
        dict_rate = slot_rate = 0.0
        for _ in range(REPEATS):
            rate, dict_result = _run_manners(matcher, guests, "dict")
            dict_rate = max(dict_rate, rate)
            rate, slot_result = _run_manners(matcher, guests, "slotted")
            slot_rate = max(slot_rate, rate)
            assert slot_result.cycles == dict_result.cycles
            assert _firing_sequence(slot_result) == _firing_sequence(
                dict_result
            )
        speedups[matcher] = slot_rate / dict_rate
        rows.append(
            (f"{matcher} dict cycles/s", "", round(dict_rate, 1))
        )
        rows.append(
            (f"{matcher} slotted cycles/s", "", round(slot_rate, 1))
        )
        rows.append(
            (
                f"{matcher} slotted/dict speedup",
                ">= 1.2 on >= 2 matchers",
                round(speedups[matcher], 2),
            )
        )
    report(
        "slotted vs dict token throughput",
        [
            ("naive guests", "", GUESTS_NAIVE),
            ("incremental guests", "", GUESTS_INCREMENTAL),
        ]
        + rows,
    )
    if not SMOKE:
        fast = sum(1 for s in speedups.values() if s >= 1.2)
        assert fast >= 2, (
            f"slotted/dict speedups {speedups} reach the 1.2x floor on "
            f"only {fast} matcher(s); need two"
        )


def _probe_allocations(beta, wme, token) -> int:
    """Net bytes allocated by ``ALLOC_PROBES`` beta probes whose
    results are kept alive (so per-probe temporaries are counted).

    The keep-alive slots are preallocated so list growth does not
    pollute the measurement — only objects the probe itself builds
    (dict copies, tuples) register."""
    beta(wme, token)  # warm caches (wme.mapping, closure setup)
    keep = [None] * ALLOC_PROBES
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    for i in range(ALLOC_PROBES):
        keep[i] = beta(wme, token)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del keep
    return after - before


def test_join_extension_allocation_counts():
    """tracemalloc gate: no allocation on the slotted join fast path.

    A join probe whose variables are already bound (the common case
    deep in a beta chain) copied the whole bindings dict per probe
    under the dict layout; the slotted closure hands back the incoming
    tuple.  A probe that *does* bind still allocates, but a tuple, not
    a dict.
    """
    element = ConditionElement("item", (VariableTest("k", "x"),))
    wme = WME.make("item", k=1)
    dict_beta = element.compiled().beta
    index = VariableIndex((element,))
    # in_width == width models the probe with <x> already bound (the
    # retraction/full-match shape); in_width == 0 models first binding.
    bound_beta = compile_beta_slots(element, index, 1, 1)
    binding_beta = compile_beta_slots(element, index, 0, 1)

    dict_bound = _probe_allocations(dict_beta, wme, {"x": 1})
    slot_bound = _probe_allocations(bound_beta, wme, (1,))
    dict_binding = _probe_allocations(dict_beta, wme, {})
    slot_binding = _probe_allocations(binding_beta, wme, ())

    per = ALLOC_PROBES
    report(
        "per-probe join allocation (bytes)",
        [
            ("probes", "", per),
            ("dict, already bound", "", round(dict_bound / per, 1)),
            (
                "slotted, already bound",
                "0 (no copy)",
                round(slot_bound / per, 1),
            ),
            ("dict, first binding", "", round(dict_binding / per, 1)),
            (
                "slotted, first binding",
                "< dict",
                round(slot_binding / per, 1),
            ),
        ],
    )
    # The fast path returns the incoming tuple: zero per-probe bytes.
    assert slot_bound < 1024
    assert slot_bound < dict_bound
    assert slot_binding < dict_binding


def _match_share(mode: str) -> tuple[float, float]:
    """(match-bucket share, makespan) of an observed ParallelEngine run."""
    with _MODES[mode]():
        memory = build_manners_memory(n_guests=GUESTS_OBS, seed=7)
        observer = Observer(trace_capacity=200_000)
        engine = ParallelEngine(
            build_manners_rules(),
            memory,
            matcher="partitioned:rete:4",
            observer=observer,
        )
        engine.run(max_waves=100_000)
    breakdowns = cycle_breakdowns(observer.spans.spans())
    total = sum(b.duration for b in breakdowns)
    match = sum(b.buckets.get("match", 0.0) for b in breakdowns)
    return (match / total if total else 0.0), total


def test_match_bucket_shrinks():
    """The PR-4 critical-path report: the match bucket before/after."""
    interp_share, interp_total = _match_share("interpreted")
    compiled_share, compiled_total = _match_share("slotted")
    report(
        "critical-path match bucket, partitioned:rete:4",
        [
            ("guests", "", GUESTS_OBS),
            (
                "interpreted match share",
                "",
                round(interp_share, 3),
            ),
            ("compiled match share", "", round(compiled_share, 3)),
            (
                "interpreted cycle time (s)",
                "",
                round(interp_total, 4),
            ),
            ("compiled cycle time (s)", "", round(compiled_total, 4)),
            (
                "match time ratio",
                "< 1.0",
                round(
                    (compiled_share * compiled_total)
                    / (interp_share * interp_total or 1.0),
                    3,
                ),
            ),
        ],
    )
    if not SMOKE:
        # Absolute match time must shrink; share may shift as other
        # buckets shrink too.
        assert compiled_share * compiled_total < (
            interp_share * interp_total
        )


def test_probe_micro_throughput():
    """Raw alpha/beta probe rates on a representative element."""
    element = ConditionElement(
        "guest",
        (
            ConstantTest("sex", "m"),
            VariableTest("name", "g"),
            VariableTest("hobby", "h"),
        ),
    )
    wmes = [
        WME.make(
            "guest", name=f"g{i}", sex="m" if i % 2 else "f", hobby=i % 5
        )
        for i in range(50)
    ]

    def _rate(alpha, beta) -> float:
        start = time.perf_counter()
        for _ in range(PROBE_ROUNDS // 10):
            for wme in wmes:
                if alpha(wme):
                    beta(wme, {"h": 1})
        return (PROBE_ROUNDS // 10 * len(wmes)) / (
            time.perf_counter() - start
        )

    from repro.lang.compile import (
        compile_alpha,
        compile_beta,
        interpreted_alpha,
        interpreted_beta,
    )

    interp = _rate(interpreted_alpha(element), interpreted_beta(element))
    compiled = _rate(compile_alpha(element), compile_beta(element))
    report(
        "single-element probe throughput",
        [
            ("interpreted probes/s", "", round(interp)),
            ("compiled probes/s", "", round(compiled)),
            ("speedup", "> 1.0", round(compiled / interp, 2)),
        ],
    )
    assert compiled > interp


def test_conflict_sets_bit_identical():
    """All evaluator families — slotted tokens, dict tokens, and the
    interpreted walks — yield identical conflict sets (shared store,
    so identical timetags: bit-identical, not just similar)."""
    memory = build_manners_memory(n_guests=8, seed=5)
    slotted = ReteMatcher(memory)
    slotted.add_productions(build_manners_rules())
    slotted.attach()
    with dict_tokens():
        dicted = ReteMatcher(memory)
        dicted.add_productions(build_manners_rules())
        dicted.attach()
    with interpreted_conditions():
        interpreted = NaiveMatcher(memory)
        interpreted.add_productions(build_manners_rules())
        interpreted.attach()

    def _ids(matcher):
        return {i.identity() for i in matcher.conflict_set}

    assert _ids(slotted) == _ids(dicted) == _ids(interpreted)
    memory.make("guest", name="probe", sex="f")
    memory.make("hobby", name="probe", h="h1")
    assert _ids(slotted) == _ids(dicted) == _ids(interpreted)
    # Bindings too, not just identities — the layouts store them
    # differently but must materialize identical pairs.
    slotted_bindings = {
        i.identity(): i.bindings_items for i in slotted.conflict_set
    }
    dict_bindings = {
        i.identity(): i.bindings_items for i in dicted.conflict_set
    }
    assert slotted_bindings == dict_bindings
    report(
        "equivalence",
        [
            ("conflict-set identity", "bit-identical", "bit-identical"),
            ("bindings items", "bit-identical", "bit-identical"),
        ],
    )
