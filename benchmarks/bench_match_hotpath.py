"""Match hot-path benchmark: compiled closures vs the interpreted seed.

The condition-compilation layer (``repro.lang.compile``) replaces the
seed's per-WME interpreted test walks with precompiled closures, caches
instantiation ordering keys, and batches each firing's WM deltas behind
one match barrier.  This module measures the end-to-end effect and
guards the equivalence contract:

* end-to-end recognize-act cycle throughput, compiled vs interpreted,
  on Miss Manners (the classic match-dominated workload) across the
  matcher zoo — with a ≥2× floor on the match-heaviest configuration;
* the critical-path ``match`` bucket share before/after, from the PR-4
  span toolkit (the committed ``obs report`` evidence);
* micro throughput of the alpha/beta probes themselves;
* bit-identical conflict sets between the two evaluator families.

``REPRO_BENCH_SMOKE=1`` shrinks the guest counts and skips the
full-mode floor assertions (CI smoke lane).

Results land in ``BENCH_match_hotpath.json`` via the conftest recorder.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext

from conftest import report

from repro.engine.interpreter import Interpreter
from repro.engine.parallel import ParallelEngine
from repro.lang.ast import ConditionElement, ConstantTest, VariableTest
from repro.lang.compile import interpreted_conditions
from repro.match import NaiveMatcher, ReteMatcher
from repro.obs import Observer
from repro.analysis.critpath import cycle_breakdowns
from repro.wm.element import WME
from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Guests per configuration; Manners match cost grows superlinearly.
GUESTS_NAIVE = 6 if SMOKE else 16
GUESTS_INCREMENTAL = 8 if SMOKE else 24
GUESTS_OBS = 6 if SMOKE else 12
PROBE_ROUNDS = 2_000 if SMOKE else 20_000


def _run_manners(
    matcher: str, n_guests: int, interpreted: bool
) -> tuple[float, object]:
    """One full Manners run; returns (cycles/sec, RunResult).

    The whole construct-and-run sits inside the mode context:
    condition elements cache their evaluators on first use, so the
    interpreted runs must build *and* match under the flag.
    """
    mode = interpreted_conditions() if interpreted else nullcontext()
    with mode:
        memory = build_manners_memory(n_guests=n_guests, seed=7)
        engine = Interpreter(
            build_manners_rules(), memory, matcher=matcher, strategy="lex"
        )
        start = time.perf_counter()
        result = engine.run(max_cycles=100_000)
        elapsed = time.perf_counter() - start
    assert result.stop_reason in ("quiescent", "halt")
    return result.cycles / elapsed, result


def _firing_sequence(result) -> list[str]:
    return [f.rule_name for f in result.firings]


def test_cycle_throughput_match_heavy_naive():
    """The ≥2× gate, on the configuration the match phase dominates.

    The naive matcher re-walks every condition against the whole store
    per delta — the purest measure of per-probe evaluation cost, and
    the paper's match-dominated regime.
    """
    interp_rate, interp_result = _run_manners(
        "naive", GUESTS_NAIVE, interpreted=True
    )
    compiled_rate, compiled_result = _run_manners(
        "naive", GUESTS_NAIVE, interpreted=False
    )
    # End-to-end equivalence: same cycles, same firing sequence.
    assert compiled_result.cycles == interp_result.cycles
    assert _firing_sequence(compiled_result) == _firing_sequence(
        interp_result
    )
    speedup = compiled_rate / interp_rate
    report(
        "end-to-end cycle throughput, naive matcher",
        [
            ("guests", "", GUESTS_NAIVE),
            ("interpreted cycles/s", "", round(interp_rate, 1)),
            ("compiled cycles/s", "", round(compiled_rate, 1)),
            ("speedup", ">= 2.0", round(speedup, 2)),
            ("cycles", "", compiled_result.cycles),
        ],
    )
    if not SMOKE:
        assert speedup >= 2.0, (
            f"compiled/interpreted throughput {speedup:.2f}x "
            f"below the 2x floor"
        )


def test_cycle_throughput_incremental_matchers():
    """Advisory rows: the incremental matchers and partitioned shards."""
    rows = []
    for matcher in ("rete", "treat", "partitioned:rete:4"):
        interp_rate, interp_result = _run_manners(
            matcher, GUESTS_INCREMENTAL, interpreted=True
        )
        compiled_rate, compiled_result = _run_manners(
            matcher, GUESTS_INCREMENTAL, interpreted=False
        )
        assert compiled_result.cycles == interp_result.cycles
        assert _firing_sequence(compiled_result) == _firing_sequence(
            interp_result
        )
        rows.append(
            (
                f"{matcher} speedup",
                "> 1.0",
                round(compiled_rate / interp_rate, 2),
            )
        )
        rows.append(
            (f"{matcher} cycles/s", "", round(compiled_rate, 1))
        )
    report(
        "incremental matchers",
        [("guests", "", GUESTS_INCREMENTAL)] + rows,
    )


def _match_share(interpreted: bool) -> tuple[float, float]:
    """(match-bucket share, makespan) of an observed ParallelEngine run."""
    mode = interpreted_conditions() if interpreted else nullcontext()
    with mode:
        memory = build_manners_memory(n_guests=GUESTS_OBS, seed=7)
        observer = Observer(trace_capacity=200_000)
        engine = ParallelEngine(
            build_manners_rules(),
            memory,
            matcher="partitioned:rete:4",
            observer=observer,
        )
        engine.run(max_waves=100_000)
    breakdowns = cycle_breakdowns(observer.spans.spans())
    total = sum(b.duration for b in breakdowns)
    match = sum(b.buckets.get("match", 0.0) for b in breakdowns)
    return (match / total if total else 0.0), total


def test_match_bucket_shrinks():
    """The PR-4 critical-path report: the match bucket before/after."""
    interp_share, interp_total = _match_share(interpreted=True)
    compiled_share, compiled_total = _match_share(interpreted=False)
    report(
        "critical-path match bucket, partitioned:rete:4",
        [
            ("guests", "", GUESTS_OBS),
            (
                "interpreted match share",
                "",
                round(interp_share, 3),
            ),
            ("compiled match share", "", round(compiled_share, 3)),
            (
                "interpreted cycle time (s)",
                "",
                round(interp_total, 4),
            ),
            ("compiled cycle time (s)", "", round(compiled_total, 4)),
            (
                "match time ratio",
                "< 1.0",
                round(
                    (compiled_share * compiled_total)
                    / (interp_share * interp_total or 1.0),
                    3,
                ),
            ),
        ],
    )
    if not SMOKE:
        # Absolute match time must shrink; share may shift as other
        # buckets shrink too.
        assert compiled_share * compiled_total < (
            interp_share * interp_total
        )


def test_probe_micro_throughput():
    """Raw alpha/beta probe rates on a representative element."""
    element = ConditionElement(
        "guest",
        (
            ConstantTest("sex", "m"),
            VariableTest("name", "g"),
            VariableTest("hobby", "h"),
        ),
    )
    wmes = [
        WME.make(
            "guest", name=f"g{i}", sex="m" if i % 2 else "f", hobby=i % 5
        )
        for i in range(50)
    ]

    def _rate(alpha, beta) -> float:
        start = time.perf_counter()
        for _ in range(PROBE_ROUNDS // 10):
            for wme in wmes:
                if alpha(wme):
                    beta(wme, {"h": 1})
        return (PROBE_ROUNDS // 10 * len(wmes)) / (
            time.perf_counter() - start
        )

    from repro.lang.compile import (
        compile_alpha,
        compile_beta,
        interpreted_alpha,
        interpreted_beta,
    )

    interp = _rate(interpreted_alpha(element), interpreted_beta(element))
    compiled = _rate(compile_alpha(element), compile_beta(element))
    report(
        "single-element probe throughput",
        [
            ("interpreted probes/s", "", round(interp)),
            ("compiled probes/s", "", round(compiled)),
            ("speedup", "> 1.0", round(compiled / interp, 2)),
        ],
    )
    assert compiled > interp


def test_conflict_sets_bit_identical():
    """Both evaluator families yield identical conflict sets (shared
    store, so identical timetags — bit-identical, not just similar)."""
    memory = build_manners_memory(n_guests=8, seed=5)
    compiled = ReteMatcher(memory)
    compiled.add_productions(build_manners_rules())
    compiled.attach()
    with interpreted_conditions():
        interpreted = NaiveMatcher(memory)
        interpreted.add_productions(build_manners_rules())
        interpreted.attach()
    compiled_ids = {i.identity() for i in compiled.conflict_set}
    interp_ids = {i.identity() for i in interpreted.conflict_set}
    assert compiled_ids == interp_ids
    memory.make("guest", name="probe", sex="f")
    memory.make("hobby", name="probe", h="h1")
    assert {i.identity() for i in compiled.conflict_set} == {
        i.identity() for i in interpreted.conflict_set
    }
    report(
        "equivalence",
        [("conflict-set identity", "bit-identical", "bit-identical")],
    )
