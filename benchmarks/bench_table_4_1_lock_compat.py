"""Table 4.1 — the Rc/Ra/Wa lock compatibility matrix.

Paper (rows: requested by P_i, columns: held by P_j)::

            held Rc   held Ra   held Wa
    req Rc     Y         Y         N
    req Ra     Y         Y         N
    req Wa     Y         N         N      <- Rc-Wa conflict allowed!
"""

from conftest import report

from repro.locks import LockManager, LockMode, table_4_1
from repro.locks.modes import PAPER_TABLE_4_1
from repro.txn import Transaction


def test_table_4_1_matrix(benchmark):
    rows = benchmark(table_4_1)
    measured = tuple(granted for _, _, granted in rows)
    assert measured == PAPER_TABLE_4_1

    report(
        "Table 4.1 — lock compatibility (requested vs held)",
        [
            (f"{req} vs {held}", paper, got)
            for (req, held, got), paper in zip(rows, PAPER_TABLE_4_1)
        ],
    )


def test_table_4_1_enforced_by_manager(benchmark):
    """The manager grants exactly per Table 4.1 (behavioral check,
    timed as a microbenchmark of the grant path)."""

    def exercise():
        outcomes = []
        for requested, held, _ in table_4_1():
            manager = LockManager(audit=False)
            holder, requester = Transaction(), Transaction()
            manager.acquire(holder, "q", LockMode(held))
            outcomes.append(
                "Y" if manager.try_acquire(requester, "q", LockMode(requested))
                else "N"
            )
        return tuple(outcomes)

    measured = benchmark(exercise)
    assert measured == PAPER_TABLE_4_1
