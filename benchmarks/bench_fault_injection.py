"""Fault injection — throughput and abort behavior vs fault rate.

Not a paper figure: this charts the robustness layer added on top of
the reproduction.  A fixed workload runs under the wave-parallel Rc
engine while a seeded chaos plan denies locks, forces mid-RHS aborts,
and crashes firings before commit; a bounded retry policy re-drives
the casualties.  The claim being measured is the paper's Definition
3.2 under adversity: every committed sequence still replays
single-threaded at every fault rate, with throughput (not
consistency) paying for the faults.

The ``paper`` column carries the fault-free expectation.
"""

import pytest
from conftest import report

from repro.engine import ParallelEngine, replay_commit_sequence
from repro.fault import FaultPlan, RetryPolicy
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.wm import WMSnapshot, WorkingMemory

#: Injection probability per fault site, swept low to hostile.
RATES = (0.0, 0.1, 0.25, 0.5)
TASKS = 24
#: Fault-free committed firings: work + audit + tally per task.
FAULT_FREE_FIRINGS = TASKS * 3


def _rules():
    return [
        RuleBuilder("work")
        .when("task", id=var("t"), state="todo")
        .modify(1, state="done")
        .build(),
        RuleBuilder("audit")
        .when("task", id=var("t"), state="todo")
        .make("seen", task=var("t"))
        .build(),
        RuleBuilder("tally")
        .when("seen", task=var("t"))
        .remove(1)
        .build(),
    ]


def _chaos_run(rate, seed=7):
    rules = _rules()
    wm = WorkingMemory()
    for i in range(TASKS):
        wm.make("task", id=i, state="todo")
    snapshot = WMSnapshot.capture(wm)
    injector = (
        FaultPlan.chaos(seed, rate).injector() if rate > 0 else None
    )
    engine = ParallelEngine(
        rules,
        wm,
        scheme="rc",
        retry_policy=RetryPolicy(max_attempts=6, seed=seed),
        fault_injector=injector,
    )
    result = engine.run(max_waves=500)
    replay = replay_commit_sequence(snapshot, rules, result.firings)
    return engine, injector, result, replay


@pytest.mark.parametrize("rate", RATES)
def test_consistency_and_throughput_vs_fault_rate(benchmark, rate):
    engine, injector, result, replay = benchmark(lambda: _chaos_run(rate))
    assert replay.consistent, replay.detail
    # audit/tally never touch contended state once work gives up, so a
    # hostile schedule may shed firings — but never consistency.
    assert result.stop_reason in ("quiescent", "retries_exhausted")
    report(
        f"fault injection — chaos rate {rate}",
        [
            ("committed firings", FAULT_FREE_FIRINGS,
             len(result.firings)),
            ("faults injected", 0,
             injector.total_injected if injector else 0),
            ("retries charged", 0, engine.retry_count),
            ("firings gave up", 0, len(engine.gave_up)),
            ("virtual backoff (s)", 0.0,
             round(engine.retry_clock.total, 4)),
            ("rule-(ii) aborts", 0, engine.abort_count),
            ("replay consistent", True, replay.consistent),
        ],
    )


def test_fault_free_run_commits_everything(benchmark):
    engine, injector, result, replay = benchmark(
        lambda: _chaos_run(0.0)
    )
    assert injector is None
    assert len(result.firings) == FAULT_FREE_FIRINGS
    assert result.stop_reason == "quiescent"
    assert replay.consistent
    report(
        "fault injection — fault-free baseline",
        [
            ("committed firings", FAULT_FREE_FIRINGS,
             len(result.firings)),
            ("stop reason", "quiescent", result.stop_reason),
        ],
    )


def test_determinism_same_seed_same_run(benchmark):
    """The chaos harness itself is reproducible: one seed, one run."""

    def both():
        a = _chaos_run(0.25, seed=11)
        b = _chaos_run(0.25, seed=11)
        return a, b

    (ea, ia, ra, _), (eb, ib, rb, _) = benchmark(both)
    # Timetags are process-global, so compare the firing *sequence*
    # (rule names in commit order), which is the determinism contract.
    same_sequence = [f.rule_name for f in ra.firings] == [
        f.rule_name for f in rb.firings
    ]
    assert same_sequence
    assert ia.summary() == ib.summary()
    assert ea.retry_count == eb.retry_count
    report(
        "fault injection — determinism (seed 11, rate 0.25)",
        [
            ("firing sequences identical", True, same_sequence),
            ("faults injected", ia.total_injected, ib.total_injected),
        ],
    )
