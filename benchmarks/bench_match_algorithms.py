"""Extension — naive vs Rete vs TREAT match cost (Section 2's survey).

The paper credits Rete [FORG82] with (1) incremental evaluation via
stored partial matches and (2) shared subexpressions, and cites TREAT
[MIRA84] as the conflict-set-retaining alternative.  This bench times
all three on an incremental delta stream; expected shape: naive pays a
full re-match per delta and loses by a growing factor as working memory
grows.  The partitioned entries (ISSUE 2) wrap the same inner
algorithms in :class:`~repro.match.partitioned.PartitionedMatcher`
and must agree with the monolithic runs while exposing the sharding
overhead in the timing table.
"""

import pytest
from conftest import report

from repro.lang import RuleBuilder
from repro.lang.builder import gt, var
from repro.match import (
    CondRelationMatcher,
    NaiveMatcher,
    PartitionedMatcher,
    ReteMatcher,
    TreatMatcher,
)
from repro.wm import WorkingMemory


def _partitioned(inner, backend):
    def factory(wm):
        return PartitionedMatcher(wm, shards=4, inner=inner, backend=backend)

    return factory


MATCHERS = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
    "partitioned-rete": _partitioned("rete", "serial"),
    "partitioned-rete-threads": _partitioned("rete", "thread"),
    "partitioned-treat": _partitioned("treat", "serial"),
}


def _program():
    return [
        RuleBuilder("pair")
        .when("order", id=var("o"), status="open")
        .when("line", order=var("o"))
        .make("picked", order=var("o"))
        .build(),
        RuleBuilder("big")
        .when("order", total=gt(500), status="open")
        .make("review")
        .build(),
        RuleBuilder("lonely")
        .when("order", id=var("o"))
        .when_not("line", order=var("o"))
        .make("nag", order=var("o"))
        .build(),
    ]


def _drive(matcher_cls, n_orders: int):
    wm = WorkingMemory()
    matcher = matcher_cls(wm)
    matcher.add_productions(_program())
    matcher.attach()
    for i in range(n_orders):
        wm.make("order", id=i, status="open", total=i * 37 % 1000)
        if i % 2 == 0:
            wm.make("line", order=i, qty=1)
    # Incremental churn: modify a slice of orders.
    for wme in list(wm.elements("order"))[: n_orders // 4]:
        wm.modify(wme, {"status": "closed"})
    size = len(matcher.conflict_set)
    matcher.detach()
    return size


@pytest.mark.parametrize("name", sorted(MATCHERS))
def test_match_algorithm_cost(benchmark, name):
    size = benchmark(_drive, MATCHERS[name], 60)
    assert size > 0


def test_matchers_agree_and_report():
    sizes = {
        name: _drive(cls, 60) for name, cls in MATCHERS.items()
    }
    assert len(set(sizes.values())) == 1
    report(
        "Match algorithms — conflict-set agreement (60 orders + churn)",
        [
            (f"{name} conflict set", sizes["naive"], size)
            for name, size in sorted(sizes.items())
        ],
    )
    print(
        "(relative timings are in the pytest-benchmark table; expected "
        "shape: rete/treat beat naive, gap grows with WM size; the "
        "partitioned wrappers add fan-out/merge overhead on top of "
        "their inner algorithm)"
    )
