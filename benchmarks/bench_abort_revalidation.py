"""Ablation — rule (ii) abort vs the revalidation alternative.

Section 4.3: "It is possible that the update by P_i may not have
changed the condition of P_j to false.  One alternative of rule (ii)
may be to reevaluate P_j's condition to see if abort is necessary, at
the expense of increased overhead."

We model a workload where a fraction of writes are *harmless* to the
readers they conflict with.  Unconditional abort wastes the reader's
work whenever it conflicts; revalidation spares the harmless fraction
at a per-conflict re-evaluation cost.
"""

from conftest import report

from repro.locks import RcScheme
from repro.txn import Transaction

N_READERS = 40
#: Fraction of Rc-Wa conflicts where the update falsified the reader.
HARMFUL_FRACTION = 0.3
#: Modeled cost of re-evaluating one condition (arbitrary units).
REVALIDATION_COST = 0.1
#: Modeled work lost per aborted reader.
ABORT_COST = 1.0


def _run(revalidate: bool):
    harmful = {
        f"reader-{i}" for i in range(int(N_READERS * HARMFUL_FRACTION))
    }
    revalidations = 0

    def revalidator(txn: Transaction, obj) -> bool:
        nonlocal revalidations
        revalidations += 1
        return txn.rule_name not in harmful

    scheme = RcScheme(revalidator=revalidator if revalidate else None)
    readers = []
    for i in range(N_READERS):
        reader = Transaction(rule_name=f"reader-{i}")
        scheme.lock_condition(reader, "q")
        readers.append(reader)
    writer = Transaction(rule_name="writer")
    scheme.lock_action(writer, writes=["q"])
    outcome = scheme.commit(writer)
    for reader in readers:
        if reader.is_aborted:
            scheme.abort(reader)
    cost = (
        len(outcome.victims) * ABORT_COST
        + revalidations * REVALIDATION_COST
    )
    return outcome, revalidations, cost


def test_unconditional_abort(benchmark):
    outcome, revalidations, cost = benchmark(lambda: _run(False))
    assert len(outcome.victims) == N_READERS
    assert revalidations == 0
    report(
        "Rule (ii) — unconditional abort",
        [
            ("victims", N_READERS, len(outcome.victims)),
            ("revalidations", 0, revalidations),
            ("modeled cost", N_READERS * ABORT_COST, cost),
        ],
    )


def test_revalidation_alternative(benchmark):
    outcome, revalidations, cost = benchmark(lambda: _run(True))
    expected_victims = int(N_READERS * HARMFUL_FRACTION)
    assert len(outcome.victims) == expected_victims
    assert revalidations == N_READERS
    report(
        "Rule (ii) alternative — revalidate before aborting",
        [
            ("victims", expected_victims, len(outcome.victims)),
            ("revalidations", N_READERS, revalidations),
            ("modeled cost",
             expected_victims * ABORT_COST + N_READERS * REVALIDATION_COST,
             cost),
        ],
    )


def test_crossover_analysis():
    """Revalidation pays when spared work exceeds re-check overhead:
    cost_abort = N*A; cost_reval = harmful*N*A + N*R — crossover at
    harmful_fraction = 1 - R/A."""
    _, _, abort_cost = _run(False)
    _, _, reval_cost = _run(True)
    crossover = 1 - REVALIDATION_COST / ABORT_COST
    report(
        "Abort vs revalidation — crossover",
        [
            ("abort modeled cost", "-", abort_cost),
            ("revalidation modeled cost", "-", reval_cost),
            ("revalidation wins here", "yes" if HARMFUL_FRACTION < crossover else "no",
             "yes" if reval_cost < abort_cost else "no"),
            ("crossover harmful fraction", round(crossover, 2), round(crossover, 2)),
        ],
    )
    assert (reval_cost < abort_cost) == (HARMFUL_FRACTION < crossover)
