"""Figure 3.2 / Section 3.3 — the execution graph of the worked example.

Paper: six productions with the listed add/delete sets, initial
conflict set {P1, P2, P3, P5}; the execution graph has **nine** maximal
root-originating sequences (the paper enumerates them; our reconstructed
instance — see DESIGN.md — reproduces the count and every sequence that
is legible in the scan).
"""

from conftest import report

from repro.core import ConsistencyChecker, ExecutionGraph, section_3_3_example

PAPER_SEQUENCE_COUNT = 9
PAPER_LEGIBLE = ("p1p4p5", "p2p3p4p5", "p5p1p4p5", "p5p2p3p4p5")


def build_graph():
    return ExecutionGraph(section_3_3_example())


def test_fig_3_2_execution_graph(benchmark):
    graph = benchmark(build_graph)
    sequences = sorted(str(s) for s in graph.maximal_sequences())

    assert len(sequences) == PAPER_SEQUENCE_COUNT
    for legible in PAPER_LEGIBLE:
        assert legible in sequences

    report(
        "Figure 3.2 — execution graph of the Section 3.3 example",
        [
            ("maximal sequences", PAPER_SEQUENCE_COUNT, len(sequences)),
            ("graph states", "-", len(graph)),
            ("truncated", "no", "yes" if graph.truncated else "no"),
        ],
    )
    print("ES_single maximal sequences:")
    for sequence in sequences:
        print(f"  {sequence}")


def test_fig_3_2_membership_checker(benchmark):
    """ES_single membership via dynamics (no enumeration) — the fast
    path the consistency checker uses."""
    system = section_3_3_example()
    checker = ConsistencyChecker(system)
    graph = ExecutionGraph(system)
    members = [s.pids for s in graph.maximal_sequences()]

    def check_all():
        return all(checker.check_sequence(m) for m in members)

    assert benchmark(check_all)
