"""Extension — lock-table scaling: striped manager vs the seed's
centralized table.

The paper's Section 4 assumes "the lock manager" is a single shared
structure; on a multiprogrammed host that one mutex and its
every-queue scans become the bottleneck long before the scheme's
compatibility matrix does.  This suite measures acquire/release
throughput of the scheme layer (``try_lock_condition`` /
``try_lock_action`` / ``commit``) as a grid:

* thread count 1-8,
* contention shape (disjoint footprints, zipf-skewed shared pool,
  hot-set reads over private writes),
* scheme (standard 2PL R/W vs the Rc/Ra/Wa scheme),
* lock-table variant (``stripes=1`` seed-compatible baseline vs the
  striped table).

Throughput is lock-manager operations per second (grants + denials
from ``stats_snapshot``), best-of-``REPS`` per cell so scheduler noise
does not masquerade as a regression.  The acceptance bar — striped
>= 2x the single-stripe baseline at 8 threads on the disjoint
workload, and no more than 10% slower at 1 thread — is asserted in
full runs only.

Set ``REPRO_BENCH_SMOKE=1`` (CI bench-smoke job) for a reduced grid
that exercises every code path without asserting throughput ratios.
"""

import os
import random
import threading
import time

import pytest
from conftest import report

from repro.locks import RcScheme, TwoPhaseScheme
from repro.txn.transaction import Transaction
from repro.errors import TransactionError

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
THREAD_COUNTS = (1, 2) if SMOKE else (1, 2, 4, 8)
CYCLES = 60 if SMOKE else 600  # per thread
REPS = 1 if SMOKE else 3
STRIPES = 8  # the striped variant's stripe count

SCHEMES = {"2pl": TwoPhaseScheme, "rc": RcScheme}

N_PRIVATE = 16  # per-thread objects, disjoint/hot_set workloads
N_SHARED = 64  # zipf shared pool
N_HOT = 4  # hot_set read targets


def _workload(contention, tid, cycles):
    """Deterministic per-thread schedule: list of (reads, writes)."""
    rng = random.Random(9000 + 131 * tid)
    private = [("d", tid, k) for k in range(N_PRIVATE)]
    if contention == "disjoint":
        # The seed probe workload: 4 condition reads + 2 action writes
        # rotating over a private footprint.  Zero cross-thread
        # conflicts, so throughput is pure lock-manager pathlength.
        return [
            (
                tuple(private[(4 * i + j) % N_PRIVATE] for j in range(4)),
                tuple(private[(4 * i + j) % N_PRIVATE] for j in range(2)),
            )
            for i in range(cycles)
        ]
    if contention == "zipf":
        # Skewed access over one shared pool: most cycles touch the
        # head of the distribution, so denials and (for Rc/Wa) rule-(ii)
        # aborts are common.
        def pick():
            return ("z", min(int(rng.paretovariate(1.1)), N_SHARED) - 1)

        return [
            (tuple(pick() for _ in range(3)), (pick(),))
            for _ in range(cycles)
        ]
    if contention == "hot_set":
        # Reads hammer a tiny hot set, writes stay private — the
        # read-mostly shape where Rc-Rc (and R-R) sharing should keep
        # denial rates low despite full overlap.
        hot = [("h", k) for k in range(N_HOT)]
        return [
            (
                (rng.choice(hot), rng.choice(hot)),
                tuple(private[(2 * i + j) % N_PRIVATE] for j in range(2)),
            )
            for i in range(cycles)
        ]
    raise ValueError(contention)


def _run_cell(scheme_name, contention, nthreads, stripes):
    """One grid cell: returns {'ops_per_s', 'commits', 'denied'}."""
    scheme = SCHEMES[scheme_name](audit=False, stripes=stripes)
    workloads = [
        _workload(contention, tid, CYCLES) for tid in range(nthreads)
    ]
    start = threading.Barrier(nthreads + 1)
    done = threading.Barrier(nthreads + 1)
    commits = [0] * nthreads
    denied = [0] * nthreads

    def worker(tid):
        schedule = workloads[tid]
        ok_count = 0
        no_count = 0
        start.wait()
        for reads, writes in schedule:
            txn = Transaction(rule_name=f"w{tid}")
            try:
                granted = True
                for obj in reads:
                    if not scheme.try_lock_condition(txn, obj):
                        granted = False
                        break
                if granted and scheme.try_lock_action(txn, writes=writes):
                    scheme.commit(txn)
                    ok_count += 1
                else:
                    scheme.abort(txn, "lock denied")
                    no_count += 1
            except TransactionError:
                # A concurrent committer force-aborted us (rule (ii))
                # mid-cycle; release whatever we still hold.
                scheme.abort(txn, "forced abort mid-cycle")
                no_count += 1
        commits[tid] = ok_count
        denied[tid] = no_count
        done.wait()

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(nthreads)
    ]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    done.wait()
    wall = time.perf_counter() - t0
    for t in threads:
        t.join()

    snap = scheme.manager.stats_snapshot()
    ops = snap["grants"] + snap["denials"]
    # Post-run invariants: everything released, table consistent.
    assert not scheme.manager.grant_table()
    scheme.manager.audit_now()
    assert ops > 0
    return {
        "ops_per_s": ops / wall,
        "commits": sum(commits),
        "denied": sum(denied),
    }


def _best(scheme_name, contention, nthreads, stripes):
    return max(
        (_run_cell(scheme_name, contention, nthreads, stripes)
         for _ in range(REPS)),
        key=lambda cell: cell["ops_per_s"],
    )


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
@pytest.mark.parametrize("contention", ["disjoint", "zipf", "hot_set"])
def test_lock_scaling(contention, scheme_name):
    rows = []
    speedups = {}
    for nthreads in THREAD_COUNTS:
        single = _best(scheme_name, contention, nthreads, stripes=1)
        striped = _best(scheme_name, contention, nthreads, stripes=STRIPES)
        # Liveness: every shape must still commit work in both variants.
        assert single["commits"] > 0 and striped["commits"] > 0
        ratio = striped["ops_per_s"] / single["ops_per_s"]
        speedups[nthreads] = ratio
        expected = "-"
        if contention == "disjoint":
            if nthreads == 1:
                expected = ">= 0.9"
            elif nthreads == max(THREAD_COUNTS):
                expected = ">= 2.0"
        rows.append(
            (f"x{nthreads} single lock-ops/s", "-",
             round(single["ops_per_s"]))
        )
        rows.append(
            (f"x{nthreads} striped({STRIPES}) lock-ops/s", "-",
             round(striped["ops_per_s"]))
        )
        rows.append(
            (f"x{nthreads} striped/single", expected, round(ratio, 2))
        )
        rows.append(
            (f"x{nthreads} striped commits", "-", striped["commits"])
        )

    # Same title in smoke and full runs, so CI's reduced grid diffs
    # cleanly against the committed full-grid baseline.
    title = f"Lock-table scaling — {scheme_name} / {contention}"
    print()
    print(title + (" (smoke)" if SMOKE else ""))
    for quantity, expected, measured in rows:
        print(f"  {quantity:<34} {str(expected):>8} {measured:>12}")
    report(title, rows)

    assert all(s > 0 for s in speedups.values())
    if not SMOKE and contention == "disjoint":
        # Acceptance: the striped table at least doubles disjoint
        # throughput at full thread count and costs <= 10% serially.
        assert speedups[max(THREAD_COUNTS)] >= 2.0
        assert speedups[1] >= 0.9
