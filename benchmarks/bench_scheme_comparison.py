"""Extension — Rc/Ra/Wa vs standard 2PL (the Section 4.3 claim).

The paper's motivation: 2PL's condition read locks "are held more
conservatively than necessary while other productions ready for
execution must wait for their release."  This bench measures both
schemes on (a) the reader/writer pathology and (b) random contended
batches, using the real lock managers inside the discrete-event
simulator.  Expected shape: Rc makespan <= 2PL makespan, at the cost of
aborted (wasted) work.
"""

from statistics import mean

from conftest import report

from repro.sim.lock_sim import simulate_lock_scheme
from repro.sim.workload import (
    disjoint_firing_batch,
    random_firing_batch,
    reader_writer_chain,
)


def test_reader_writer_pathology(benchmark):
    batch = reader_writer_chain(n_readers=6, act_time=8)

    def run_all():
        return (
            simulate_lock_scheme(batch, 12, scheme="c2pl"),
            simulate_lock_scheme(batch, 12, scheme="2pl"),
            simulate_lock_scheme(batch, 12, scheme="rc"),
        )

    c2pl, two_pl, rc = benchmark(run_all)
    # The concurrency ordering: preclaiming <= 2PL <= Rc.
    assert rc.makespan < two_pl.makespan <= c2pl.makespan
    report(
        "Section 4.3 claim — reader/writer chain (6 readers, 1 writer)",
        [
            ("conservative 2PL makespan", "most blocking", c2pl.makespan),
            ("2PL makespan", "writer waits", two_pl.makespan),
            ("Rc makespan", "writer barges", rc.makespan),
            ("improvement (Rc vs 2PL)", "> 1x",
             f"{two_pl.makespan / rc.makespan:.2f}x"),
            ("Rc aborts (rule ii)", "> 0", len(rc.aborted)),
            ("Rc wasted time", "> 0", rc.wasted_time),
            ("2PL blocked time", "> 0", two_pl.blocked_time),
            ("c2pl deadlocks", 0, c2pl.deadlock_aborts),
        ],
    )


def test_random_contended_batches(benchmark):
    batches = [
        random_firing_batch(16, n_objects=8, seed=seed)
        for seed in range(6)
    ]

    def run_all():
        rows = []
        for batch in batches:
            two_pl = simulate_lock_scheme(batch, 8, scheme="2pl")
            rc = simulate_lock_scheme(
                batch, 8, scheme="rc", restart_aborted=True
            )
            rows.append((two_pl, rc))
        return rows

    rows = benchmark(run_all)
    mean_2pl = mean(r[0].makespan for r in rows)
    mean_rc = mean(r[1].makespan for r in rows)
    wins = sum(1 for two_pl, rc in rows if rc.makespan <= two_pl.makespan)
    # With restart, every firing commits under both schemes.
    assert all(len(rc.committed) == 16 for _, rc in rows)
    assert all(len(tp.committed) == 16 for tp, _ in rows)
    assert wins >= len(rows) // 2

    report(
        "Section 4.3 claim — random batches (16 firings, 8 objects, restart)",
        [
            ("mean 2PL makespan", "-", round(mean_2pl, 2)),
            ("mean Rc makespan", "<= 2PL", round(mean_rc, 2)),
            ("Rc wins", f">= {len(rows)//2}/{len(rows)}", f"{wins}/{len(rows)}"),
            (
                "mean Rc restarts",
                "-",
                round(mean(len(rc.aborted) for _, rc in rows), 2),
            ),
            (
                "mean 2PL deadlock aborts",
                "-",
                round(mean(tp.deadlock_aborts for tp, _ in rows), 2),
            ),
        ],
    )


def test_zero_contention_control(benchmark):
    """Control group: with disjoint footprints both schemes must hit
    the embarrassingly parallel optimum."""
    batch = disjoint_firing_batch(8, match_time=1, act_time=4)

    def run_both():
        return (
            simulate_lock_scheme(batch, 8, scheme="2pl").makespan,
            simulate_lock_scheme(batch, 8, scheme="rc").makespan,
        )

    two_pl, rc = benchmark(run_both)
    assert two_pl == rc == 5.0
    report(
        "Control — zero contention",
        [("2PL makespan", 5.0, two_pl), ("Rc makespan", 5.0, rc)],
    )
