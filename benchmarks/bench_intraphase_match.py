"""Extension — intra-phase parallelism: parallelizing match itself.

Section 2's user-transparent form (1), backed by the survey's parallel
match work [GUPT86, MIRA84, RAMN86].  Production-partitioned match is
modeled as LPT scheduling of per-production match costs; the key shape
(Gupta's empirical finding) is early saturation: skewed costs cap the
attainable speedup at ``Σ cost / max cost`` regardless of processors.

Since ISSUE 2 the model has an executable counterpart:
:class:`repro.match.partitioned.PartitionedMatcher`.  The second half
of this module validates it both ways — the DES substrate's virtual
makespans against the analytic ``lpt_makespan`` curve (within 5% on
the skewed-cost workload), and the real-thread substrate's conflict
set bit-for-bit against the monolithic matcher on Miss Manners.
"""

from conftest import report

from repro.analysis.match_parallel import (
    lpt_assignment,
    lpt_makespan,
    match_speedup,
    skewed_costs,
    speedup_ceiling,
    speedup_curve,
)
from repro.engine import Interpreter
from repro.lang import RuleBuilder
from repro.lang.builder import var
from repro.match import PartitionedMatcher, ReteMatcher
from repro.wm import WorkingMemory
from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
    validate_seating,
)

PROCESSORS = (1, 2, 4, 8, 16, 32, 64)


def test_match_parallel_saturation(benchmark):
    costs = skewed_costs(60, skew=1.2, seed=11)

    def curve():
        return speedup_curve(costs, PROCESSORS)

    points = benchmark(curve)
    ceiling = speedup_ceiling(costs)
    values = dict(points)
    assert values[1] == 1.0
    assert all(s <= ceiling + 1e-9 for _, s in points)
    # Saturation: the last doubling adds (much) less than the first.
    assert (values[2] - values[1]) > (values[64] - values[32])

    report(
        "Intra-phase match parallelism — skewed costs (60 rules)",
        [
            (f"speedup @ Np={count}", "<= ceiling", round(speedup, 3))
            for count, speedup in points
        ]
        + [("skew ceiling (sum/max)", "-", round(ceiling, 3))],
    )


def test_balanced_costs_scale_to_ceiling(benchmark):
    costs = [1.0] * 64

    def run():
        return match_speedup(costs, 64)

    speedup = benchmark(run)
    assert speedup == 64.0
    report(
        "Intra-phase match parallelism — balanced control",
        [("speedup @ Np=64, equal costs", 64, speedup)],
    )


# -- executable PartitionedMatcher vs the analytic model ---------------------------------


def _cost_program(n_productions: int):
    """One trivial production per cost entry; all match ``tick`` WMEs."""
    return [
        RuleBuilder(f"p{i:02d}")
        .when("tick", k=var("x"))
        .make("out", rule=i)
        .build()
        for i in range(n_productions)
    ]


def test_partitioned_des_validates_lpt_predictions(benchmark):
    """Acceptance: DES substrate within 5% of ``lpt_makespan``.

    Skewed per-production costs (the Gupta workload of the analytic
    test above), LPT sharding, one delta batch: the virtual makespan
    the executable matcher accumulates must reproduce the analytic LPT
    prediction, and the measured virtual speedup must respect the skew
    ceiling.
    """
    costs = skewed_costs(60, skew=1.2, seed=11)
    rules = _cost_program(len(costs))
    cost_map = {f"p{i:02d}": costs[i] for i in range(len(costs))}
    rows = []

    def run_all():
        results = []
        for shards in (2, 4, 8, 16):
            memory = WorkingMemory()
            matcher = PartitionedMatcher(
                memory,
                shards=shards,
                inner="treat",
                backend="des",
                assign="lpt",
                cost_model=cost_map,
            )
            matcher.add_productions(rules)
            matcher.attach()
            with matcher.batch():
                memory.make("tick", k=1)
            results.append((shards, matcher))
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    ceiling = speedup_ceiling(costs)
    for shards, matcher in results:
        predicted = lpt_makespan(costs, shards)
        measured = matcher.virtual_makespan
        assert abs(measured - predicted) <= 0.05 * predicted, (
            f"Np={shards}: DES makespan {measured:.3f} deviates from "
            f"LPT prediction {predicted:.3f} by more than 5%"
        )
        # The match really executed: every production matched the tick.
        assert len(matcher.conflict_set) == len(costs)
        speedup = matcher.virtual_speedup()
        assert speedup <= ceiling + 1e-9
        # The shard loads realize the analytic LPT schedule.
        loads = [0.0] * shards
        for index, shard in enumerate(lpt_assignment(costs, shards)):
            loads[shard] += costs[index]
        assert abs(max(loads) - predicted) < 1e-9
        rows.append(
            (
                f"DES makespan @ Np={shards}",
                round(predicted, 3),
                round(measured, 3),
            )
        )
        rows.append(
            (
                f"DES speedup @ Np={shards}",
                round(match_speedup(costs, shards), 3),
                round(speedup, 3),
            )
        )
    rows.append(("skew ceiling (sum/max)", "-", round(ceiling, 3)))
    report(
        "Executable partitioned match (DES) vs analytic LPT — "
        "skewed costs (60 rules)",
        rows,
    )


def test_partitioned_threads_bit_identical_on_manners(benchmark):
    """Acceptance: thread substrate == monolithic Rete on Manners.

    One working memory, two attached matchers: the monolithic Rete
    drives an interpreter run of mini Miss Manners while the
    partitioned matcher (4 thread shards) rides the same delta stream.
    After every cycle — and at quiescence — the shared conflict set
    must equal the monolithic one bit-for-bit (same instantiation
    identities, same timetags).
    """

    def run():
        memory = build_manners_memory(16, seed=3)
        rules = build_manners_rules()
        partitioned = PartitionedMatcher(
            memory, shards=4, inner="rete", backend="thread"
        )
        partitioned.add_productions(rules)
        partitioned.attach()
        # The Interpreter registers the rules with (and attaches) the
        # monolithic matcher itself.
        monolithic = ReteMatcher(memory)
        interpreter = Interpreter(rules, memory, matcher=monolithic)
        assert (
            partitioned.conflict_set.members()
            == monolithic.conflict_set.members()
        )
        divergences = 0
        cycles = 0
        while interpreter.step() is not None:
            cycles += 1
            if (
                partitioned.conflict_set.members()
                != monolithic.conflict_set.members()
            ):
                divergences += 1
        partitioned.detach()
        return memory, partitioned, monolithic, divergences, cycles

    memory, partitioned, monolithic, divergences, cycles = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert divergences == 0
    assert (
        partitioned.conflict_set.members()
        == monolithic.conflict_set.members()
    )
    validate_seating(memory)
    report(
        "Partitioned thread substrate vs monolithic Rete — "
        "Miss Manners (16 guests)",
        [
            ("per-cycle conflict-set divergences", 0, divergences),
            ("cycles compared", "-", cycles),
            (
                "final conflict set size",
                len(monolithic.conflict_set),
                len(partitioned.conflict_set),
            ),
            ("flushes", "-", partitioned.flush_count),
            ("deltas batched", "-", partitioned.delta_count),
        ],
    )
