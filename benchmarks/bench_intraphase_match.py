"""Extension — intra-phase parallelism: parallelizing match itself.

Section 2's user-transparent form (1), backed by the survey's parallel
match work [GUPT86, MIRA84, RAMN86].  Production-partitioned match is
modeled as LPT scheduling of per-production match costs; the key shape
(Gupta's empirical finding) is early saturation: skewed costs cap the
attainable speedup at ``Σ cost / max cost`` regardless of processors.
"""

from conftest import report

from repro.analysis.match_parallel import (
    match_speedup,
    skewed_costs,
    speedup_ceiling,
    speedup_curve,
)

PROCESSORS = (1, 2, 4, 8, 16, 32, 64)


def test_match_parallel_saturation(benchmark):
    costs = skewed_costs(60, skew=1.2, seed=11)

    def curve():
        return speedup_curve(costs, PROCESSORS)

    points = benchmark(curve)
    ceiling = speedup_ceiling(costs)
    values = dict(points)
    assert values[1] == 1.0
    assert all(s <= ceiling + 1e-9 for _, s in points)
    # Saturation: the last doubling adds (much) less than the first.
    assert (values[2] - values[1]) > (values[64] - values[32])

    report(
        "Intra-phase match parallelism — skewed costs (60 rules)",
        [
            (f"speedup @ Np={count}", "<= ceiling", round(speedup, 3))
            for count, speedup in points
        ]
        + [("skew ceiling (sum/max)", "-", round(ceiling, 3))],
    )


def test_balanced_costs_scale_to_ceiling(benchmark):
    costs = [1.0] * 64

    def run():
        return match_speedup(costs, 64)

    speedup = benchmark(run)
    assert speedup == 64.0
    report(
        "Intra-phase match parallelism — balanced control",
        [("speedup @ Np=64, equal costs", 64, speedup)],
    )
