"""Figure 5.2 / Table 5.2 — increased degree of conflict.

Paper: with Table 5.2's add/delete sets the selected sequence becomes
σ2 = p3p2 with T_single(σ2) = 5; the multiple-thread run takes 3 (P3's
commit aborts P4, P2's commit aborts P1), so speedup drops from 2.25 to
5/3 ≈ **1.67** — "the degree of conflict is thus an important factor".
"""

import pytest
from conftest import report

from repro.core import table_5_2
from repro.sim.multithread import simulate_multithread

PAPER = {"single": 5.0, "multi": 3.0, "speedup": 5 / 3}


def test_fig_5_2_conflict_degree(benchmark):
    system = table_5_2()
    result = benchmark(simulate_multithread, system, 4)

    assert result.single_thread_time == PAPER["single"]
    assert result.makespan == PAPER["multi"]
    assert result.speedup() == pytest.approx(PAPER["speedup"])
    assert set(result.aborted) == {"P1", "P4"}

    report(
        "Figure 5.2 — higher conflict (Table 5.2, Np=4)",
        [
            ("T_single(sigma)", PAPER["single"], result.single_thread_time),
            ("T_multi(sigma)", PAPER["multi"], result.makespan),
            ("speedup", round(PAPER["speedup"], 4), result.speedup()),
            ("aborted", "P1,P4", ",".join(sorted(result.aborted))),
            ("speedup vs Fig 5.1", "2.25 -> 1.67", f"-> {result.speedup():.3f}"),
        ],
    )
    print(result.trace.render(52))
