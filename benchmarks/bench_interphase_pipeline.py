"""Extension — inter-phase parallelism (Section 2's classification).

The paper lists "(2) inter-phase parallelism, i.e., overlapped
execution of different phases" among the user-transparent forms.  This
bench quantifies it with the two-stage pipeline model of
:mod:`repro.analysis.pipeline`: overlapping cycle i+1's match with
cycle i's execute.  Expected shape: speedup ≤ 2, maximized when match
and execute times balance, negligible when one phase dominates.
"""

import random

from conftest import report

from repro.analysis.pipeline import (
    balanced_speedup_bound,
    overlap_speedup,
    pipelined_time,
    sequential_time,
)

N_CYCLES = 40


def _phase_times(ratio: float, seed: int = 0):
    """Random cycles where execute ≈ ratio × match on average."""
    rng = random.Random(seed)
    match = [rng.uniform(0.5, 1.5) for _ in range(N_CYCLES)]
    execute = [m * ratio * rng.uniform(0.8, 1.2) for m in match]
    return match, execute


def test_pipeline_speedup_by_balance(benchmark):
    ratios = (0.1, 0.5, 1.0, 2.0, 10.0)

    def sweep():
        return [
            (ratio, overlap_speedup(*_phase_times(ratio)))
            for ratio in ratios
        ]

    rows = benchmark(sweep)
    by_ratio = dict(rows)
    # Balanced phases gain the most; extreme skews gain little.
    assert by_ratio[1.0] > by_ratio[0.1]
    assert by_ratio[1.0] > by_ratio[10.0]
    assert all(1.0 <= s <= 2.0 + 1e-9 for _, s in rows)

    report(
        "Inter-phase pipeline — speedup vs execute/match ratio",
        [
            (f"ratio {ratio:g}", "peak at 1.0", round(speedup, 3))
            for ratio, speedup in rows
        ]
        + [
            (
                "balanced bound (2n/(n+1))",
                round(balanced_speedup_bound(N_CYCLES), 3),
                round(balanced_speedup_bound(N_CYCLES), 3),
            )
        ],
    )


def test_pipeline_never_hurts(benchmark):
    def check():
        for seed in range(20):
            for ratio in (0.2, 1.0, 5.0):
                match, execute = _phase_times(ratio, seed)
                assert pipelined_time(match, execute) <= sequential_time(
                    match, execute
                ) + 1e-9
        return True

    assert benchmark(check)
