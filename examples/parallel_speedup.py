"""Section 5 interactively: speedup under the multiple-thread mechanism.

Reproduces every worked example of the paper's Section 5 on the
discrete-event multiprocessor simulator, prints the Gantt charts the
paper draws as Figures 5.1-5.4, then sweeps the three factors the paper
names (degree of conflict, execution times, number of processors).

Run with::

    python examples/parallel_speedup.py
"""

from repro import section_5_cases, simulate_multithread, table_5_1, table_5_2
from repro.analysis.factors import sweep_conflict_degree, sweep_processors
from repro.core.addsets import SECTION_5_EXEC_TIMES
from repro.sim.metrics import sweep_table


def worked_examples() -> None:
    print("=" * 64)
    print("Worked examples (Figures 5.1-5.4)")
    print("=" * 64)
    for case in section_5_cases():
        measured = case.run()
        status = "OK" if case.matches_paper() else "MISMATCH"
        print(
            f"{case.name:<20s} T_single={measured['single']:>4g} "
            f"(paper {case.expected_single:g})  "
            f"T_multi={measured['multi']:>3g} "
            f"(paper {case.expected_multi:g})  "
            f"speedup={measured['speedup']:.3f} "
            f"(paper {case.expected_speedup:.3f})  [{status}]"
        )


def gantt_charts() -> None:
    print()
    print("Figure 5.1 — base case, Np=4 (x = aborted work):")
    result = simulate_multithread(table_5_1(), 4)
    print(result.trace.render(48))
    print()
    print("Figure 5.4 — same system, Np=3 (P4 waits for a processor):")
    result = simulate_multithread(table_5_1(), 3)
    print(result.trace.render(48))
    print()
    print("Figure 5.2 — Table 5.2's higher conflict, Np=4:")
    result = simulate_multithread(table_5_2(), 4)
    print(result.trace.render(48))


def factor_sweeps() -> None:
    print()
    print("=" * 64)
    print("Factor sweeps (random systems; generalizing the examples)")
    print("=" * 64)
    print(
        sweep_table(
            "Speedup vs degree of conflict",
            "conflict",
            sweep_conflict_degree(trials=6),
        )
    )
    print()
    print(
        sweep_table(
            "Speedup vs number of processors",
            "Np",
            sweep_processors(trials=6),
        )
    )


def main() -> None:
    worked_examples()
    for case in section_5_cases():
        assert case.matches_paper(), case.name
    gantt_charts()
    factor_sweeps()
    print("\nparallel_speedup OK")


if __name__ == "__main__":
    main()
