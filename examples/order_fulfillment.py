"""Order fulfillment: a database production system run in parallel.

The paper's Section 1 motivates database production systems with
"manufacturing and process control" applications needing rule-based
reasoning over shared, persistent data.  This example models a small
fulfillment pipeline — reserve stock, pick, pack, ship, and restock —
and runs it three ways:

1. single execution thread (the baseline semantics),
2. the wave-parallel engine under standard 2PL,
3. the wave-parallel engine under the paper's Rc/Ra/Wa scheme,

then verifies all three reach the same database state and that each
parallel commit sequence replays single-threaded (Definition 3.2).

Run with::

    python examples/order_fulfillment.py
"""

from repro import (
    Interpreter,
    ParallelEngine,
    RuleBuilder,
    WMSnapshot,
    WorkingMemory,
    is_conflict_serializable,
    parse_production,
    replay_commit_sequence,
    var,
)

N_ORDERS = 8
STOCK_PER_SKU = 4


def build_rules():
    # The DSL allows several tests on one attribute (^qty binds AND
    # compares), which the keyword-based builder cannot express.
    reserve = parse_production(
        """
        (p reserve
           (order ^id <o> ^sku <s> ^state "new")
           (stock ^sku <s> ^qty <q> ^qty >= 1)
           -->
           (modify 1 ^state "reserved")
           (modify 2 ^qty (<q> - 1)))
        """
    )
    pick = (
        RuleBuilder("pick")
        .when("order", id=var("o"), state="reserved")
        .when_not("pick-ticket", order=var("o"))
        .make("pick-ticket", order=var("o"))
        .modify(1, state="picked")
        .build()
    )
    pack = (
        RuleBuilder("pack")
        .when("order", id=var("o"), state="picked")
        .when("pick-ticket", order=var("o"))
        .remove(2)
        .modify(1, state="packed")
        .build()
    )
    ship = (
        RuleBuilder("ship")
        .when("order", id=var("o"), state="packed")
        .modify(1, state="shipped")
        .make("manifest", order=var("o"))
        .build()
    )
    restock = (
        RuleBuilder("restock")
        .when("stock", sku=var("s"), qty=0)
        .when_not("po", sku=var("s"))
        .make("po", sku=var("s"))
        .build()
    )
    return [reserve, pick, pack, ship, restock]


def build_memory() -> WorkingMemory:
    wm = WorkingMemory()
    for sku in ("widget", "gadget"):
        wm.make("stock", sku=sku, qty=STOCK_PER_SKU)
    for order_id in range(1, N_ORDERS + 1):
        sku = "widget" if order_id % 2 else "gadget"
        wm.make("order", id=order_id, sku=sku, state="new")
    return wm


def main() -> None:
    rules = build_rules()

    # -- single thread --------------------------------------------------------
    serial_wm = build_memory()
    serial = Interpreter(rules, serial_wm).run()
    print(f"single thread : {len(serial)} firings, "
          f"{serial_wm.count('manifest')} shipped, "
          f"{serial_wm.count('po')} purchase orders")

    # -- parallel, both schemes -------------------------------------------------
    for scheme in ("2pl", "rc"):
        wm = build_memory()
        snapshot = WMSnapshot.capture(wm)
        engine = ParallelEngine(rules, wm, scheme=scheme, seed=7)
        result = engine.run()
        waves = len(engine.waves)
        print(
            f"parallel ({scheme:>3s}): {len(result)} firings in {waves} "
            f"waves, {engine.abort_count} rule-(ii) aborts, "
            f"{wm.count('manifest')} shipped"
        )

        # Same final database as the serial run?
        assert (
            wm.value_identity_set() == serial_wm.value_identity_set()
        ), f"{scheme}: parallel final state diverged"
        # Commit sequence semantically consistent (Definition 3.2)?
        replay = replay_commit_sequence(snapshot, rules, result.firings)
        assert replay.consistent, replay.detail
        # Lock history conflict-serializable?
        assert is_conflict_serializable(engine.history)
        print(f"               semantic consistency: OK ({replay.detail})")

    # Every order ends shipped; both SKUs were drained to 0 and reordered.
    shipped = [
        w for w in serial_wm.elements("order") if w["state"] == "shipped"
    ]
    assert len(shipped) == N_ORDERS
    assert serial_wm.count("po") == 2
    print("\norder_fulfillment OK")


if __name__ == "__main__":
    main()
