"""A durable, queryable knowledge base — the paper's Section 1 pitch.

"Expert system users are asking for knowledge sharing and knowledge
persistence, features found currently in databases."  This example
shows both database faces bolted onto the production system:

* **persistence** — the working memory journals to a write-ahead log
  with checkpoints (`repro.wm.storage.DurableStore`); we run rules,
  simulate a crash (abandon the process state), recover from disk, and
  continue the run seamlessly;
* **querying** — the relational query layer (`repro.wm.query.Query`)
  runs selections, joins and grouped aggregates over the same store the
  rules fire against.

Run with::

    python examples/durable_knowledge_base.py
"""

import tempfile
from pathlib import Path

from repro import Interpreter, RuleBuilder, WorkingMemory, var
from repro.lang.builder import gt
from repro.wm import DurableStore, Query


def build_rules():
    classify = (
        RuleBuilder("classify-vip")
        .when("customer", cid=var("c"), spend=gt(1000))
        .when_not("vip", cid=var("c"))
        .make("vip", cid=var("c"))
        .build()
    )
    upgrade = (
        RuleBuilder("upgrade-open-orders")
        .when("vip", cid=var("c"))
        .when("order", id=var("o"), customer=var("c"), tier="standard")
        .modify(2, tier="express")
        .build()
    )
    return [classify, upgrade]


def seed(wm: WorkingMemory) -> None:
    wm.make("customer", cid="c1", spend=2500)
    wm.make("customer", cid="c2", spend=300)
    wm.make("customer", cid="c3", spend=1800)
    for order_id, customer in [(1, "c1"), (2, "c2"), (3, "c1"), (4, "c3")]:
        wm.make("order", id=order_id, customer=customer, tier="standard")


def main() -> None:
    rules = build_rules()
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "kb"

        # -- session 1: seed, run a little, checkpoint mid-flight. -----
        wm = WorkingMemory()
        store = DurableStore(wm, directory)
        seed(wm)
        interpreter = Interpreter(rules, wm)
        interpreter.step()          # fire one rule...
        store.checkpoint()          # ...checkpoint...
        interpreter.step()          # ...one more firing lands in the WAL
        fired_before = len(interpreter.result.firings)
        print(f"session 1: {fired_before} firings persisted, then 'crash'")
        store.close()
        del wm, interpreter        # simulate losing all process state

        # -- session 2: recover from disk and finish the run. -----------
        recovered, store2 = DurableStore.open(directory)
        print(f"session 2: recovered {len(recovered)} facts from "
              f"checkpoint + WAL")
        result = Interpreter(rules, recovered).run()
        print(f"session 2: finished with {len(result.firings)} more "
              f"firings -> quiescent")
        store2.close()

        # -- query the recovered knowledge base. -------------------------
        vips = Query.from_(recovered, "vip").values("cid")
        print("VIP customers:", sorted(vips))
        express = (
            Query.from_(recovered, "order")
            .where(tier="express")
            .join("customer", "customer", "cid")
            .order_by("id")
            .rows()
        )
        print("express orders:")
        for row in express:
            print(f"  order {row['id']} for {row['customer']} "
                  f"(spend {row['customer.spend']})")
        by_tier = Query.from_(recovered, "order").group_by(
            "tier", n=("count", "id")
        )
        print("orders by tier:", by_tier)

        assert sorted(vips) == ["c1", "c3"]
        assert {row["id"] for row in express} == {1, 3, 4}
        assert by_tier == {
            "express": {"n": 3},
            "standard": {"n": 1},
        }
    print("\ndurable_knowledge_base OK")


if __name__ == "__main__":
    main()
