"""Monkey and bananas — the classic OPS5 planning problem.

The canonical production-system demo (the paper's Section 2 model is
OPS5's): a monkey must fetch bananas hanging from the ceiling by
finding a ladder, dragging it under the bananas, climbing, and
grabbing.  Written entirely in the rule DSL; state progresses purely
through working-memory modifications, and MEA-style goal chaining is
emulated with priorities.

Run with::

    python examples/monkey_bananas.py
"""

from repro import Interpreter, WorkingMemory, parse_program

RULES = """
; The monkey walks to the ladder (if it isn't already there).
(p walk-to-ladder 3
   (goal ^want "bananas")
   (monkey ^at <m> ^holding "nothing" ^on "floor")
   (ladder ^at <l> ^at <> <m>)
   -->
   (modify 2 ^at <l>)
   (write "monkey walks to" <l>))

; The monkey drags the ladder under the bananas.
(p drag-ladder 4
   (goal ^want "bananas")
   (monkey ^at <l> ^on "floor")
   (ladder ^at <l>)
   (bananas ^at <b> ^at <> <l>)
   -->
   (modify 2 ^at <b>)
   (modify 3 ^at <b>)
   (write "monkey drags ladder to" <b>))

; The monkey climbs the ladder once both are under the bananas.
(p climb-ladder 5
   (goal ^want "bananas")
   (monkey ^at <b> ^on "floor")
   (ladder ^at <b>)
   (bananas ^at <b>)
   -->
   (modify 2 ^on "ladder")
   (write "monkey climbs the ladder"))

; On the ladder under the bananas: grab them.
(p grab-bananas 6
   (goal ^want "bananas")
   (monkey ^at <b> ^on "ladder" ^holding "nothing")
   (bananas ^at <b>)
   -->
   (modify 2 ^holding "bananas")
   (remove 3)
   (write "monkey grabs the bananas!"))

; Goal satisfied: celebrate and stop.
(p goal-satisfied 9
   (goal ^want "bananas")
   (monkey ^holding "bananas")
   -->
   (remove 1)
   (write "goal achieved")
   (halt))
"""


def main() -> None:
    rules = parse_program(RULES)
    wm = WorkingMemory()
    wm.make("monkey", at="door", on="floor", holding="nothing")
    wm.make("ladder", at="window")
    wm.make("bananas", at="center")
    wm.make("goal", want="bananas")

    result = Interpreter(rules, wm, strategy="priority").run()

    print("plan:")
    for name in result.firing_sequence():
        print("  ", name)
    print("narration:")
    for line in result.outputs:
        print("  ", *line)

    assert result.firing_sequence() == (
        "walk-to-ladder",
        "drag-ladder",
        "climb-ladder",
        "grab-bananas",
        "goal-satisfied",
    )
    monkey = wm.elements("monkey")[0]
    assert monkey["holding"] == "bananas"
    assert monkey["at"] == "center"
    assert wm.count("bananas") == 0
    assert wm.count("goal") == 0
    print("\nmonkey_bananas OK")


if __name__ == "__main__":
    main()
