"""Process control: rule-based monitoring over a sensor database.

Section 1 names "manufacturing and process control" as the new database
applications needing rule-based reasoning.  This example monitors a
small plant: sensors stream readings into working memory; rules raise,
escalate and clear alarms, and shut a unit down when it overheats while
its coolant valve reports closed — exercising negation, variable joins,
predicates, arithmetic, priorities and halt.

Run with::

    python examples/process_control.py
"""

from repro import Interpreter, WorkingMemory, parse_program

RULES = """
(p raise-alarm 5
   (reading ^sensor <s> ^value <v> ^value > 90)
   (sensor ^id <s> ^unit <u>)
   -(alarm ^sensor <s>)
   -->
   (make alarm ^sensor <s> ^unit <u> ^level 1 ^peak <v>)
   (remove 1)
   (write "ALARM raised for" <s>))

(p escalate-alarm 6
   (reading ^sensor <s> ^value <v> ^value > 90)
   (alarm ^sensor <s> ^level <l> ^peak < <v>)
   -->
   (modify 2 ^level (<l> + 1) ^peak <v>)
   (remove 1)
   (write "alarm escalated for" <s>))

(p acknowledge-hot-reading 6
   (reading ^sensor <s> ^value <v> ^value > 90)
   (alarm ^sensor <s> ^level <l> ^peak >= <v>)
   -->
   (modify 2 ^level (<l> + 1))
   (remove 1)
   (write "alarm escalated for" <s>))

(p clear-alarm 4
   (reading ^sensor <s> ^value <= 90)
   (alarm ^sensor <s>)
   -->
   (remove 2)
   (remove 1)
   (write "alarm cleared for" <s>))

(p drop-normal-reading 1
   (reading ^sensor <s> ^value <= 90)
   -(alarm ^sensor <s>)
   -->
   (remove 1))

(p emergency-shutdown 9
   (alarm ^sensor <s> ^unit <u> ^level >= 3)
   (valve ^unit <u> ^state "closed")
   -->
   (make shutdown ^unit <u>)
   (write "EMERGENCY SHUTDOWN of unit" <u>)
   (halt))
"""


def feed_readings(wm: WorkingMemory) -> None:
    """A burst of telemetry: boiler-1 overheats three times running
    while its coolant valve is stuck closed; mixer-2 stays healthy."""
    wm.make("sensor", id="temp-b1", unit="boiler-1")
    wm.make("sensor", id="temp-m2", unit="mixer-2")
    wm.make("valve", unit="boiler-1", state="closed")
    wm.make("valve", unit="mixer-2", state="open")
    for value in (95, 97, 99):
        wm.make("reading", sensor="temp-b1", value=value)
    for value in (70, 85, 60):
        wm.make("reading", sensor="temp-m2", value=value)


def main() -> None:
    rules = parse_program(RULES)
    wm = WorkingMemory()
    feed_readings(wm)

    interpreter = Interpreter(rules, wm, strategy="priority")
    result = interpreter.run()

    print("firing sequence:")
    for name in result.firing_sequence():
        print("  ", name)
    print("console output:")
    for line in result.outputs:
        print("  ", *line)

    # boiler-1: alarm raised on the hottest reading (99, LEX recency),
    # then the two remaining hot readings escalate it to level 3;
    # valve closed -> shutdown fires at priority 9 and halts.
    assert result.halted
    alarms = wm.elements("alarm")
    assert len(alarms) == 1
    assert alarms[0]["sensor"] == "temp-b1"
    assert alarms[0]["level"] == 3
    assert alarms[0]["peak"] == 99
    assert [w["unit"] for w in wm.elements("shutdown")] == ["boiler-1"]
    # mixer-2 never alarmed (halt preempts its low-priority cleanup).
    assert all(w["sensor"] != "temp-m2" for w in wm.elements("alarm"))
    print("\nprocess_control OK")


if __name__ == "__main__":
    main()
