"""Quickstart: define rules, run the production system, inspect results.

Run with::

    python examples/quickstart.py
"""

from repro import Interpreter, RuleBuilder, WorkingMemory, parse_production, var
from repro.lang.builder import gt


def main() -> None:
    # -- 1. Rules can be written in the OPS5-style DSL... ------------------
    ship = parse_production(
        """
        (p ship-order
           (order ^id <o> ^status "open" ^total > 50)
           -(hold ^order <o>)
           -->
           (modify 1 ^status "shipped")
           (make shipment ^order <o>)
           (write "shipped order" <o>))
        """
    )

    # -- ...or built programmatically with the fluent builder. -------------
    audit = (
        RuleBuilder("audit-shipment")
        .when("shipment", order=var("o"))
        .when("order", id=var("o"), status="shipped")
        .make("audit", order=var("o"))
        .remove(1)
        .build()
    )
    flag_big = (
        RuleBuilder("flag-big-order")
        .when("order", id=var("o"), total=gt(200))
        .when_not("review", order=var("o"))
        .make("review", order=var("o"))
        .build()
    )

    # -- 2. Populate working memory (the "database"). ----------------------
    wm = WorkingMemory()
    for order_id, total in [(1, 40), (2, 120), (3, 80), (4, 250)]:
        wm.make("order", id=order_id, status="open", total=total)
    wm.make("hold", order=3)  # order 3 is held: ship-order must skip it

    # -- 3. Run the match-select-execute cycle to quiescence. --------------
    interpreter = Interpreter([ship, audit, flag_big], wm, matcher="rete")
    result = interpreter.run()

    print("firing sequence:", " ".join(result.firing_sequence()))
    print("stop reason:    ", result.stop_reason)
    print("write output:   ", result.outputs)
    print()
    print("final working memory:")
    for wme in sorted(wm, key=lambda w: (w.relation, w.timetag)):
        print("  ", wme)

    # Orders 2 and 4 shipped (order 1 too small, order 3 held); order 4
    # also got a review; every shipment was consumed by the audit rule.
    assert {w["order"] for w in wm.elements("audit")} == {2, 4}
    assert wm.count("shipment") == 0
    assert {w["order"] for w in wm.elements("review")} == {4}
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
