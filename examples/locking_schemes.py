"""The Rc/Ra/Wa scheme vs standard 2PL, hands-on (Section 4).

Walks through the paper's locking story at three levels:

1. **Table 4.1** — the compatibility matrix, printed from the live
   lock manager.
2. **Figures 4.3/4.4** — the commit-order rules, driven directly
   against the :class:`RcScheme` API.
3. **The performance claim** — the reader/writer pathology simulated
   under both schemes with the discrete-event simulator.

Run with::

    python examples/locking_schemes.py
"""

from repro import (
    History,
    RcScheme,
    Transaction,
    TwoPhaseScheme,
    is_conflict_serializable,
    simulate_lock_scheme,
    table_4_1,
)
from repro.sim.workload import reader_writer_chain


def show_table_4_1() -> None:
    print("Table 4.1 — lock compatibility (requested vs held):")
    print("          held Rc   held Ra   held Wa")
    rows = table_4_1()
    for start in (0, 3, 6):
        requested = rows[start][0]
        cells = "      ".join(g for _, _, g in rows[start:start + 3])
        print(f"  req {requested:<3s}    {cells}")
    print("  (Wa over Rc = Y is 'the key to enhanced parallelism')\n")


def figure_4_3() -> None:
    print("Figure 4.3 — Pj holds Rc(q); Pi takes Wa(q) anyway:")

    # (a) Rc holder reaches commit first: both survive.
    history = History()
    scheme = RcScheme(history=history)
    pi, pj = Transaction(rule_name="Pi"), Transaction(rule_name="Pj")
    scheme.lock_condition(pj, "q")
    scheme.lock_action(pi, writes=["q"])
    scheme.commit(pj)
    outcome = scheme.commit(pi)
    assert not outcome.victims
    print(f"  (a) Pj commits first -> both commit; "
          f"serial order {' '.join(history.commit_order())}, "
          f"serializable={is_conflict_serializable(history)}")

    # (b) Wa holder reaches commit first: Rc holders are aborted.
    scheme = RcScheme()
    pi, pj = Transaction(rule_name="Pi"), Transaction(rule_name="Pj")
    scheme.lock_condition(pj, "q")
    scheme.lock_action(pi, writes=["q"])
    outcome = scheme.commit(pi)
    scheme.abort(pj)
    assert [v.rule_name for v in outcome.victims] == ["Pj"]
    print(f"  (b) Pi commits first -> Pj forced to abort "
          f"(victims: {[v.rule_name for v in outcome.victims]})\n")


def figure_4_4() -> None:
    print("Figure 4.4 — circular conflict (Pi: Rc q, Wa r; Pj: Rc r, Wa q):")
    scheme = RcScheme()
    pi, pj = Transaction(rule_name="Pi"), Transaction(rule_name="Pj")
    scheme.lock_condition(pi, "q")
    scheme.lock_condition(pj, "r")
    scheme.lock_action(pi, writes=["r"])
    scheme.lock_action(pj, writes=["q"])
    outcome = scheme.commit(pi)
    scheme.abort(pj)
    print(f"  Pi commits -> Pj aborts; exactly one survives "
          f"({pi.state.value} / {pj.state.value})")
    print("  (Under 2PL this same shape deadlocks; under Rc it cannot.)\n")


def two_pl_contrast() -> None:
    print("2PL contrast — the writer is blocked by a condition reader:")
    scheme = TwoPhaseScheme()
    reader, writer = Transaction(rule_name="reader"), Transaction(
        rule_name="writer"
    )
    scheme.lock_condition(reader, "q")
    granted = scheme.try_lock_action(writer, writes=["q"])
    print(f"  writer W(q) while reader holds R(q): granted={granted}\n")


def performance_claim() -> None:
    print("Performance — 6 long readers + 1 writer on 12 processors:")
    batch = reader_writer_chain(n_readers=6, act_time=8)
    for scheme in ("2pl", "rc"):
        result = simulate_lock_scheme(batch, 12, scheme=scheme)
        print(
            f"  {scheme:>3s}: makespan={result.makespan:>5g}  "
            f"committed={len(result.committed)}  "
            f"aborted={len(result.aborted)}  "
            f"blocked={result.blocked_time:g}  "
            f"wasted={result.wasted_time:g}"
        )
    rc = simulate_lock_scheme(batch, 12, scheme="rc")
    two_pl = simulate_lock_scheme(batch, 12, scheme="2pl")
    assert rc.makespan < two_pl.makespan
    print(f"  -> Rc commits the writer {two_pl.makespan / rc.makespan:.1f}x "
          f"sooner, paying with aborted reader work.")


def main() -> None:
    show_table_4_1()
    figure_4_3()
    figure_4_4()
    two_pl_contrast()
    performance_claim()
    print("\nlocking_schemes OK")


if __name__ == "__main__":
    main()
