"""Interference detection between productions.

Footnote 3 defines interference behaviorally: "Production P1 interferes
with production P2 if the execution of P1's RHS can cause P2's LHS to
become false."  Footnote 4 observes the operational criterion:
"Incidentally, these criteria are identical to detecting conflicting
database operations [PAPA 86]" — i.e. read-write or write-write overlap
on data objects.

Two levels are provided:

* **static / template level** (used by Section 4.1's static approach):
  relations a production may read vs. relations another may write,
  from the productions' access templates.  Sound but conservative —
  the "false interference" problem the paper describes for
  hierarchically structured data.
* **dynamic / instantiation level**: concrete data-object footprints
  of two instantiations about to fire; exact for the objects known at
  run time, which is why the dynamic approach wins.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.lang.production import Production
from repro.match.instantiation import Instantiation
from repro.txn.transaction import DataObject
from repro.wm.element import data_object_key
from repro.wm.schema import Catalog


def interferes(first: Production, second: Production) -> bool:
    """Static (template-level) interference test.

    True when a read-write or write-write overlap exists between the
    relations the two productions touch.  Symmetric by construction
    (the static partitioning needs an undirected relation).
    """
    if first.name == second.name:
        return True
    r1, w1 = first.read_relations(), first.write_relations()
    r2, w2 = second.read_relations(), second.write_relations()
    return bool((w1 & r2) or (w2 & r1) or (w1 & w2))


def interference_graph(
    productions: Sequence[Production],
) -> dict[str, set[str]]:
    """Undirected interference graph over production names."""
    graph: dict[str, set[str]] = {p.name: set() for p in productions}
    for i, first in enumerate(productions):
        for second in productions[i + 1:]:
            if interferes(first, second):
                graph[first.name].add(second.name)
                graph[second.name].add(first.name)
    return graph


# ---------------------------------------------------------------------------
# Dynamic (instantiation-level) interference
# ---------------------------------------------------------------------------


def instantiation_read_objects(
    instantiation: Instantiation,
) -> frozenset[DataObject]:
    """Data objects the instantiation's LHS read.

    Matched WMEs are read at tuple granularity; negated condition
    elements read *absence*, protected at relation level via the
    catalog key (Section 4.3's escalation argument).
    """
    objects: set[DataObject] = {
        data_object_key(w) for w in instantiation.wmes
    }
    for element in instantiation.production.negative_elements():
        objects.add(Catalog.catalog_lock_key(element.relation))
    return frozenset(objects)


def instantiation_write_objects(
    instantiation: Instantiation,
) -> frozenset[DataObject]:
    """Data objects the instantiation's RHS will write.

    ``modify``/``remove`` write the matched tuples; ``make`` writes a
    fresh tuple whose key is unknown before execution, so membership
    changes are protected at relation level (the catalog key), which
    also covers negative-condition invalidation.
    """
    from repro.lang.ast import MakeAction, ModifyAction, RemoveAction

    production = instantiation.production
    positive = production.positive_indices()
    objects: set[DataObject] = set()
    for action in production.rhs:
        if isinstance(action, (ModifyAction, RemoveAction)):
            wme_position = positive.index(action.ce_index - 1)
            wme = instantiation.wmes[wme_position]
            objects.add(data_object_key(wme))
            objects.add(Catalog.catalog_lock_key(wme.relation))
        elif isinstance(action, MakeAction):
            objects.add(Catalog.catalog_lock_key(action.relation))
    return frozenset(objects)


def conflicting_objects(
    first: Instantiation, second: Instantiation
) -> frozenset[DataObject]:
    """Objects on which the two instantiations dynamically conflict.

    Read-write and write-write overlaps count; read-read does not —
    the [PAPA86] criterion at instantiation granularity.  Relation-
    level (catalog) objects intersect tuple-level objects of the same
    relation, modelling the containment of escalated locks.
    """
    r1, w1 = instantiation_read_objects(first), instantiation_write_objects(first)
    r2, w2 = instantiation_read_objects(second), instantiation_write_objects(second)

    def overlap(
        left: frozenset[DataObject], right: frozenset[DataObject]
    ) -> set[DataObject]:
        direct = set(left & right)
        for obj in left:
            for other in right:
                if _covers(obj, other) or _covers(other, obj):
                    direct.add(obj)
                    direct.add(other)
        return direct

    return frozenset(overlap(w1, r2) | overlap(w2, r1) | overlap(w1, w2))


def dynamic_interferes(first: Instantiation, second: Instantiation) -> bool:
    """True when two instantiations conflict on at least one object."""
    return bool(conflicting_objects(first, second))


def _covers(coarse: DataObject, fine: DataObject) -> bool:
    """Relation-level catalog object covers tuple objects of the relation."""
    if not (isinstance(coarse, tuple) and isinstance(fine, tuple)):
        return False
    if len(coarse) != 2 or len(fine) != 2:
        return False
    if coarse[0] != Catalog.SYSTEM_RELATION:
        return False
    return coarse[1] == fine[0]


def noninterfering_classes(
    productions: Sequence[Production],
) -> list[frozenset[str]]:
    """Connected components of the interference graph.

    Productions in *different* components can always run in parallel;
    this is the coarsest sound static partitioning (finer ones are in
    :mod:`repro.core.static_partition`).
    """
    graph = interference_graph(productions)
    seen: set[str] = set()
    components: list[frozenset[str]] = []
    for start in graph:
        if start in seen:
            continue
        stack = [start]
        component: set[str] = set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(graph[node] - component)
        seen |= component
        components.append(frozenset(component))
    return components
