"""The add/delete-set abstraction (Section 3.3).

"The execution of a production P_i causes some productions to be
added to / deleted from the conflict set.  These are the add set
(A_i^a) and delete set (A_i^d) of P_i.  In general these will depend
on P_i and the current database state.  However, for illustration we
assume the dependence is only on P_i."

An :class:`AddDeleteSystem` is that illustration made executable: a
production system reduced to conflict-set dynamics.  Firing ``p`` in
conflict set ``PA`` yields::

    PA' = ((PA - {p}) - A_p^d)  ∪  A_p^a

(the fired production leaves the set; its delete set deactivates
productions; its add set activates productions).  The execution graph,
semantic-consistency checker and all Section 5 speedup examples are
built over this abstraction; the engine modules connect it to real
working-memory-backed systems.

Reconstruction note
-------------------
The scanned paper's listing of the Section 3.3 sets and of Tables
5.1/5.2 is OCR-corrupted.  The instances below were *reconstructed* to
satisfy every legible constraint:

* Section 3.3: six productions, initial conflict set
  ``{P1, P2, P3, P5}``, exactly **nine** maximal execution sequences,
  including the legible sequences ``p1p4p5``, ``p2p3p4p5``,
  ``p5p1p4p5`` and ``p5p2p3p4p5`` (and P5 firing twice in some).
* Table 5.1 (base case of Section 5): ``σ1 = p2p3p4`` is an allowable
  sequence, P1 is deactivated by P2's commit, giving the paper's
  ``T_single = 9``, ``T_multi = 4``, speedup 2.25 with
  ``T = (5, 3, 2, 4)`` and ``Np = 4``.
* Table 5.2 (changed degree of conflict): ``σ2 = p3p2`` with P3
  deactivating P4 and P2 deactivating P1, giving ``T_single = 5``,
  ``T_multi = 3``, speedup 1.67.

``EXPERIMENTS.md`` records the reconstruction alongside each result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ReproError

#: Production identifier in the abstract model ("P1", "P2", ...).
Pid = str


class UnknownProductionError(ReproError):
    """A conflict set or firing referenced an undeclared production."""


@dataclass(frozen=True)
class AddDeleteSystem:
    """A production system abstracted to add/delete sets.

    Parameters
    ----------
    add_sets / delete_sets:
        Per production: the productions its commit activates /
        deactivates.  Keys define the production universe.
    initial:
        The initial conflict set ``PA^0``.
    exec_times:
        Optional execution times ``T(P_i)`` (Section 5); default 1.
    """

    add_sets: Mapping[Pid, frozenset[Pid]]
    delete_sets: Mapping[Pid, frozenset[Pid]]
    initial: frozenset[Pid]
    exec_times: Mapping[Pid, float] = field(default_factory=dict)

    @staticmethod
    def define(
        add_sets: Mapping[Pid, Iterable[Pid]],
        delete_sets: Mapping[Pid, Iterable[Pid]],
        initial: Iterable[Pid],
        exec_times: Mapping[Pid, float] | None = None,
    ) -> "AddDeleteSystem":
        """Normalizing constructor; validates closure of references."""
        universe = set(add_sets) | set(delete_sets)
        adds = {p: frozenset(add_sets.get(p, ())) for p in universe}
        deletes = {p: frozenset(delete_sets.get(p, ())) for p in universe}
        init = frozenset(initial)
        mentioned = set(init)
        for values in (*adds.values(), *deletes.values()):
            mentioned |= values
        unknown = mentioned - universe
        if unknown:
            raise UnknownProductionError(
                f"productions {sorted(unknown)} referenced but not declared"
            )
        times = dict(exec_times or {})
        bad = set(times) - universe
        if bad:
            raise UnknownProductionError(
                f"exec_times given for undeclared productions {sorted(bad)}"
            )
        return AddDeleteSystem(adds, deletes, init, times)

    # -- dynamics --------------------------------------------------------------------

    @property
    def productions(self) -> frozenset[Pid]:
        """The production universe."""
        return frozenset(self.add_sets)

    def fire(self, conflict_set: frozenset[Pid], pid: Pid) -> frozenset[Pid]:
        """The conflict set after ``pid`` commits in ``conflict_set``.

        Raises :class:`UnknownProductionError` when ``pid`` is not
        active — only conflict-set members may fire (Section 2's
        *select* picks from ``PA``).
        """
        if pid not in conflict_set:
            raise UnknownProductionError(
                f"{pid} is not in the conflict set {sorted(conflict_set)}"
            )
        return (
            (conflict_set - {pid}) - self.delete_sets[pid]
        ) | self.add_sets[pid]

    def fire_sequence(
        self, pids: Iterable[Pid], start: frozenset[Pid] | None = None
    ) -> frozenset[Pid]:
        """Fire a whole sequence from ``start`` (default: initial)."""
        state = self.initial if start is None else start
        for pid in pids:
            state = self.fire(state, pid)
        return state

    def is_valid_sequence(
        self, pids: Iterable[Pid], start: frozenset[Pid] | None = None
    ) -> bool:
        """True when every firing in the sequence was of an active
        production — i.e. the sequence is a root-originating path (or
        prefix) of the execution graph."""
        state = self.initial if start is None else start
        for pid in pids:
            if pid not in state:
                return False
            state = self.fire(state, pid)
        return True

    def time(self, pid: Pid) -> float:
        """Execution time ``T(P_i)``; defaults to 1."""
        return float(self.exec_times.get(pid, 1.0))

    def sequence_time(self, pids: Iterable[Pid]) -> float:
        """``T_single(σ) = Σ T(P_j)`` — Example 5.1's identity."""
        return sum(self.time(p) for p in pids)

    # -- parallel-firing semantics (used by Theorem 1 and the simulator) -------------------

    def fire_parallel(
        self, conflict_set: frozenset[Pid], pids: Iterable[Pid]
    ) -> frozenset[Pid]:
        """Simultaneous commit of a *non-interfering* set of productions.

        Theorem 1's setting: because the set is non-interfering, the
        result equals firing them serially in any order — which the
        implementation asserts by construction (union of adds, union of
        deletes).
        """
        fired = frozenset(pids)
        missing = fired - conflict_set
        if missing:
            raise UnknownProductionError(
                f"{sorted(missing)} not in the conflict set"
            )
        deletes: frozenset[Pid] = frozenset()
        adds: frozenset[Pid] = frozenset()
        for pid in fired:
            deletes |= self.delete_sets[pid]
            adds |= self.add_sets[pid]
        return ((conflict_set - fired) - deletes) | adds

    def interferes(self, first: Pid, second: Pid) -> bool:
        """Conflict-set-level interference between two productions.

        ``P_i`` interferes with ``P_j`` when:

        * firing one can *deactivate* the other (footnote 3: "P1
          interferes with P2 if the execution of P1's RHS can cause
          P2's LHS to become false"), or
        * firing one can *activate* the other (its RHS writes data the
          other's LHS reads — the read-write conflict of footnote 4;
          at this abstraction level, ``second ∈ A_first^a``), or
        * their conflict-set updates collide (one deletes what the
          other adds).

        Only sets passing this test may fire in one parallel wave
        (Theorem 1's hypothesis).
        """
        if first == second:
            return True
        a_del, b_del = self.delete_sets[first], self.delete_sets[second]
        a_add, b_add = self.add_sets[first], self.add_sets[second]
        if second in a_del or first in b_del:
            return True
        if second in a_add or first in b_add:
            return True
        if (a_del & b_add) or (b_del & a_add):
            return True
        return False


def section_3_3_example() -> AddDeleteSystem:
    """The worked example of Section 3.3 / Figure 3.2 (reconstructed).

    Six productions; initial conflict set ``{P1, P2, P3, P5}``; exactly
    nine maximal execution sequences (the paper's count), including the
    legible ``p1p4p5``, ``p2p3p4p5``, ``p5p1p4p5`` and ``p5p2p3p4p5``.
    P6 carries the (inert) add/delete sets legible in the scan; nothing
    ever activates it, matching its absence from every sequence.
    """
    return AddDeleteSystem.define(
        add_sets={
            "P1": {"P4"},
            "P2": set(),
            "P3": {"P4"},
            "P4": {"P5"},
            "P5": set(),
            "P6": {"P2", "P5"},
        },
        delete_sets={
            "P1": {"P2", "P3", "P5"},
            "P2": {"P1"},
            "P3": {"P1", "P2"},
            "P4": set(),
            "P5": set(),
            "P6": {"P1", "P4"},
        },
        initial={"P1", "P2", "P3", "P5"},
    )


#: Execution times of Section 5's base case: T(P1)=5, T(P2)=3,
#: T(P3)=2, T(P4)=4.
SECTION_5_EXEC_TIMES: dict[Pid, float] = {
    "P1": 5.0,
    "P2": 3.0,
    "P3": 2.0,
    "P4": 4.0,
}


def table_5_1(exec_times: Mapping[Pid, float] | None = None) -> AddDeleteSystem:
    """Table 5.1 — the base case of Section 5 (reconstructed).

    ``PA = {P1, P2, P3, P4}``; ``σ1 = p2p3p4`` is allowable; P2's
    commit deactivates P1 (Figure 5.1 shows P1 "aborted by P2" in the
    multiple-thread run).  With ``T = (5, 3, 2, 4)`` and ``Np = 4``
    this gives the paper's T_single(σ1) = 9, T_multi(σ1) = 4,
    speedup 2.25.
    """
    return AddDeleteSystem.define(
        add_sets={p: set() for p in ("P1", "P2", "P3", "P4")},
        delete_sets={
            "P1": set(),
            "P2": {"P1"},
            "P3": set(),
            "P4": set(),
        },
        initial={"P1", "P2", "P3", "P4"},
        exec_times=dict(exec_times or SECTION_5_EXEC_TIMES),
    )


def table_5_2(exec_times: Mapping[Pid, float] | None = None) -> AddDeleteSystem:
    """Table 5.2 — increased degree of conflict (reconstructed).

    Same productions and times as Table 5.1, but P3's commit now also
    deactivates P4: ``σ2 = p3p2`` becomes the allowable sequence, and
    the multiple-thread run aborts both P4 (at P3's commit) and P1 (at
    P2's commit) — T_single(σ2) = 5, T_multi(σ2) = 3, speedup 1.67.
    """
    return AddDeleteSystem.define(
        add_sets={p: set() for p in ("P1", "P2", "P3", "P4")},
        delete_sets={
            "P1": set(),
            "P2": {"P1"},
            "P3": {"P4"},
            "P4": set(),
        },
        initial={"P1", "P2", "P3", "P4"},
        exec_times=dict(exec_times or SECTION_5_EXEC_TIMES),
    )
