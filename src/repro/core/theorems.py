"""Executable statements of the paper's theorems.

The paper proves two theorems; this module turns each proof's claim
into a checkable predicate, which the test suite (including the
hypothesis property tests) runs over randomized systems.

* **Theorem 1** (static approach): firing a *non-interfering* subset of
  the conflict set in parallel reaches a state identical to some serial
  permutation of the same productions — hence any parallel execution
  under the static approach stays inside the execution graph.
* **Theorem 2** (locking): every commit sequence produced under a
  (strict) locking discipline is a root-originating path of the
  execution graph — i.e. ``ES_lock ⊆ ES_single``.  The induction is on
  commit events; operationally we verify its conclusion for observed
  commit sequences via :class:`~repro.core.consistency.ConsistencyChecker`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.addsets import AddDeleteSystem, Pid
from repro.core.consistency import ConsistencyChecker


@dataclass(frozen=True)
class TheoremOutcome:
    """Result of an executable theorem check."""

    holds: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.holds


def check_theorem_1(
    system: AddDeleteSystem,
    subset: Iterable[Pid],
    start: frozenset[Pid] | None = None,
    max_permutations: int = 720,
) -> TheoremOutcome:
    """Verify Theorem 1's conclusion for one parallel firing.

    Requirements checked:

    1. every member of ``subset`` is active in ``start``;
    2. the members are pairwise non-interfering (the theorem's
       hypothesis — violating it voids the claim, and the outcome says
       so rather than failing);
    3. the parallel-firing result equals the serial result of **every**
       permutation (stronger than "some permutation", and exactly what
       non-interference buys), each permutation being a valid execution
       path.
    """
    state = system.initial if start is None else start
    fired = tuple(sorted(set(subset)))
    missing = [p for p in fired if p not in state]
    if missing:
        return TheoremOutcome(
            False, f"hypothesis violated: {missing} not active"
        )
    for first, second in itertools.combinations(fired, 2):
        if system.interferes(first, second):
            return TheoremOutcome(
                False,
                f"hypothesis violated: {first} and {second} interfere",
            )
    parallel_result = system.fire_parallel(state, fired)
    permutations = itertools.islice(
        itertools.permutations(fired), max_permutations
    )
    for order in permutations:
        serial = state
        for pid in order:
            if pid not in serial:
                return TheoremOutcome(
                    False,
                    f"serial order {order} invalid: {pid} inactive "
                    f"(interference analysis was unsound)",
                )
            serial = system.fire(serial, pid)
        if serial != parallel_result:
            return TheoremOutcome(
                False,
                f"serial order {order} reaches {sorted(serial)} != "
                f"parallel {sorted(parallel_result)}",
            )
    return TheoremOutcome(True, f"all permutations of {fired} agree")


def check_theorem_2(
    system: AddDeleteSystem,
    commit_sequences: Iterable[Sequence[Pid]],
) -> TheoremOutcome:
    """Verify Theorem 2's conclusion on observed commit sequences.

    Each sequence produced by a locking execution must be a valid
    root-originating path (or prefix) of the execution graph.
    """
    report = ConsistencyChecker(system).check_many(commit_sequences)
    return TheoremOutcome(report.consistent, str(report))
