"""The paper's formal contribution: execution semantics and consistency.

* :mod:`~repro.core.addsets` — the add/delete-set abstraction of
  Section 3.3 (conflict-set transitions without a concrete database),
  including the paper's worked example and the Section 5 tables.
* :mod:`~repro.core.semantics` — system states, execution strings and
  the definition of ``ES_single`` (Definitions 3.1/3.2).
* :mod:`~repro.core.execution_graph` — Figure 3.1/3.2: the execution
  graph and enumeration of root-originating paths.
* :mod:`~repro.core.consistency` — the semantic-consistency checker:
  ``ES_M ⊆ ES_single``.
* :mod:`~repro.core.interference` — read-write/write-write conflict
  detection between productions (footnote 4: identical to conflicting
  database operations [PAPA86]).
* :mod:`~repro.core.static_partition` — Section 4.1's static approach.
* :mod:`~repro.core.theorems` — executable checks of Theorems 1 and 2.
"""

from repro.core.addsets import (
    AddDeleteSystem,
    section_3_3_example,
    table_5_1,
    table_5_2,
    SECTION_5_EXEC_TIMES,
)
from repro.core.semantics import ExecutionString, SystemState
from repro.core.execution_graph import ExecutionGraph
from repro.core.consistency import ConsistencyChecker, ConsistencyReport
from repro.core.interference import (
    interferes,
    interference_graph,
    conflicting_objects,
)
from repro.core.static_partition import (
    greedy_partition,
    maximal_noninterfering_subset,
    partition_conflict_set,
)
from repro.core.theorems import check_theorem_1, check_theorem_2

__all__ = [
    "AddDeleteSystem",
    "section_3_3_example",
    "table_5_1",
    "table_5_2",
    "SECTION_5_EXEC_TIMES",
    "SystemState",
    "ExecutionString",
    "ExecutionGraph",
    "ConsistencyChecker",
    "ConsistencyReport",
    "interferes",
    "interference_graph",
    "conflicting_objects",
    "greedy_partition",
    "maximal_noninterfering_subset",
    "partition_conflict_set",
    "check_theorem_1",
    "check_theorem_2",
]
