"""The execution graph (Figures 3.1 and 3.2).

"Given an initial state, any execution sequence allowable by the
single thread mechanism can be mapped to a unique root-originating
path of a graph ... It can be constructed in a recursive manner by
starting at the root, and adding to each leaf node S_α the edges
corresponding to the productions in the conflict set PA(α)."

:class:`ExecutionGraph` performs that construction over an
:class:`~repro.core.addsets.AddDeleteSystem`, with depth and node caps
(the graph is infinite whenever a cycle re-activates productions).
``ES_single`` — Definition 3.1 — is the set of maximal root-originating
paths plus all their prefixes; membership tests, however, use the
add/delete dynamics directly (they need no enumeration and are exact
at any depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.addsets import AddDeleteSystem, Pid
from repro.core.semantics import ExecutionString, SystemState


@dataclass(frozen=True)
class GraphEdge:
    """One edge: firing ``pid`` from ``source`` reaches ``target``."""

    source: SystemState
    pid: Pid
    target: SystemState


class ExecutionGraph:
    """The (possibly truncated) execution graph of a system.

    Parameters
    ----------
    system:
        The add/delete-set system to explore.
    max_depth:
        Paths longer than this are truncated (guards against
        non-terminating systems).
    max_nodes:
        Overall exploration budget.
    """

    def __init__(
        self,
        system: AddDeleteSystem,
        max_depth: int = 25,
        max_nodes: int = 200_000,
    ) -> None:
        self.system = system
        self.max_depth = max_depth
        self.max_nodes = max_nodes
        self.root = SystemState(
            system.initial, ExecutionString.epsilon()
        )
        self.edges: list[GraphEdge] = []
        self.states: dict[tuple[Pid, ...], SystemState] = {
            (): self.root
        }
        #: True when a depth/node cap truncated the exploration.
        self.truncated = False
        self._build()

    # -- construction ------------------------------------------------------------------

    def _build(self) -> None:
        frontier: list[SystemState] = [self.root]
        while frontier:
            state = frontier.pop()
            if len(state.string) >= self.max_depth:
                if not state.is_terminal:
                    self.truncated = True
                continue
            for pid in sorted(state.conflict_set):
                if len(self.states) >= self.max_nodes:
                    self.truncated = True
                    return
                target = SystemState(
                    self.system.fire(state.conflict_set, pid),
                    state.string.append(pid),
                )
                self.states[target.string.pids] = target
                self.edges.append(GraphEdge(state, pid, target))
                frontier.append(target)

    # -- ES_single -----------------------------------------------------------------------

    def maximal_sequences(self) -> list[ExecutionString]:
        """All root-originating paths ending in an empty conflict set.

        These are the complete executions; Definition 3.1's
        ``ES_single`` additionally contains every prefix.
        """
        return sorted(
            (
                state.string
                for state in self.states.values()
                if state.is_terminal
            ),
            key=lambda s: (len(s), s.pids),
        )

    def es_single(self) -> set[tuple[Pid, ...]]:
        """``ES_single`` as an explicit set of strings (incl. prefixes).

        Only meaningful when the graph was not truncated; raises
        otherwise — use :meth:`contains` for unbounded systems.
        """
        if self.truncated:
            raise ValueError(
                "execution graph truncated; ES_single enumeration would "
                "be incomplete — use contains() instead"
            )
        out: set[tuple[Pid, ...]] = set()
        for string in self.maximal_sequences():
            for prefix in string.prefixes():
                out.add(prefix.pids)
        # Every explored path is a prefix of some continuation; when
        # the system terminates, all states' strings are covered above,
        # but include them explicitly for safety on dead-end states.
        out.update(self.states.keys())
        return out

    def contains(self, pids: tuple[Pid, ...] | list[Pid]) -> bool:
        """Exact ES_single membership via the dynamics (no enumeration).

        A string is in ``ES_single`` iff each firing was of an active
        production — Definition 3.1 admits every root-originating path
        and every prefix thereof.
        """
        return self.system.is_valid_sequence(tuple(pids))

    # -- views ------------------------------------------------------------------------------

    def state_at(self, pids: tuple[Pid, ...]) -> SystemState | None:
        """The state reached by a string, if explored."""
        return self.states.get(tuple(pids))

    def children(self, state: SystemState) -> list[GraphEdge]:
        """Outgoing edges of ``state``."""
        return [e for e in self.edges if e.source.string == state.string]

    def __len__(self) -> int:
        return len(self.states)

    def iter_states(self) -> Iterator[SystemState]:
        return iter(self.states.values())

    def to_dot(self, max_nodes: int = 200) -> str:
        """Graphviz DOT rendering of the execution graph (Figure 3.2).

        Nodes are states labelled with their conflict sets; edges are
        labelled with the fired production.  Terminal states are drawn
        as double circles.  Paste into ``dot -Tsvg`` to draw.
        """
        lines = [
            "digraph execution_graph {",
            '  rankdir=TB;',
            '  node [shape=ellipse, fontsize=10];',
        ]
        emitted = 0
        for state in sorted(
            self.states.values(),
            key=lambda s: (len(s.string), s.string.pids),
        ):
            if emitted >= max_nodes:
                lines.append('  truncated [shape=plaintext, label="..."];')
                break
            node_id = f'"{state.string}"'
            label = "{" + ",".join(sorted(state.conflict_set)) + "}"
            shape = ", shape=doublecircle" if state.is_terminal else ""
            lines.append(f'  {node_id} [label="{label}"{shape}];')
            emitted += 1
        for edge in self.edges:
            source = f'"{edge.source.string}"'
            target = f'"{edge.target.string}"'
            lines.append(
                f'  {source} -> {target} '
                f'[label="{edge.pid.lower()}"];'
            )
        lines.append("}")
        return "\n".join(lines)

    def render(self, max_lines: int = 60) -> str:
        """ASCII rendering of the graph (Figure 3.2 style)."""
        lines: list[str] = []
        for state in sorted(
            self.states.values(),
            key=lambda s: (len(s.string), s.string.pids),
        ):
            if len(lines) >= max_lines:
                lines.append("...")
                break
            indent = "  " * len(state.string)
            marker = " (terminal)" if state.is_terminal else ""
            lines.append(f"{indent}{state}{marker}")
        return "\n".join(lines)
