"""The static approach (Section 4.1).

"Static approach is based on pre-execution analysis to identify sets of
non-interfering productions; i.e., partitioning the productions into
non-interfering groups.  (Two productions are non-interfering if there
is no read-write or write-write conflict between them.)  The
partitioning can be done on either the whole production set before
running the production system or on set PA before the execute phase of
every production cycle, or a combination of both [ISHI85]."

Both granularities are implemented:

* :func:`greedy_partition` — whole-rule-set partitioning into groups of
  pairwise non-interfering productions (greedy graph coloring of the
  interference graph; optimal coloring is NP-hard, the "state
  explosion" the paper complains about).
* :func:`partition_conflict_set` / :func:`maximal_noninterfering_subset`
  — per-cycle partitioning of ``PA`` for one parallel firing wave.

Theorem 1 (executable in :mod:`repro.core.theorems`) guarantees that
firing any such group in parallel is semantically consistent.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, TypeVar

Item = TypeVar("Item", bound=Hashable)

#: Symmetric interference predicate over two items.
InterferenceTest = Callable[[Item, Item], bool]


def greedy_partition(
    items: Sequence[Item],
    interferes: InterferenceTest,
) -> list[list[Item]]:
    """Partition ``items`` into groups of pairwise non-interfering items.

    Greedy sequential coloring: each item joins the first group it does
    not interfere with; a new group opens otherwise.  Deterministic for
    a given input order.  Returns the groups in creation order.
    """
    groups: list[list[Item]] = []
    for item in items:
        placed = False
        for group in groups:
            if all(not interferes(item, member) for member in group):
                group.append(item)
                placed = True
                break
        if not placed:
            groups.append([item])
    return groups


def maximal_noninterfering_subset(
    items: Sequence[Item],
    interferes: InterferenceTest,
) -> list[Item]:
    """A maximal (not maximum) pairwise non-interfering subset.

    Greedy in input order — the per-cycle choice a static analyzer
    makes before a parallel firing wave.  Maximum independent set is
    NP-hard; the greedy result is what a production-cycle budget
    affords, and any non-interfering subset is safe by Theorem 1.
    """
    chosen: list[Item] = []
    for item in items:
        if all(not interferes(item, member) for member in chosen):
            chosen.append(item)
    return chosen


def partition_conflict_set(
    active: Sequence[Item],
    interferes: InterferenceTest,
) -> list[list[Item]]:
    """Partition the *current conflict set* into parallel firing waves.

    Wave k+1 contains productions that interfere with something in
    every earlier wave.  Firing the waves in order, each internally
    parallel, is the per-cycle static execution of [ISHI85].
    """
    return greedy_partition(active, interferes)


def partition_quality(groups: Sequence[Sequence[Item]]) -> dict[str, float]:
    """Simple quality metrics for a partitioning.

    ``width`` is the largest group (peak parallelism), ``waves`` the
    number of groups (serial steps), and ``mean_width`` the average
    parallelism — what the static-vs-dynamic benchmark reports.
    """
    sizes = [len(g) for g in groups] or [0]
    return {
        "waves": float(len(sizes)),
        "width": float(max(sizes)),
        "mean_width": sum(sizes) / len(sizes),
    }
