"""Observing add/delete sets on a real production system.

Section 3.3 defines the add set ``A_i^a`` and delete set ``A_i^d`` of a
production as the conflict-set changes its firing causes, and notes:
"In general these will depend on P_i and the current database state."
This module *measures* them: it runs a real working-memory-backed
system and records, per firing, exactly which instantiations entered
and left the conflict set — then aggregates to the production level,
yielding an empirical :class:`~repro.core.addsets.AddDeleteSystem`
abstraction of the concrete program.

That bridge lets the Section 3 machinery (execution graphs, ES_single
enumeration, conflict-degree analysis) be applied to real rule
programs, not just hand-written abstractions — with the caveat the
paper itself states: the result is one trajectory's view, not a
state-independent truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.addsets import AddDeleteSystem
from repro.engine.interpreter import Interpreter, MatcherName
from repro.lang.production import Production
from repro.match.strategies import Strategy
from repro.wm.memory import WorkingMemory


@dataclass(frozen=True)
class FiringObservation:
    """Conflict-set delta caused by one firing."""

    rule_name: str
    cycle: int
    added_rules: frozenset[str]
    removed_rules: frozenset[str]
    #: Instantiation-level counts (a rule can gain/lose several).
    added_instantiations: int
    removed_instantiations: int


@dataclass
class AddDeleteTrace:
    """Aggregated observations of a run."""

    observations: list[FiringObservation] = field(default_factory=list)

    def add_sets(self) -> dict[str, frozenset[str]]:
        """Observed ``A^a`` per rule: rules some firing activated."""
        out: dict[str, set[str]] = {}
        for obs in self.observations:
            out.setdefault(obs.rule_name, set()).update(obs.added_rules)
        return {name: frozenset(rules) for name, rules in out.items()}

    def delete_sets(self) -> dict[str, frozenset[str]]:
        """Observed ``A^d`` per rule: rules some firing deactivated.

        The fired rule's own instantiation always leaves the conflict
        set; it is excluded here (the abstraction removes the fired
        production separately), unless the firing also killed *other*
        instantiations of the same rule.
        """
        out: dict[str, set[str]] = {}
        for obs in self.observations:
            removed = set(obs.removed_rules)
            if obs.removed_instantiations <= 1:
                removed.discard(obs.rule_name)
            out.setdefault(obs.rule_name, set()).update(removed)
        return {name: frozenset(rules) for name, rules in out.items()}

    def is_state_dependent(self, rule_name: str) -> bool:
        """True when two firings of the rule showed different deltas —
        the paper's "depend on ... the current database state"."""
        deltas = {
            (obs.added_rules, obs.removed_rules)
            for obs in self.observations
            if obs.rule_name == rule_name
        }
        return len(deltas) > 1


def trace_add_delete_sets(
    productions: Sequence[Production],
    memory: WorkingMemory,
    matcher: MatcherName = "rete",
    strategy: str | Strategy = "lex",
    max_cycles: int = 10_000,
) -> AddDeleteTrace:
    """Run the system single-threaded, observing per-firing deltas."""
    interpreter = Interpreter(
        productions, memory, matcher=matcher, strategy=strategy
    )
    trace = AddDeleteTrace()
    conflict_set = interpreter.conflict_set
    conflict_set.take_delta()  # discard the initial-match delta
    while interpreter.result.cycles < max_cycles:
        chosen = interpreter.select()
        if chosen is None:
            break
        interpreter.result.cycles += 1
        halted = not interpreter.fire(chosen)
        delta = conflict_set.take_delta()
        trace.observations.append(
            FiringObservation(
                rule_name=chosen.production.name,
                cycle=interpreter.result.cycles,
                added_rules=frozenset(
                    i.production.name for i in delta.added
                ),
                removed_rules=frozenset(
                    i.production.name for i in delta.removed
                ),
                added_instantiations=len(delta.added),
                removed_instantiations=len(delta.removed),
            )
        )
        if halted:
            break
    return trace


def empirical_system(
    productions: Sequence[Production],
    memory: WorkingMemory,
    initial_rules: Iterable[str] | None = None,
    **trace_kwargs,
) -> AddDeleteSystem:
    """Abstract a real program into an :class:`AddDeleteSystem`.

    The initial conflict set defaults to the rules active against the
    *initial* memory; add/delete sets come from a traced run.  The
    abstraction is trajectory-based (the paper's own simplification in
    Section 3.3: "we assume the dependence is only on P_i").
    """
    # Determine initially active rules before the trace consumes memory.
    from repro.match.naive import match_production

    if initial_rules is None:
        initial_rules = {
            production.name
            for production in productions
            if any(match_production(production, memory))
        }
    initial = set(initial_rules)
    trace = trace_add_delete_sets(productions, memory, **trace_kwargs)
    adds = trace.add_sets()
    deletes = trace.delete_sets()
    names = [p.name for p in productions]
    return AddDeleteSystem.define(
        add_sets={name: adds.get(name, frozenset()) for name in names},
        delete_sets={
            name: deletes.get(name, frozenset()) for name in names
        },
        initial=initial,
    )
