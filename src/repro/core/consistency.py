"""The semantic-consistency checker (Definition 3.2).

"The execution semantics of an execution mechanism M, ES_M, is
consistent with that of the single execution thread mechanism iff
ES_M ⊆ ES_single."

:class:`ConsistencyChecker` verifies that condition for concrete
evidence: commit sequences produced by a parallel execution mechanism.
Because Definition 3.1 admits every root-originating path *and its
prefixes*, a mechanism is judged on each commit sequence it can emit —
each must be replayable against the single-thread dynamics with every
fired production active at its turn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.addsets import AddDeleteSystem, Pid


@dataclass(frozen=True)
class ConsistencyReport:
    """Outcome of checking a batch of commit sequences.

    ``violations`` pairs each failing sequence with the index of the
    first firing that was not active in the replayed conflict set.
    """

    checked: int
    violations: tuple[tuple[tuple[Pid, ...], int], ...] = ()

    @property
    def consistent(self) -> bool:
        """True when every checked sequence is in ``ES_single``."""
        return not self.violations

    def __str__(self) -> str:
        if self.consistent:
            return f"consistent ({self.checked} sequences)"
        shown = ", ".join(
            f"{''.join(s).lower()}@{i}" for s, i in self.violations[:5]
        )
        return (
            f"INCONSISTENT: {len(self.violations)}/{self.checked} "
            f"sequences violate ES_single (first: {shown})"
        )


class ConsistencyChecker:
    """Checks commit sequences against a system's ``ES_single``."""

    def __init__(self, system: AddDeleteSystem) -> None:
        self.system = system

    def first_violation(self, sequence: Sequence[Pid]) -> int | None:
        """Index of the first inactive firing, or ``None`` if valid."""
        state = self.system.initial
        for index, pid in enumerate(sequence):
            if pid not in state:
                return index
            state = self.system.fire(state, pid)
        return None

    def check_sequence(self, sequence: Sequence[Pid]) -> bool:
        """Is this commit sequence in ``ES_single``? (incl. prefixes)"""
        return self.first_violation(sequence) is None

    def check_complete(self, sequence: Sequence[Pid]) -> bool:
        """Is this a *maximal* ES_single member (ends with empty PA)?

        Parallel runs that run to quiescence should satisfy this
        stronger check; prefix membership alone suffices for runs
        stopped early.
        """
        if not self.check_sequence(sequence):
            return False
        return not self.system.fire_sequence(sequence)

    def check_many(
        self, sequences: Iterable[Sequence[Pid]]
    ) -> ConsistencyReport:
        """Check a batch; returns an aggregate report."""
        checked = 0
        violations: list[tuple[tuple[Pid, ...], int]] = []
        for sequence in sequences:
            checked += 1
            index = self.first_violation(sequence)
            if index is not None:
                violations.append((tuple(sequence), index))
        return ConsistencyReport(checked, tuple(violations))
