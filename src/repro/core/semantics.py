"""System states and execution strings (Section 3).

"The system state consists of the conflict set and database contents
... Each state is uniquely associated with a string representing the
sequence of productions executed to reach it, starting from the state
S_ε."  :class:`SystemState` is that pair ``<PA(α); WM(α)>`` —
``wm`` is optional because the add/delete-set abstraction carries no
database — and :class:`ExecutionString` is α with the usual prefix
algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.addsets import Pid


@dataclass(frozen=True)
class ExecutionString:
    """A finite string of production firings (α in the paper)."""

    pids: tuple[Pid, ...] = ()

    @staticmethod
    def of(pids: Iterable[Pid]) -> "ExecutionString":
        return ExecutionString(tuple(pids))

    @staticmethod
    def epsilon() -> "ExecutionString":
        """The null string ε (the root state's string)."""
        return ExecutionString(())

    def append(self, pid: Pid) -> "ExecutionString":
        return ExecutionString(self.pids + (pid,))

    def is_prefix_of(self, other: "ExecutionString") -> bool:
        """True when self is a (possibly equal) prefix of ``other``."""
        return self.pids == other.pids[: len(self.pids)]

    def prefixes(self) -> Iterator["ExecutionString"]:
        """All prefixes, ε first, self last."""
        for length in range(len(self.pids) + 1):
            yield ExecutionString(self.pids[:length])

    def __len__(self) -> int:
        return len(self.pids)

    def __iter__(self) -> Iterator[Pid]:
        return iter(self.pids)

    def __str__(self) -> str:
        if not self.pids:
            return "ε"
        return "".join(p.lower() for p in self.pids)


@dataclass(frozen=True)
class SystemState:
    """``S_α = <PA(α); WM(α)>``.

    ``wm`` is a value-identity frozenset of database contents when a
    concrete working memory backs the system (see
    :meth:`repro.wm.memory.WorkingMemory.value_identity_set`) and
    ``None`` in the pure add/delete-set abstraction.
    """

    conflict_set: frozenset[Pid]
    string: ExecutionString
    wm: frozenset | None = None

    @property
    def is_terminal(self) -> bool:
        """Empty conflict set — the termination condition."""
        return not self.conflict_set

    def state_key(self) -> tuple:
        """Identity for state-space deduplication: (PA, WM).

        Two states with equal conflict sets and database contents are
        the same node of the state space even when reached by
        different strings (the paper's Remark in Section 3.2 concerns
        exactly such coincidences).
        """
        return (self.conflict_set, self.wm)

    def __str__(self) -> str:
        names = ",".join(sorted(self.conflict_set))
        return f"S[{self.string}]={{{names}}}"
