"""Static analysis (linting) of rule programs.

Production systems fail silently: a misspelled relation or attribute
just never matches.  The linter catches the classic mistakes before a
run:

* ``unused-variable`` — an LHS variable bound but never used again
  (often a typo of an intended join).
* ``unmatchable-rule`` — a positive condition element over a relation
  no rule creates and no declared fact provides.
* ``dead-write`` — a relation some RHS creates that no LHS ever reads.
* ``shadowed-rule`` — two rules with identical LHSs (the second adds
  only duplicate firings).
* ``single-use-variable`` is *not* flagged when the variable feeds the
  RHS — only truly dead bindings are reported.

(Unbound variable-predicate operands — including in negated elements —
are no longer a lint finding: :meth:`repro.lang.production.Production.
validate` rejects them at load time.)

Findings are advisory: :func:`lint_program` returns them, it never
raises.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.lang.production import Production


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    rule: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.rule}: [{self.code}] {self.message}"


def lint_program(
    productions: Sequence[Production],
    known_relations: Iterable[str] = (),
) -> list[Finding]:
    """Lint a rule program.

    ``known_relations`` lists relations provided externally (initial
    facts, other programs); they count as producible for the
    ``unmatchable-rule`` check.
    """
    findings: list[Finding] = []
    produced: set[str] = set(known_relations)
    consumed: set[str] = set()
    for production in productions:
        produced |= _created_relations(production)
        consumed |= production.read_relations()

    lhs_signatures: dict[tuple, str] = {}
    for production in productions:
        findings.extend(_lint_variables(production))
        findings.extend(_lint_unmatchable(production, produced))
        signature = (production.lhs,)
        if signature in lhs_signatures:
            findings.append(
                Finding(
                    production.name,
                    "shadowed-rule",
                    f"LHS identical to rule "
                    f"{lhs_signatures[signature]!r}",
                )
            )
        else:
            lhs_signatures[signature] = production.name

    for production in productions:
        for relation in sorted(production.write_relations()):
            if relation not in consumed:
                findings.append(
                    Finding(
                        production.name,
                        "dead-write",
                        f"creates relation {relation!r} that no LHS reads",
                    )
                )
    return findings


def _created_relations(production: Production) -> set[str]:
    """Relations the RHS can put tuples *into*.

    ``make`` creates; ``modify`` re-creates (new version of a live
    tuple); ``remove`` only deletes, so it does not make a relation
    matchable.
    """
    from repro.lang.ast import MakeAction, ModifyAction

    created: set[str] = set()
    for action in production.rhs:
        if isinstance(action, MakeAction):
            created.add(action.relation)
        elif isinstance(action, ModifyAction):
            created.add(production.lhs[action.ce_index - 1].relation)
    return created


def _lint_variables(production: Production) -> list[Finding]:
    """Bound-but-never-used variables."""
    findings: list[Finding] = []
    uses: Counter[str] = Counter()
    binds: Counter[str] = Counter()
    for element in production.lhs:
        for test in element.variable_tests():
            binds[test.variable] += 1
            uses[test.variable] += 1
        for predicate in element.variable_predicates():
            uses[str(predicate.operand)] += 1
    for action in production.rhs:
        for variable in action.variables():
            uses[variable] += 1
    for variable, bound_count in binds.items():
        if variable.startswith("_"):
            continue  # the conventional wildcard escape: <_anything>
        if uses[variable] <= 1 and bound_count == 1:
            findings.append(
                Finding(
                    production.name,
                    "unused-variable",
                    f"variable <{variable}> is bound but never used "
                    f"(prefix with '_' if the binding is intentional)",
                )
            )
    return findings


def _lint_unmatchable(
    production: Production, produced: set[str]
) -> list[Finding]:
    findings: list[Finding] = []
    for element in production.positive_elements():
        if element.relation not in produced:
            findings.append(
                Finding(
                    production.name,
                    "unmatchable-rule",
                    f"positive condition on relation "
                    f"{element.relation!r}, which nothing produces",
                )
            )
    return findings


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable report, or a clean bill of health."""
    if not findings:
        return "no lint findings"
    return "\n".join(str(finding) for finding in findings)
