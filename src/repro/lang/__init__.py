"""Rule-language substrate: an OPS5-style production language.

The paper's model (Section 2)::

    <Production>: if <condition> then <action>.

The LHS is a conjunction of *condition elements* (patterns over working
memory relations, with variables, constant tests, predicate tests and
negation); the RHS is a list of *create* / *modify* / *delete* actions
plus the usual OPS5 conveniences (``bind``, ``write``, ``halt``).

Rules can be written either as text in the DSL and parsed with
:func:`~repro.lang.parser.parse_production`, or constructed
programmatically with :class:`~repro.lang.builder.RuleBuilder`.
"""

from repro.lang.ast import (
    BinaryExpr,
    Bindings,
    ConditionElement,
    Constant,
    ConstantTest,
    HaltAction,
    MakeAction,
    ModifyAction,
    PredicateTest,
    RemoveAction,
    BindAction,
    WriteAction,
    ValueExpr,
    VariableRef,
    VariableTest,
)
from repro.lang.production import Production
from repro.lang.parser import parse_production, parse_program
from repro.lang.builder import RuleBuilder

__all__ = [
    "Bindings",
    "ConditionElement",
    "ConstantTest",
    "VariableTest",
    "PredicateTest",
    "Constant",
    "VariableRef",
    "BinaryExpr",
    "ValueExpr",
    "MakeAction",
    "ModifyAction",
    "RemoveAction",
    "BindAction",
    "WriteAction",
    "HaltAction",
    "Production",
    "parse_production",
    "parse_program",
    "RuleBuilder",
]
