"""Lexer for the OPS5-style rule DSL.

The surface syntax is s-expression shaped, close to OPS5::

    (p promote-order
       (order ^status "open" ^id <x> ^total > 100)
       -(hold ^order <x>)
       -->
       (modify 1 ^status "priority")
       (make audit ^order <x>))

Token kinds: ``(`` ``)``, ``-->``, ``-`` (negation, only before ``(``),
``^attr``, ``<var>``, predicate operators (``=`` ``<>`` ``<`` ``<=``
``>`` ``>=``), arithmetic operators, numbers, strings, booleans/nil and
bare symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ParseError

#: Token kinds produced by :func:`tokenize`.
LPAREN = "LPAREN"
RPAREN = "RPAREN"
ARROW = "ARROW"
NEGATION = "NEGATION"
ATTRIBUTE = "ATTRIBUTE"
VARIABLE = "VARIABLE"
OPERATOR = "OPERATOR"
NUMBER = "NUMBER"
STRING = "STRING"
SYMBOL = "SYMBOL"
EOF = "EOF"

_OPERATORS = ("<=", ">=", "<>", "<", ">", "=", "+", "*", "//", "/", "%")

_SYMBOL_EXTRA = "-_.?!$&"


def _is_symbol_char(ch: str) -> bool:
    return ch.isalnum() or ch in _SYMBOL_EXTRA


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class _Cursor:
    """Character cursor with line/column tracking."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.text[index] if index < len(self.text) else ""

    def advance(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def at_end(self) -> bool:
        return self.pos >= len(self.text)


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on bad input."""
    return list(iter_tokens(text))


def iter_tokens(text: str) -> Iterator[Token]:
    """Yield tokens, ending with a single :data:`EOF` token."""
    cursor = _Cursor(text)
    while not cursor.at_end():
        ch = cursor.peek()
        line, column = cursor.line, cursor.column
        if ch.isspace():
            cursor.advance()
            continue
        if ch == ";":  # comment to end of line
            while not cursor.at_end() and cursor.peek() != "\n":
                cursor.advance()
            continue
        if ch == "(":
            cursor.advance()
            yield Token(LPAREN, "(", line, column)
            continue
        if ch == ")":
            cursor.advance()
            yield Token(RPAREN, ")", line, column)
            continue
        if ch == "^":
            cursor.advance()
            name = _read_symbol(cursor)
            if not name:
                raise ParseError("expected attribute name after '^'", line, column)
            yield Token(ATTRIBUTE, name, line, column)
            continue
        if ch == "-":
            token = _lex_minus(cursor, line, column)
            yield token
            continue
        if ch == "<":
            yield _lex_angle(cursor, line, column)
            continue
        if ch == '"':
            yield _lex_string(cursor, line, column)
            continue
        if ch.isdigit() or (
            ch in "+." and cursor.peek(1).isdigit()
        ):
            yield _lex_number(cursor, line, column)
            continue
        matched_op = _match_operator(cursor)
        if matched_op is not None:
            yield Token(OPERATOR, matched_op, line, column)
            continue
        if _is_symbol_char(ch):
            name = _read_symbol(cursor)
            yield Token(SYMBOL, name, line, column)
            continue
        raise ParseError(f"unexpected character {ch!r}", line, column)
    yield Token(EOF, "", cursor.line, cursor.column)


def _read_symbol(cursor: _Cursor) -> str:
    chars: list[str] = []
    while not cursor.at_end() and _is_symbol_char(cursor.peek()):
        chars.append(cursor.advance())
    return "".join(chars)


def _lex_minus(cursor: _Cursor, line: int, column: int) -> Token:
    """Disambiguate ``-``: negation, negative number, or operator."""
    nxt = cursor.peek(1)
    if nxt.isdigit() or (nxt == "." and cursor.peek(2).isdigit()):
        return _lex_number(cursor, line, column)
    cursor.advance()
    if cursor.peek() == "-" and cursor.peek(1) == ">":
        cursor.advance()
        cursor.advance()
        return Token(ARROW, "-->", line, column)
    if cursor.peek() == "(":
        return Token(NEGATION, "-", line, column)
    return Token(OPERATOR, "-", line, column)


def _lex_angle(cursor: _Cursor, line: int, column: int) -> Token:
    """Disambiguate ``<``: variable ``<x>`` vs operators ``<`` ``<=`` ``<>``."""
    # Look ahead for a well-formed variable: '<' symbol-chars '>'.
    ahead = 1
    name_chars: list[str] = []
    while _is_symbol_char(cursor.peek(ahead)):
        name_chars.append(cursor.peek(ahead))
        ahead += 1
    if name_chars and cursor.peek(ahead) == ">":
        for _ in range(ahead + 1):
            cursor.advance()
        return Token(VARIABLE, "".join(name_chars), line, column)
    cursor.advance()
    if cursor.peek() == "=":
        cursor.advance()
        return Token(OPERATOR, "<=", line, column)
    if cursor.peek() == ">":
        cursor.advance()
        return Token(OPERATOR, "<>", line, column)
    return Token(OPERATOR, "<", line, column)


def _lex_string(cursor: _Cursor, line: int, column: int) -> Token:
    cursor.advance()  # opening quote
    chars: list[str] = []
    while True:
        if cursor.at_end():
            raise ParseError("unterminated string literal", line, column)
        ch = cursor.advance()
        if ch == '"':
            break
        if ch == "\\":
            if cursor.at_end():
                raise ParseError("unterminated escape", line, column)
            escape = cursor.advance()
            chars.append({"n": "\n", "t": "\t"}.get(escape, escape))
        else:
            chars.append(ch)
    return Token(STRING, "".join(chars), line, column)


def _lex_number(cursor: _Cursor, line: int, column: int) -> Token:
    chars: list[str] = []
    if cursor.peek() in "+-":
        chars.append(cursor.advance())
    saw_dot = False
    while not cursor.at_end():
        ch = cursor.peek()
        if ch.isdigit():
            chars.append(cursor.advance())
        elif ch == "." and not saw_dot and cursor.peek(1).isdigit():
            saw_dot = True
            chars.append(cursor.advance())
        else:
            break
    text = "".join(chars)
    if text in ("+", "-"):
        raise ParseError(f"malformed number {text!r}", line, column)
    return Token(NUMBER, text, line, column)


def _match_operator(cursor: _Cursor) -> str | None:
    for op in _OPERATORS:
        if cursor.text.startswith(op, cursor.pos):
            # '<'-family handled by _lex_angle; here only ops that can
            # start a token at this point.
            for _ in op:
                cursor.advance()
            return op
    return None
