"""Fluent programmatic construction of productions.

The DSL parser is convenient for rule files; tests, benchmarks and
programmatic workload generators prefer building productions directly::

    rule = (
        RuleBuilder("promote-order")
        .when("order", status="open", id=var("x"))
        .when_not("hold", order=var("x"))
        .modify(1, status="priority")
        .make("audit", order=var("x"))
        .build()
    )

Keyword values map to tests as follows: a plain scalar becomes a
:class:`ConstantTest`; :func:`var` becomes a :class:`VariableTest`;
:func:`gt`/:func:`lt`/etc. become :class:`PredicateTest`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang.ast import (
    Action,
    BinaryExpr,
    BindAction,
    ConditionElement,
    Constant,
    ConstantTest,
    HaltAction,
    MakeAction,
    ModifyAction,
    PredicateTest,
    RemoveAction,
    Test,
    ValueExpr,
    VariableRef,
    VariableTest,
    WriteAction,
    as_expr,
)
from repro.lang.production import Production
from repro.wm.element import Scalar


@dataclass(frozen=True)
class var:
    """Marker for a variable occurrence in :class:`RuleBuilder` calls."""

    name: str

    def ref(self) -> VariableRef:
        """The RHS expression form of this variable."""
        return VariableRef(self.name)

    def __add__(self, other: "var | ValueExpr | Scalar") -> BinaryExpr:
        return BinaryExpr("+", self.ref(), _coerce(other))

    def __sub__(self, other: "var | ValueExpr | Scalar") -> BinaryExpr:
        return BinaryExpr("-", self.ref(), _coerce(other))

    def __mul__(self, other: "var | ValueExpr | Scalar") -> BinaryExpr:
        return BinaryExpr("*", self.ref(), _coerce(other))


@dataclass(frozen=True)
class _Comparison:
    """Marker for a predicate test in :class:`RuleBuilder` calls."""

    op: str
    operand: Scalar | var


def gt(operand: Scalar | var) -> _Comparison:
    """``^attr > operand``."""
    return _Comparison(">", operand)


def ge(operand: Scalar | var) -> _Comparison:
    """``^attr >= operand``."""
    return _Comparison(">=", operand)


def lt(operand: Scalar | var) -> _Comparison:
    """``^attr < operand``."""
    return _Comparison("<", operand)


def le(operand: Scalar | var) -> _Comparison:
    """``^attr <= operand``."""
    return _Comparison("<=", operand)


def ne(operand: Scalar | var) -> _Comparison:
    """``^attr <> operand``."""
    return _Comparison("<>", operand)


def _coerce(value: "var | ValueExpr | Scalar") -> ValueExpr:
    if isinstance(value, var):
        return value.ref()
    return as_expr(value)


def _make_test(attribute: str, value: Scalar | var | _Comparison) -> Test:
    if isinstance(value, var):
        return VariableTest(attribute, value.name)
    if isinstance(value, _Comparison):
        if isinstance(value.operand, var):
            return PredicateTest(attribute, value.op, value.operand.name, True)
        return PredicateTest(attribute, value.op, value.operand, False)
    return ConstantTest(attribute, value)


class RuleBuilder:
    """Accumulates condition elements and actions, then builds a rule."""

    def __init__(self, name: str, priority: int = 0) -> None:
        self._name = name
        self._priority = priority
        self._lhs: list[ConditionElement] = []
        self._rhs: list[Action] = []

    # -- LHS ----------------------------------------------------------------------

    def when(
        self, relation: str, **tests: Scalar | var | _Comparison
    ) -> "RuleBuilder":
        """Add a positive condition element on ``relation``."""
        element = ConditionElement(
            relation,
            tuple(_make_test(a, v) for a, v in sorted(tests.items())),
        )
        self._lhs.append(element)
        return self

    def when_not(
        self, relation: str, **tests: Scalar | var | _Comparison
    ) -> "RuleBuilder":
        """Add a negated condition element on ``relation``."""
        element = ConditionElement(
            relation,
            tuple(_make_test(a, v) for a, v in sorted(tests.items())),
            negated=True,
        )
        self._lhs.append(element)
        return self

    # -- RHS ----------------------------------------------------------------------

    def make(
        self, relation: str, **values: ValueExpr | Scalar | var
    ) -> "RuleBuilder":
        """Add a ``make`` (create) action."""
        self._rhs.append(
            MakeAction.build(
                relation, {k: _coerce(v) for k, v in values.items()}
            )
        )
        return self

    def modify(
        self, ce_index: int, **values: ValueExpr | Scalar | var
    ) -> "RuleBuilder":
        """Add a ``modify`` action on the 1-based condition element."""
        self._rhs.append(
            ModifyAction.build(
                ce_index, {k: _coerce(v) for k, v in values.items()}
            )
        )
        return self

    def remove(self, ce_index: int) -> "RuleBuilder":
        """Add a ``remove`` (delete) action on the 1-based element."""
        self._rhs.append(RemoveAction(ce_index))
        return self

    def bind(
        self, variable: var | str, expr: ValueExpr | Scalar | var
    ) -> "RuleBuilder":
        """Add a ``bind`` action for an RHS-local variable."""
        name = variable.name if isinstance(variable, var) else variable
        self._rhs.append(BindAction(name, _coerce(expr)))
        return self

    def write(self, *exprs: ValueExpr | Scalar | var) -> "RuleBuilder":
        """Add a ``write`` action emitting the given expressions."""
        self._rhs.append(WriteAction(tuple(_coerce(e) for e in exprs)))
        return self

    def halt(self) -> "RuleBuilder":
        """Add a ``halt`` action."""
        self._rhs.append(HaltAction())
        return self

    # -- finish ---------------------------------------------------------------------

    def build(self) -> Production:
        """Construct (and thereby validate) the :class:`Production`."""
        return Production(
            self._name, tuple(self._lhs), tuple(self._rhs), self._priority
        )
