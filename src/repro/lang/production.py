"""The :class:`Production`: a validated LHS/RHS rule.

Beyond holding the AST, a production knows its *access templates*: over-
approximations of the relations it reads (LHS plus RHS element
designators) and writes (RHS make/modify/remove targets).  The static
approach of Section 4.1 partitions productions by intersecting these
templates; the dynamic lock schemes instead lock the concrete data
objects touched at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ValidationError
from repro.lang.ast import (
    Action,
    BindAction,
    ConditionElement,
    HaltAction,
    MakeAction,
    ModifyAction,
    RemoveAction,
    WriteAction,
)


@dataclass(frozen=True)
class Production:
    """An immutable production rule.

    Parameters
    ----------
    name:
        Unique rule name.
    lhs:
        Condition elements, in written order.  At least one positive
        (non-negated) element is required — otherwise there is nothing
        to instantiate.
    rhs:
        Actions executed when the rule fires.
    priority:
        Optional user priority (OPS5 rules are unprioritized; several
        conflict-resolution strategies here can use it as a tiebreak).
    """

    name: str
    lhs: tuple[ConditionElement, ...]
    rhs: tuple[Action, ...]
    priority: int = 0

    def __post_init__(self) -> None:
        self.validate()

    def __reduce__(self):
        # Compiled token plans and the variable index are cached on the
        # instance via ``object.__setattr__``; rebuild from the AST so
        # pickles never carry closures (mirrors WME.__reduce__).
        return (Production, (self.name, self.lhs, self.rhs, self.priority))

    # -- validation -------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ValidationError` on structural problems.

        Checks: non-empty LHS with ≥1 positive element; every variable
        predicate operand bound by an earlier positive element or its
        own element; element designators in range and pointing at
        positive elements; every RHS variable bound by the LHS or an
        earlier ``bind``.
        """
        if not self.lhs:
            raise ValidationError(f"production {self.name!r} has an empty LHS")
        if all(ce.negated for ce in self.lhs):
            raise ValidationError(
                f"production {self.name!r}: all condition elements are "
                f"negated; at least one positive element is required"
            )
        # A variable predicate operand must be bound by the time its
        # element is evaluated — by a variable test in an earlier
        # *positive* element, or by one in the same element (variable
        # tests run before predicates).  This used to surface as a
        # per-WME ValidationError at match time, so whether a bad rule
        # errored depended on which WMEs arrived (and the matchers
        # genuinely disagreed on rules with forward references: TREAT's
        # retraction path evaluates with full-instantiation bindings).
        # Reject once, at load.
        bound_so_far: set[str] = set()
        for element in self.lhs:
            local = {t.variable for t in element.variable_tests()}
            available = bound_so_far | local
            for pred in element.variable_predicates():
                name = str(pred.operand)
                if name not in available:
                    raise ValidationError(
                        f"production {self.name!r}: condition {element} "
                        f"predicate {pred} references variable <{name}> "
                        f"not bound by an earlier positive condition "
                        f"element"
                    )
            if not element.negated:
                bound_so_far |= local
        positives = self.positive_indices()
        bound = self.lhs_variables()
        for action in self.rhs:
            if isinstance(action, (ModifyAction, RemoveAction)):
                if not 1 <= action.ce_index <= len(self.lhs):
                    raise ValidationError(
                        f"production {self.name!r}: designator "
                        f"{action.ce_index} out of range 1..{len(self.lhs)}"
                    )
                if (action.ce_index - 1) not in positives:
                    raise ValidationError(
                        f"production {self.name!r}: designator "
                        f"{action.ce_index} names a negated condition element"
                    )
            unbound = action.variables() - bound
            if unbound:
                raise ValidationError(
                    f"production {self.name!r}: action {action} uses "
                    f"unbound variable(s) {sorted(unbound)}"
                )
            if isinstance(action, BindAction):
                bound = bound | {action.variable}
        # Matchers check this flag at registration: a production built
        # without going through validate() (e.g. via object.__new__)
        # could carry forward references the compiled beta closures no
        # longer guard per-WME.
        object.__setattr__(self, "_validated", True)

    # -- compiled match plans -----------------------------------------------------

    def token_plan(self, kind: str | None = None):
        """The production's token plan, built once per layout kind.

        ``kind`` is ``"slotted"`` or ``"dict"``; ``None`` honors the
        active compile-mode flags (:func:`repro.lang.compile.plan_kind`).
        Plans cache per production, so every matcher registering the
        same rule — including a partitioned outer matcher and its inner
        shards — shares one compiled plan.
        """
        from repro.lang import compile as _compile

        if kind is None:
            kind = _compile.plan_kind()
        try:
            plans = self._token_plans
        except AttributeError:
            plans = {}
            object.__setattr__(self, "_token_plans", plans)
        plan = plans.get(kind)
        if plan is None:
            if kind == "dict":
                plan = _compile.DictPlan(self)
            else:
                plan = _compile.SlottedPlan(self)
            plans[kind] = plan
        return plan

    # -- structure queries --------------------------------------------------------

    def positive_indices(self) -> tuple[int, ...]:
        """0-based indices of the positive (non-negated) LHS elements."""
        return tuple(
            i for i, ce in enumerate(self.lhs) if not ce.negated
        )

    def positive_elements(self) -> tuple[ConditionElement, ...]:
        """The positive LHS elements, in order."""
        return tuple(ce for ce in self.lhs if not ce.negated)

    def negative_elements(self) -> tuple[ConditionElement, ...]:
        """The negated LHS elements, in order."""
        return tuple(ce for ce in self.lhs if ce.negated)

    def lhs_variables(self) -> frozenset[str]:
        """Variables bound by positive condition elements."""
        out: frozenset[str] = frozenset()
        for ce in self.lhs:
            if not ce.negated:
                out |= {t.variable for t in ce.variable_tests()}
        return out

    def halts(self) -> bool:
        """True when the RHS contains a ``halt`` action."""
        return any(isinstance(a, HaltAction) for a in self.rhs)

    # -- access templates (interference analysis, Section 4.1) -------------------

    def read_relations(self) -> frozenset[str]:
        """Relations whose contents the LHS depends on.

        Includes negated elements: a negative condition *reads* the
        (absence from the) relation, which is exactly why Section 4.3
        escalates its lock to relation level.
        """
        return frozenset(ce.relation for ce in self.lhs)

    def write_relations(self) -> frozenset[str]:
        """Relations the RHS may create, modify or delete tuples of."""
        out: set[str] = set()
        for action in self.rhs:
            if isinstance(action, MakeAction):
                out.add(action.relation)
            elif isinstance(action, (ModifyAction, RemoveAction)):
                out.add(self.lhs[action.ce_index - 1].relation)
        return frozenset(out)

    def negative_read_relations(self) -> frozenset[str]:
        """Relations read through negated condition elements only."""
        return frozenset(ce.relation for ce in self.lhs if ce.negated)

    # -- presentation ---------------------------------------------------------------

    def __str__(self) -> str:
        lhs = "\n    ".join(str(ce) for ce in self.lhs)
        rhs = "\n    ".join(str(a) for a in self.rhs)
        return f"(p {self.name}\n    {lhs}\n  -->\n    {rhs})"


def ensure_validated(production: Production) -> None:
    """Raise :class:`ValidationError` unless ``production`` passed
    :meth:`Production.validate`.

    Matchers call this at registration.  The compiled beta closures
    assume predicate operands are bound (load-time validation), so a
    production smuggled past ``validate()`` must be rejected before it
    reaches a join, not deep inside one.
    """
    if not getattr(production, "_validated", False):
        production.validate()


def check_unique_names(productions: Sequence[Production]) -> None:
    """Raise :class:`ValidationError` when two productions share a name."""
    seen: set[str] = set()
    for production in productions:
        if production.name in seen:
            raise ValidationError(
                f"duplicate production name {production.name!r}"
            )
        seen.add(production.name)


def productions_by_name(
    productions: Iterable[Production],
) -> dict[str, Production]:
    """Index productions by name, enforcing uniqueness."""
    out: dict[str, Production] = {}
    for production in productions:
        if production.name in out:
            raise ValidationError(
                f"duplicate production name {production.name!r}"
            )
        out[production.name] = production
    return out
