"""Recursive-descent parser for the rule DSL.

Grammar (s-expression shaped, after :mod:`repro.lang.tokens`)::

    program     := production*
    production  := '(' 'p' NAME [NUMBER] ce+ '-->' action* ')'
    ce          := ['-'] '(' RELATION test* ')'
    test        := ATTR value
                 | ATTR OPERATOR value
    value       := literal | VARIABLE
    action      := '(' 'make' RELATION (ATTR expr)* ')'
                 | '(' 'modify' NUMBER (ATTR expr)* ')'
                 | '(' 'remove' NUMBER ')'
                 | '(' 'bind' VARIABLE expr ')'
                 | '(' 'write' expr* ')'
                 | '(' 'halt' ')'
    expr        := literal | VARIABLE | '(' expr OPERATOR expr ')'

The optional number after the production name is its priority.  The
symbols ``true``, ``false`` and ``nil`` lex as symbols and parse as
``True``, ``False`` and ``None``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.ast import (
    Action,
    BinaryExpr,
    BindAction,
    ConditionElement,
    Constant,
    ConstantTest,
    HaltAction,
    MakeAction,
    ModifyAction,
    PredicateTest,
    RemoveAction,
    Test,
    ValueExpr,
    VariableRef,
    VariableTest,
    WriteAction,
)
from repro.lang.production import Production, check_unique_names
from repro.lang.tokens import (
    ARROW,
    ATTRIBUTE,
    EOF,
    LPAREN,
    NEGATION,
    NUMBER,
    OPERATOR,
    RPAREN,
    STRING,
    SYMBOL,
    VARIABLE,
    Token,
    tokenize,
)
from repro.wm.element import Scalar

_KEYWORD_LITERALS: dict[str, Scalar] = {
    "true": True,
    "false": False,
    "nil": None,
}

_ARITHMETIC_OPS = ("+", "-", "*", "/", "//", "%")
_PREDICATE_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------------

    def peek(self) -> Token:
        return self._tokens[self._pos]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != EOF:
            self._pos += 1
        return token

    def expect(self, kind: str, what: str = "") -> Token:
        token = self.peek()
        if token.kind != kind:
            expected = what or kind.lower()
            raise ParseError(
                f"expected {expected}, found {token.kind} {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_symbol(self, text: str) -> Token:
        token = self.expect(SYMBOL, f"'{text}'")
        if token.text != text:
            raise ParseError(
                f"expected '{text}', found {token.text!r}",
                token.line,
                token.column,
            )
        return token

    # -- grammar -----------------------------------------------------------------

    def parse_program(self) -> list[Production]:
        productions: list[Production] = []
        while self.peek().kind != EOF:
            productions.append(self.parse_production())
        check_unique_names(productions)
        return productions

    def parse_production(self) -> Production:
        self.expect(LPAREN, "'(' starting a production")
        self.expect_symbol("p")
        name = self.expect(SYMBOL, "production name").text
        priority = 0
        if self.peek().kind == NUMBER:
            priority = int(self.advance().text)
        lhs: list[ConditionElement] = []
        while self.peek().kind in (LPAREN, NEGATION):
            lhs.append(self.parse_condition_element())
        arrow = self.peek()
        if arrow.kind != ARROW:
            raise ParseError(
                f"expected '-->' after LHS of {name!r}, found "
                f"{arrow.kind} {arrow.text!r}",
                arrow.line,
                arrow.column,
            )
        self.advance()
        rhs: list[Action] = []
        while self.peek().kind == LPAREN:
            rhs.append(self.parse_action())
        self.expect(RPAREN, "')' closing the production")
        return Production(name, tuple(lhs), tuple(rhs), priority)

    def parse_condition_element(self) -> ConditionElement:
        negated = False
        if self.peek().kind == NEGATION:
            self.advance()
            negated = True
        self.expect(LPAREN, "'(' starting a condition element")
        relation = self.expect(SYMBOL, "relation name").text
        tests: list[Test] = []
        while self.peek().kind == ATTRIBUTE:
            tests.append(self.parse_test())
        self.expect(RPAREN, "')' closing the condition element")
        return ConditionElement(relation, tuple(tests), negated)

    def parse_test(self) -> Test:
        attribute = self.expect(ATTRIBUTE).text
        token = self.peek()
        if token.kind == OPERATOR:
            op = self.advance().text
            if op not in _PREDICATE_OPS:
                raise ParseError(
                    f"operator {op!r} is not a predicate",
                    token.line,
                    token.column,
                )
            return self._finish_predicate(attribute, op)
        if token.kind == VARIABLE:
            self.advance()
            return VariableTest(attribute, token.text)
        literal = self.parse_literal("test value")
        return ConstantTest(attribute, literal)

    def _finish_predicate(self, attribute: str, op: str) -> Test:
        token = self.peek()
        if token.kind == VARIABLE:
            self.advance()
            if op == "=":
                return VariableTest(attribute, token.text)
            return PredicateTest(attribute, op, token.text, True)
        literal = self.parse_literal("predicate operand")
        if op == "=":
            return ConstantTest(attribute, literal)
        return PredicateTest(attribute, op, literal, False)

    def parse_action(self) -> Action:
        self.expect(LPAREN, "'(' starting an action")
        head = self.expect(SYMBOL, "action name").text
        if head == "make":
            relation = self.expect(SYMBOL, "relation name").text
            values = self.parse_value_list()
            self.expect(RPAREN)
            return MakeAction(relation, values)
        if head == "modify":
            index = int(self.expect(NUMBER, "element designator").text)
            values = self.parse_value_list()
            self.expect(RPAREN)
            return ModifyAction(index, values)
        if head == "remove":
            index = int(self.expect(NUMBER, "element designator").text)
            self.expect(RPAREN)
            return RemoveAction(index)
        if head == "bind":
            variable = self.expect(VARIABLE, "variable").text
            expr = self.parse_expr()
            self.expect(RPAREN)
            return BindAction(variable, expr)
        if head == "write":
            exprs: list[ValueExpr] = []
            while self.peek().kind != RPAREN:
                exprs.append(self.parse_expr())
            self.expect(RPAREN)
            return WriteAction(tuple(exprs))
        if head == "halt":
            self.expect(RPAREN)
            return HaltAction()
        token = self.peek()
        raise ParseError(
            f"unknown action {head!r}", token.line, token.column
        )

    def parse_value_list(self) -> tuple[tuple[str, ValueExpr], ...]:
        pairs: list[tuple[str, ValueExpr]] = []
        while self.peek().kind == ATTRIBUTE:
            attribute = self.advance().text
            pairs.append((attribute, self.parse_expr()))
        return tuple(pairs)

    def parse_expr(self) -> ValueExpr:
        token = self.peek()
        if token.kind == VARIABLE:
            self.advance()
            return VariableRef(token.text)
        if token.kind == LPAREN:
            self.advance()
            left = self.parse_expr()
            op_token = self.expect(OPERATOR, "arithmetic operator")
            if op_token.text not in _ARITHMETIC_OPS:
                raise ParseError(
                    f"operator {op_token.text!r} is not arithmetic",
                    op_token.line,
                    op_token.column,
                )
            right = self.parse_expr()
            self.expect(RPAREN, "')' closing the expression")
            return BinaryExpr(op_token.text, left, right)
        return Constant(self.parse_literal("expression"))

    def parse_literal(self, what: str) -> Scalar:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == STRING:
            self.advance()
            return token.text
        if token.kind == SYMBOL:
            self.advance()
            if token.text in _KEYWORD_LITERALS:
                return _KEYWORD_LITERALS[token.text]
            return token.text
        raise ParseError(
            f"expected {what}, found {token.kind} {token.text!r}",
            token.line,
            token.column,
        )


def parse_production(text: str) -> Production:
    """Parse exactly one production from ``text``.

    >>> p = parse_production('(p noop (item ^id <x>) --> (remove 1))')
    >>> p.name
    'noop'
    """
    parser = _Parser(tokenize(text))
    production = parser.parse_production()
    trailing = parser.peek()
    if trailing.kind != EOF:
        raise ParseError(
            f"trailing input after production: {trailing.text!r}",
            trailing.line,
            trailing.column,
        )
    return production


def parse_program(text: str) -> list[Production]:
    """Parse zero or more productions from ``text``."""
    return _Parser(tokenize(text)).parse_program()
