"""Condition compilation: closures instead of interpreted test walks.

The match phase dominates cycle time (Section 5's sweeps; the
critical-path reports attribute most of each cycle to the ``match``
bucket), and the seed evaluated every condition element by *walking*
its test list per WME probe — re-filtering the tests into
constant/variable partitions, re-looking the predicate operator up in a
dict, and re-scanning the WME's attribute tuple for every single test.

This module compiles each :class:`~repro.lang.ast.ConditionElement`
once, at matcher-construction time, into a :class:`CompiledCondition`
holding exactly two closures:

* ``alpha(wme) -> bool`` — the relation + constant-test +
  constant-predicate check (the alpha-network filter), specialized to
  the element's actual test shape (relation-only and constants-only
  elements get dedicated, branch-free closures);
* ``beta(wme, bindings) -> dict | None`` — the variable bind/join tests
  and variable-operand predicates, over precomputed ``(attribute,
  variable)`` / ``(attribute, comparator, operand)`` tuples and the
  WME's cached attribute map.

Both closures are pure functions of the (immutable) element, so they
are built once and cached on the element itself; every matcher — naive,
Rete, TREAT, cond-relations, and the partitioned matcher's shards —
binds them directly at its hot sites.

Equivalence contract
--------------------
``alpha``/``beta`` are bit-compatible with the seed's interpreted
walks: same accept/reject decisions, same extended-bindings dicts, the
same ``ValidationError`` on a predicate referencing an unbound variable
(unreachable for validated productions —
:meth:`~repro.lang.production.Production.validate` now rejects such
rules at load time — but preserved for bare condition elements), and
``False``/``None`` on cross-type comparisons.  The seed walks survive
as :func:`interpreted_alpha` / :func:`interpreted_beta`, used by the
equivalence property tests and by the hot-path benchmark's
before/after comparison; :func:`interpreted_conditions` switches
freshly compiled elements onto them wholesale so a whole engine run
can be A/B'd.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ValidationError
from repro.wm.element import Scalar, WME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lang.ast import ConditionElement

#: Sentinel distinguishing "attribute absent" from a stored ``None``.
_MISSING = object()

AlphaEvaluator = Callable[[WME], bool]
BetaEvaluator = Callable[[WME, "Bindings"], "dict[str, Scalar] | None"]

#: When true, :func:`build_evaluators` hands out the seed's interpreted
#: walks instead of compiled closures.  Consulted at *build* time: an
#: element caches its evaluators on first use, so the flag must be set
#: before the element is ever evaluated (wrap the whole
#: construct-and-run, as the hot-path benchmark does).
_MODE = {"interpreted": False}


@contextmanager
def interpreted_conditions() -> Iterator[None]:
    """Evaluate conditions with the seed's interpreted walks.

    A/B harness for the hot-path benchmark and the equivalence suite.
    Affects only condition elements *first evaluated* inside the
    block (evaluators are cached per element).
    """
    previous = _MODE["interpreted"]
    _MODE["interpreted"] = True
    try:
        yield
    finally:
        _MODE["interpreted"] = previous


class CompiledCondition:
    """One condition element's precompiled evaluators and test layout.

    Attributes
    ----------
    alpha, beta:
        The two closures described in the module docstring.
    match:
        Convenience composition: ``beta(wme, bindings)`` when
        ``alpha(wme)`` passes, else ``None``.
    constant_equalities:
        ``(attribute, value)`` pairs from the constant tests — the
        index-probe keys the naive/TREAT candidate selectors use.
    variable_items:
        ``(attribute, variable)`` pairs from the variable tests — used
        to extend index probes with already-bound join equalities.
    mode:
        ``"compiled"`` or ``"interpreted"`` (which family of
        evaluators this instance carries).
    """

    __slots__ = (
        "element",
        "mode",
        "alpha",
        "beta",
        "match",
        "constant_equalities",
        "variable_items",
    )

    def __init__(
        self,
        element: "ConditionElement",
        mode: str,
        alpha: AlphaEvaluator,
        beta: BetaEvaluator,
    ) -> None:
        self.element = element
        self.mode = mode
        self.alpha = alpha
        self.beta = beta
        self.constant_equalities = tuple(
            (t.attribute, t.value) for t in element.constant_tests()
        )
        self.variable_items = tuple(
            (t.attribute, t.variable) for t in element.variable_tests()
        )

        def match(
            wme: WME,
            bindings=None,
            *,
            _alpha=alpha,
            _beta=beta,
        ):
            if not _alpha(wme):
                return None
            return _beta(wme, bindings if bindings is not None else {})

        self.match = match


def build_evaluators(element: "ConditionElement") -> CompiledCondition:
    """Build the evaluator pair for ``element``, honoring the mode flag."""
    if _MODE["interpreted"]:
        return CompiledCondition(
            element,
            "interpreted",
            interpreted_alpha(element),
            interpreted_beta(element),
        )
    return CompiledCondition(
        element, "compiled", compile_alpha(element), compile_beta(element)
    )


# ---------------------------------------------------------------------------
# Compiled closures
# ---------------------------------------------------------------------------


def compile_alpha(element: "ConditionElement") -> AlphaEvaluator:
    """Compile the relation + constant-test check into one closure."""
    from repro.lang.ast import _PREDICATES

    relation = element.relation
    const_items = tuple(
        (t.attribute, t.value) for t in element.constant_tests()
    )
    pred_items = tuple(
        (t.attribute, _PREDICATES[t.op], t.operand)
        for t in element.constant_predicates()
    )

    if not const_items and not pred_items:

        def alpha_relation_only(wme: WME, *, _relation=relation) -> bool:
            return wme.relation == _relation

        return alpha_relation_only

    if not pred_items:

        def alpha_constants(
            wme: WME,
            *,
            _relation=relation,
            _items=const_items,
            _missing=_MISSING,
        ) -> bool:
            if wme.relation != _relation:
                return False
            mapping = wme.mapping()
            for attribute, expected in _items:
                if mapping.get(attribute, _missing) != expected:
                    return False
            return True

        return alpha_constants

    def alpha_full(
        wme: WME,
        *,
        _relation=relation,
        _items=const_items,
        _preds=pred_items,
        _missing=_MISSING,
    ) -> bool:
        if wme.relation != _relation:
            return False
        mapping = wme.mapping()
        for attribute, expected in _items:
            if mapping.get(attribute, _missing) != expected:
                return False
        for attribute, compare, operand in _preds:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return False
            try:
                if not compare(value, operand):
                    return False
            except TypeError:
                # Ordering across unlike types is False (seed semantics).
                return False
        return True

    return alpha_full


def compile_beta(element: "ConditionElement") -> BetaEvaluator:
    """Compile the variable bind/join tests into one closure."""
    from repro.lang.ast import _PREDICATES

    var_items = tuple(
        (t.attribute, t.variable) for t in element.variable_tests()
    )
    pred_items = tuple(
        (t.attribute, _PREDICATES[t.op], str(t.operand), t)
        for t in element.variable_predicates()
    )

    if not var_items and not pred_items:

        def beta_copy(wme: WME, bindings) -> dict[str, Scalar]:
            return dict(bindings)

        return beta_copy

    def beta(
        wme: WME,
        bindings,
        *,
        _vars=var_items,
        _preds=pred_items,
        _missing=_MISSING,
    ) -> dict[str, Scalar] | None:
        mapping = wme.mapping()
        extended = dict(bindings)
        for attribute, variable in _vars:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            prior = extended.get(variable, _missing)
            if prior is _missing:
                extended[variable] = value
            elif prior != value:
                return None
        for attribute, compare, operand_name, test in _preds:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            operand = extended.get(operand_name, _missing)
            if operand is _missing:
                raise ValidationError(
                    f"predicate {test} references unbound variable "
                    f"<{operand_name}>"
                )
            try:
                if not compare(value, operand):
                    return None
            except TypeError:
                return None
        return extended

    return beta


# ---------------------------------------------------------------------------
# The seed's interpreted walks (equivalence oracle + benchmark baseline)
# ---------------------------------------------------------------------------


def interpreted_alpha(element: "ConditionElement") -> AlphaEvaluator:
    """The seed's per-probe interpreted alpha walk, verbatim.

    Re-filters the test list on every probe and scans the WME's
    attribute tuple per test — deliberately, so the hot-path benchmark
    measures the compiled closures against the true seed baseline.
    """
    from repro.lang.ast import ConstantTest, PredicateTest, _compare

    def alpha(wme: WME, *, _element=element) -> bool:
        if wme.relation != _element.relation:
            return False
        for test in tuple(
            t for t in _element.tests if isinstance(t, ConstantTest)
        ):
            if test.attribute not in wme or wme[test.attribute] != test.value:
                return False
        for pred in tuple(
            t
            for t in _element.tests
            if isinstance(t, PredicateTest) and not t.operand_is_variable
        ):
            if pred.attribute not in wme:
                return False
            if not _compare(pred.op, wme[pred.attribute], pred.operand):
                return False
        return True

    return alpha


def interpreted_beta(element: "ConditionElement") -> BetaEvaluator:
    """The seed's per-probe interpreted beta walk, verbatim."""
    from repro.lang.ast import PredicateTest, VariableTest, _compare

    def beta(wme: WME, bindings, *, _element=element):
        extended = dict(bindings)
        for test in tuple(
            t for t in _element.tests if isinstance(t, VariableTest)
        ):
            if test.attribute not in wme:
                return None
            value = wme[test.attribute]
            if test.variable in extended:
                if extended[test.variable] != value:
                    return None
            else:
                extended[test.variable] = value
        for pred in tuple(
            t
            for t in _element.tests
            if isinstance(t, PredicateTest) and t.operand_is_variable
        ):
            if pred.attribute not in wme:
                return None
            operand = extended.get(str(pred.operand))
            if operand is None and str(pred.operand) not in extended:
                raise ValidationError(
                    f"predicate {pred} references unbound variable "
                    f"<{pred.operand}>"
                )
            if not _compare(pred.op, wme[pred.attribute], operand):
                return None
        return extended

    return beta
