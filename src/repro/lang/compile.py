"""Condition compilation: closures instead of interpreted test walks.

The match phase dominates cycle time (Section 5's sweeps; the
critical-path reports attribute most of each cycle to the ``match``
bucket), and the seed evaluated every condition element by *walking*
its test list per WME probe — re-filtering the tests into
constant/variable partitions, re-looking the predicate operator up in a
dict, and re-scanning the WME's attribute tuple for every single test.

This module compiles each :class:`~repro.lang.ast.ConditionElement`
once, at matcher-construction time, into a :class:`CompiledCondition`
holding exactly two closures:

* ``alpha(wme) -> bool`` — the relation + constant-test +
  constant-predicate check (the alpha-network filter), specialized to
  the element's actual test shape (relation-only and constants-only
  elements get dedicated, branch-free closures);
* ``beta(wme, bindings) -> dict | None`` — the variable bind/join tests
  and variable-operand predicates, over precomputed ``(attribute,
  variable)`` / ``(attribute, comparator, operand)`` tuples and the
  WME's cached attribute map.

Both closures are pure functions of the (immutable) element, so they
are built once and cached on the element itself; every matcher — naive,
Rete, TREAT, cond-relations, and the partitioned matcher's shards —
binds them directly at its hot sites.

Slotted token layouts
---------------------
The dict-shaped ``beta`` above still copies the whole bindings dict on
every successful join extension — one allocation plus per-variable
hashing per step of every join chain.  The *slotted* layer below
removes that: a :class:`VariableIndex` built once per production maps
each variable name to a fixed slot, tokens become plain tuples (one
slot per variable, :data:`_MISSING` when unbound), and
:func:`compile_beta_slots` emits closures that read/write slots by
integer index, copying lazily — a pure join probe that binds nothing
returns the incoming token object unchanged.  Matchers obtain a
per-production :class:`SlottedPlan` (or its dict-token twin,
:class:`DictPlan`) via :func:`build_token_plan`; the plan carries one
:class:`SlottedStep` per condition element, compiled against the
LHS-prefix widths so Rete's shared beta prefixes keep sharing (two
productions with a common prefix assign identical slots to the
prefix's variables).

Equivalence contract
--------------------
``alpha``/``beta`` are bit-compatible with the seed's interpreted
walks: same accept/reject decisions, same extended-bindings dicts, the
same ``ValidationError`` on a predicate referencing an unbound variable
(unreachable for validated productions —
:meth:`~repro.lang.production.Production.validate` now rejects such
rules at load time — but preserved for bare condition elements), and
``False``/``None`` on cross-type comparisons.  The seed walks survive
as :func:`interpreted_alpha` / :func:`interpreted_beta`, used by the
equivalence property tests and by the hot-path benchmark's
before/after comparison; :func:`interpreted_conditions` switches
freshly compiled elements onto them wholesale so a whole engine run
can be A/B'd.  The slotted layer obeys the same contract one level
up: :func:`dict_tokens` forces dict-shaped plans, and the
slotted-vs-dict property suite demands identical conflict sets *and*
identical ``bindings_items`` across all four matchers.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import ValidationError
from repro.wm.element import Scalar, WME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lang.ast import ConditionElement
    from repro.lang.production import Production

#: Sentinel distinguishing "attribute absent" from a stored ``None``.
_MISSING = object()

AlphaEvaluator = Callable[[WME], bool]
BetaEvaluator = Callable[[WME, "Bindings"], "dict[str, Scalar] | None"]

#: When ``interpreted`` is true, :func:`build_evaluators` hands out the
#: seed's interpreted walks instead of compiled closures.  Consulted at
#: *build* time: an element caches its evaluators on first use, so the
#: flag must be set before the element is ever evaluated (wrap the
#: whole construct-and-run, as the hot-path benchmark does).  When
#: ``dict_tokens`` is true, :func:`build_token_plan` hands out
#: dict-shaped plans instead of slotted ones — same build-time caveat,
#: at the plan level (plans are cached per production per kind).
_MODE = {"interpreted": False, "dict_tokens": False}


@contextmanager
def interpreted_conditions() -> Iterator[None]:
    """Evaluate conditions with the seed's interpreted walks.

    A/B harness for the hot-path benchmark and the equivalence suite.
    Affects only condition elements *first evaluated* inside the
    block (evaluators are cached per element).  Implies dict tokens:
    the interpreted walks are dict-shaped, so plans built inside the
    block are :class:`DictPlan`.
    """
    previous = _MODE["interpreted"]
    _MODE["interpreted"] = True
    try:
        yield
    finally:
        _MODE["interpreted"] = previous


@contextmanager
def dict_tokens() -> Iterator[None]:
    """Match with dict-shaped tokens (the PR-7 layout) instead of slots.

    A/B harness for the slotted-vs-dict equivalence suite and the
    hot-path benchmark.  Affects only productions whose token plan is
    *first built* inside the block (plans are cached per production),
    so wrap the whole construct-and-run.
    """
    previous = _MODE["dict_tokens"]
    _MODE["dict_tokens"] = True
    try:
        yield
    finally:
        _MODE["dict_tokens"] = previous


def plan_kind() -> str:
    """The token-plan kind the current mode flags select."""
    if _MODE["interpreted"] or _MODE["dict_tokens"]:
        return "dict"
    return "slotted"


class CompiledCondition:
    """One condition element's precompiled evaluators and test layout.

    Attributes
    ----------
    alpha, beta:
        The two closures described in the module docstring.
    match:
        Convenience composition: ``beta(wme, bindings)`` when
        ``alpha(wme)`` passes, else ``None``.
    constant_equalities:
        ``(attribute, value)`` pairs from the constant tests — the
        index-probe keys the naive/TREAT candidate selectors use.
    variable_items:
        ``(attribute, variable)`` pairs from the variable tests — used
        to extend index probes with already-bound join equalities.
    mode:
        ``"compiled"`` or ``"interpreted"`` (which family of
        evaluators this instance carries).
    """

    __slots__ = (
        "element",
        "mode",
        "alpha",
        "beta",
        "match",
        "constant_equalities",
        "variable_items",
    )

    def __init__(
        self,
        element: "ConditionElement",
        mode: str,
        alpha: AlphaEvaluator,
        beta: BetaEvaluator,
    ) -> None:
        self.element = element
        self.mode = mode
        self.alpha = alpha
        self.beta = beta
        self.constant_equalities = tuple(
            (t.attribute, t.value) for t in element.constant_tests()
        )
        self.variable_items = tuple(
            (t.attribute, t.variable) for t in element.variable_tests()
        )

        def match(
            wme: WME,
            bindings=None,
            *,
            _alpha=alpha,
            _beta=beta,
        ):
            if not _alpha(wme):
                return None
            return _beta(wme, bindings if bindings is not None else {})

        self.match = match


def build_evaluators(element: "ConditionElement") -> CompiledCondition:
    """Build the evaluator pair for ``element``, honoring the mode flag."""
    if _MODE["interpreted"]:
        return CompiledCondition(
            element,
            "interpreted",
            interpreted_alpha(element),
            interpreted_beta(element),
        )
    return CompiledCondition(
        element, "compiled", compile_alpha(element), compile_beta(element)
    )


# ---------------------------------------------------------------------------
# Compiled closures
# ---------------------------------------------------------------------------


def compile_alpha(element: "ConditionElement") -> AlphaEvaluator:
    """Compile the relation + constant-test check into one closure."""
    from repro.lang.ast import _PREDICATES

    relation = element.relation
    const_items = tuple(
        (t.attribute, t.value) for t in element.constant_tests()
    )
    pred_items = tuple(
        (t.attribute, _PREDICATES[t.op], t.operand)
        for t in element.constant_predicates()
    )

    if not const_items and not pred_items:

        def alpha_relation_only(wme: WME, *, _relation=relation) -> bool:
            return wme.relation == _relation

        return alpha_relation_only

    if not pred_items:

        def alpha_constants(
            wme: WME,
            *,
            _relation=relation,
            _items=const_items,
            _missing=_MISSING,
        ) -> bool:
            if wme.relation != _relation:
                return False
            mapping = wme.mapping()
            for attribute, expected in _items:
                if mapping.get(attribute, _missing) != expected:
                    return False
            return True

        return alpha_constants

    def alpha_full(
        wme: WME,
        *,
        _relation=relation,
        _items=const_items,
        _preds=pred_items,
        _missing=_MISSING,
    ) -> bool:
        if wme.relation != _relation:
            return False
        mapping = wme.mapping()
        for attribute, expected in _items:
            if mapping.get(attribute, _missing) != expected:
                return False
        for attribute, compare, operand in _preds:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return False
            try:
                if not compare(value, operand):
                    return False
            except TypeError:
                # Ordering across unlike types is False (seed semantics).
                return False
        return True

    return alpha_full


def compile_beta(element: "ConditionElement") -> BetaEvaluator:
    """Compile the variable bind/join tests into one closure."""
    from repro.lang.ast import _PREDICATES

    var_items = tuple(
        (t.attribute, t.variable) for t in element.variable_tests()
    )
    pred_items = tuple(
        (t.attribute, _PREDICATES[t.op], str(t.operand), t)
        for t in element.variable_predicates()
    )

    if not var_items and not pred_items:
        # A test-free element binds nothing, and no caller mutates a
        # beta result before the next extension copies it anyway — so
        # hand the incoming token back unchanged instead of allocating
        # a fresh dict per probe (the allocation-count tests pin this).

        def beta_pass(wme: WME, bindings) -> dict[str, Scalar]:
            return bindings

        return beta_pass

    def beta(
        wme: WME,
        bindings,
        *,
        _vars=var_items,
        _preds=pred_items,
        _missing=_MISSING,
    ) -> dict[str, Scalar] | None:
        mapping = wme.mapping()
        extended = dict(bindings)
        for attribute, variable in _vars:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            prior = extended.get(variable, _missing)
            if prior is _missing:
                extended[variable] = value
            elif prior != value:
                return None
        for attribute, compare, operand_name, test in _preds:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            operand = extended.get(operand_name, _missing)
            if operand is _missing:
                raise ValidationError(
                    f"predicate {test} references unbound variable "
                    f"<{operand_name}>"
                )
            try:
                if not compare(value, operand):
                    return None
            except TypeError:
                return None
        return extended

    return beta


# ---------------------------------------------------------------------------
# Slotted token layouts
# ---------------------------------------------------------------------------

#: Token in the slotted layout: one slot per variable, ``_MISSING``
#: when unbound.  Tokens grow along the LHS — at condition element
#: ``i`` a token has ``VariableIndex.prefix_widths[i]`` slots.
SlotToken = tuple
SlottedBeta = Callable[[WME, SlotToken], "SlotToken | None"]


class VariableIndex:
    """Variable name → slot mapping for one production's LHS.

    Slots are assigned in first-occurrence order walking the LHS left
    to right (variable tests in test order, then variable-predicate
    operands, per element), *including* negated elements: their local
    variables get slots too — the existential probe binds them into a
    discarded copy, so the slot simply stays :data:`_MISSING` in every
    persisted token, exactly like the dict layout's discarded extended
    dict.  Because the assignment is a pure function of the element
    sequence, two productions sharing an LHS prefix assign identical
    slots to the prefix's variables — which is what lets Rete's shared
    beta prefixes keep sharing join nodes under the slotted layout.
    """

    __slots__ = (
        "names",
        "slots",
        "width",
        "empty",
        "prefix_widths",
        "_sorted_items",
    )

    def __init__(self, elements: "tuple[ConditionElement, ...]") -> None:
        names: list[str] = []
        seen: set[str] = set()
        widths = [0]
        for element in elements:
            for test in element.variable_tests():
                if test.variable not in seen:
                    seen.add(test.variable)
                    names.append(test.variable)
            for pred in element.variable_predicates():
                operand = str(pred.operand)
                if operand not in seen:
                    seen.add(operand)
                    names.append(operand)
            widths.append(len(names))
        self.names = tuple(names)
        self.slots = {name: slot for slot, name in enumerate(names)}
        self.width = len(names)
        #: The all-unbound token of full width (shared; tuples are
        #: immutable so sharing is safe).
        self.empty = (_MISSING,) * self.width
        #: ``prefix_widths[i]`` = slots assigned by elements ``0..i-1``
        #: — the token width entering element ``i``.
        self.prefix_widths = tuple(widths)
        #: ``(name, slot)`` pairs in name order, for materializing
        #: sorted ``bindings_items`` without a per-call sort.
        self._sorted_items = tuple(sorted(self.slots.items()))

    @staticmethod
    def for_production(production: "Production") -> "VariableIndex":
        """The production's index, built once and cached on it."""
        try:
            return production._variable_index
        except AttributeError:
            pass
        index = VariableIndex(production.lhs)
        object.__setattr__(production, "_variable_index", index)
        return index

    def slot(self, name: str) -> int:
        """The slot assigned to variable ``name`` (KeyError if absent)."""
        return self.slots[name]

    def __len__(self) -> int:
        return self.width

    def __contains__(self, name: object) -> bool:
        return name in self.slots

    def bindings_items(
        self, token: SlotToken
    ) -> tuple[tuple[str, Scalar], ...]:
        """The bound ``(name, value)`` pairs of a full-width token,
        sorted by name — bit-identical to the dict layout's
        ``tuple(sorted(bindings.items()))``."""
        missing = _MISSING
        return tuple(
            (name, token[slot])
            for name, slot in self._sorted_items
            if token[slot] is not missing
        )

    def token_from_items(
        self, items: "tuple[tuple[str, Scalar], ...]"
    ) -> SlotToken:
        """Rebuild a full-width token from ``bindings_items`` pairs."""
        token = list(self.empty)
        slots = self.slots
        for name, value in items:
            slot = slots.get(name)
            if slot is not None:
                token[slot] = value
        return tuple(token)


def compile_beta_slots(
    element: "ConditionElement",
    index: VariableIndex,
    in_width: int,
    out_width: int,
) -> SlottedBeta:
    """Compile the variable bind/join tests into a slot-aware closure.

    The closure takes a token of ``in_width`` slots and returns one of
    ``out_width`` slots (or ``None`` on rejection).  Slots in
    ``[in_width, out_width)`` are this element's first occurrences;
    they read as unbound without touching the (shorter) incoming
    token.  The copy is lazy: a probe that binds nothing returns the
    incoming token object itself (padded only when the widths differ)
    — the join fast path allocates nothing.
    """
    from repro.lang.ast import _PREDICATES

    slots = index.slots
    var_items = tuple(
        (t.attribute, slots[t.variable], slots[t.variable] < in_width)
        for t in element.variable_tests()
    )
    pred_items = tuple(
        (
            t.attribute,
            _PREDICATES[t.op],
            slots[str(t.operand)],
            slots[str(t.operand)] < in_width,
            t,
        )
        for t in element.variable_predicates()
    )
    tail = (_MISSING,) * (out_width - in_width)

    if not var_items and not pred_items:
        if not tail:

            def beta_pass_slots(wme: WME, token: SlotToken) -> SlotToken:
                return token

            return beta_pass_slots

        def beta_pad_slots(
            wme: WME, token: SlotToken, *, _tail=tail
        ) -> SlotToken:
            return token + _tail

        return beta_pad_slots

    def beta_slots(
        wme: WME,
        token: SlotToken,
        *,
        _vars=var_items,
        _preds=pred_items,
        _missing=_MISSING,
        _tail=tail,
    ) -> "SlotToken | None":
        mapping = wme.mapping()
        extended = None
        for attribute, slot, in_token in _vars:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            if extended is not None:
                prior = extended[slot]
            elif in_token:
                prior = token[slot]
            else:
                prior = _missing
            if prior is _missing:
                if extended is None:
                    extended = list(token)
                    extended.extend(_tail)
                extended[slot] = value
            elif prior != value:
                return None
        for attribute, compare, slot, in_token, test in _preds:
            value = mapping.get(attribute, _missing)
            if value is _missing:
                return None
            if extended is not None:
                operand = extended[slot]
            elif in_token:
                operand = token[slot]
            else:
                operand = _missing
            if operand is _missing:
                raise ValidationError(
                    f"predicate {test} references unbound variable "
                    f"<{test.operand}>"
                )
            try:
                if not compare(value, operand):
                    return None
            except TypeError:
                return None
        if extended is None:
            return token + _tail if _tail else token
        return tuple(extended)

    return beta_slots


class SlottedStep:
    """One condition element compiled against a production's slots.

    ``beta``/``match`` take a token of ``in_width`` slots and return
    one of ``out_width`` (the widths are the production index's prefix
    widths at this LHS position).  ``full_match`` — negated elements
    only — is the same test compiled against *full-width* tokens, for
    TREAT's retraction re-match, which probes with complete
    instantiation bindings rather than written-order prefixes.
    """

    __slots__ = (
        "element",
        "relation",
        "negated",
        "alpha",
        "beta",
        "match",
        "full_match",
        "probe_items",
        "constant_equalities",
        "in_width",
        "out_width",
        "tail",
    )

    def __init__(
        self,
        element: "ConditionElement",
        index: VariableIndex,
        in_width: int,
        out_width: int,
    ) -> None:
        compiled = element.compiled()
        self.element = element
        self.relation = element.relation
        self.negated = element.negated
        self.alpha = compiled.alpha
        self.constant_equalities = compiled.constant_equalities
        self.in_width = in_width
        self.out_width = out_width
        self.tail = (_MISSING,) * (out_width - in_width)
        beta = compile_beta_slots(element, index, in_width, out_width)
        self.beta = beta
        alpha = compiled.alpha

        def match(
            wme: WME, token: SlotToken, *, _alpha=alpha, _beta=beta
        ) -> "SlotToken | None":
            if not _alpha(wme):
                return None
            return _beta(wme, token)

        self.match = match
        if element.negated:
            full_beta = compile_beta_slots(
                element, index, index.width, index.width
            )

            def full_match(
                wme: WME,
                token: SlotToken,
                *,
                _alpha=alpha,
                _beta=full_beta,
            ) -> "SlotToken | None":
                if not _alpha(wme):
                    return None
                return _beta(wme, token)

            self.full_match = full_match
        else:
            self.full_match = None
        #: ``(attribute, slot)`` pairs whose slot can be bound by an
        #: earlier element — the index-probe keys (the slotted
        #: counterpart of extending constant equalities with bound
        #: variable tests).
        slots = index.slots
        self.probe_items = tuple(
            (attribute, slots[variable])
            for attribute, variable in compiled.variable_items
            if slots[variable] < in_width
        )

    def probe_equalities(
        self, token: SlotToken
    ) -> list[tuple[str, Scalar]]:
        """Constant equalities plus bound-variable join equalities."""
        equalities = list(self.constant_equalities)
        missing = _MISSING
        for attribute, slot in self.probe_items:
            value = token[slot]
            if value is not missing:
                equalities.append((attribute, value))
        return equalities

    def carry(self, token: SlotToken) -> SlotToken:
        """Pass a token over this element unchanged, padded to
        ``out_width`` (negated elements contribute no bindings but
        still advance the prefix width)."""
        return token + self.tail if self.tail else token


class DictStep:
    """Dict-token twin of :class:`SlottedStep` (the PR-7 layout).

    Wraps the element's cached :class:`CompiledCondition` (or its
    interpreted oracle, inside :func:`interpreted_conditions`) behind
    the same step interface, so every matcher runs a single code path
    and the layouts stay A/B-swappable.
    """

    __slots__ = (
        "element",
        "relation",
        "negated",
        "alpha",
        "beta",
        "match",
        "full_match",
        "probe_items",
        "constant_equalities",
    )

    def __init__(self, element: "ConditionElement") -> None:
        compiled = element.compiled()
        self.element = element
        self.relation = element.relation
        self.negated = element.negated
        self.alpha = compiled.alpha
        self.beta = compiled.beta
        self.match = compiled.match
        # Dict tokens always carry the full bindings, so the
        # written-order and retraction probes are the same closure.
        self.full_match = compiled.match
        self.probe_items = compiled.variable_items
        self.constant_equalities = compiled.constant_equalities

    def probe_equalities(self, token) -> list[tuple[str, Scalar]]:
        equalities = list(self.constant_equalities)
        for attribute, variable in self.probe_items:
            if variable in token:
                equalities.append((attribute, token[variable]))
        return equalities

    def carry(self, token):
        return token


#: Lazily imported to keep ``repro.lang`` importable without pulling
#: the whole match package in (plans are only built by matchers).
_INSTANTIATION = None


def _instantiation_class():
    global _INSTANTIATION
    if _INSTANTIATION is None:
        from repro.match.instantiation import Instantiation

        _INSTANTIATION = Instantiation
    return _INSTANTIATION


class SlottedPlan:
    """A production's slotted match plan: index + per-element steps."""

    kind = "slotted"

    __slots__ = ("production", "index", "steps", "_instantiation")

    def __init__(self, production: "Production") -> None:
        self.production = production
        index = VariableIndex.for_production(production)
        self.index = index
        widths = index.prefix_widths
        self.steps = tuple(
            SlottedStep(element, index, widths[i], widths[i + 1])
            for i, element in enumerate(production.lhs)
        )
        self._instantiation = _instantiation_class()

    def empty_token(self) -> SlotToken:
        return ()

    def instantiate(self, wmes: tuple[WME, ...], token: SlotToken):
        """A conflict-set instantiation from a full-width token —
        ``bindings_items`` materializes lazily from the slot vector."""
        return self._instantiation.from_slots(
            self.production, wmes, token, self.index
        )

    def token_of(self, instantiation) -> SlotToken:
        """The instantiation's full bindings as a full-width token."""
        return instantiation.slot_token(self.index)


class DictPlan:
    """Dict-token twin of :class:`SlottedPlan`."""

    kind = "dict"

    __slots__ = ("production", "index", "steps", "_instantiation")

    def __init__(self, production: "Production") -> None:
        self.production = production
        self.index = None
        self.steps = tuple(DictStep(element) for element in production.lhs)
        self._instantiation = _instantiation_class()

    def empty_token(self) -> dict[str, Scalar]:
        return {}

    def instantiate(self, wmes: tuple[WME, ...], token):
        return self._instantiation.build(self.production, wmes, token)

    def token_of(self, instantiation):
        return instantiation.bindings


TokenPlan = SlottedPlan | DictPlan


def build_token_plan(production: "Production") -> TokenPlan:
    """The production's token plan for the active mode, cached per
    production and layout kind (see :meth:`Production.token_plan`)."""
    return production.token_plan(plan_kind())


# ---------------------------------------------------------------------------
# The seed's interpreted walks (equivalence oracle + benchmark baseline)
# ---------------------------------------------------------------------------


def interpreted_alpha(element: "ConditionElement") -> AlphaEvaluator:
    """The seed's per-probe interpreted alpha walk, verbatim.

    Re-filters the test list on every probe and scans the WME's
    attribute tuple per test — deliberately, so the hot-path benchmark
    measures the compiled closures against the true seed baseline.
    """
    from repro.lang.ast import ConstantTest, PredicateTest, _compare

    def alpha(wme: WME, *, _element=element) -> bool:
        if wme.relation != _element.relation:
            return False
        for test in tuple(
            t for t in _element.tests if isinstance(t, ConstantTest)
        ):
            if test.attribute not in wme or wme[test.attribute] != test.value:
                return False
        for pred in tuple(
            t
            for t in _element.tests
            if isinstance(t, PredicateTest) and not t.operand_is_variable
        ):
            if pred.attribute not in wme:
                return False
            if not _compare(pred.op, wme[pred.attribute], pred.operand):
                return False
        return True

    return alpha


def interpreted_beta(element: "ConditionElement") -> BetaEvaluator:
    """The seed's per-probe interpreted beta walk, verbatim."""
    from repro.lang.ast import PredicateTest, VariableTest, _compare

    def beta(wme: WME, bindings, *, _element=element):
        extended = dict(bindings)
        for test in tuple(
            t for t in _element.tests if isinstance(t, VariableTest)
        ):
            if test.attribute not in wme:
                return None
            value = wme[test.attribute]
            if test.variable in extended:
                if extended[test.variable] != value:
                    return None
            else:
                extended[test.variable] = value
        for pred in tuple(
            t
            for t in _element.tests
            if isinstance(t, PredicateTest) and t.operand_is_variable
        ):
            if pred.attribute not in wme:
                return None
            operand = extended.get(str(pred.operand))
            if operand is None and str(pred.operand) not in extended:
                raise ValidationError(
                    f"predicate {pred} references unbound variable "
                    f"<{pred.operand}>"
                )
            if not _compare(pred.op, wme[pred.attribute], operand):
                return None
        return extended

    return beta
