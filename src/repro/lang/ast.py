"""Abstract syntax for the OPS5-style rule language.

The structures here are deliberately value-typed (frozen dataclasses):
productions are immutable programs, and the matchers hash and share
condition elements across rules (the Rete network's "sharing of common
subexpressions among LHS's of different productions", Section 2).

LHS side
--------
A :class:`ConditionElement` names a relation and carries per-attribute
*tests*:

* :class:`ConstantTest` — attribute compares against a literal,
* :class:`VariableTest` — attribute binds (or must equal) a variable,
* :class:`PredicateTest` — attribute compares (``<`` ``<=`` ``>`` ``>=``
  ``<>``) against a literal or a previously bound variable.

A condition element may be *negated*: it matches when **no** WME
satisfies it, OPS5's negation-as-absence.  Negative conditions are what
motivate relation-level lock escalation in Section 4.3.

RHS side
--------
Actions are :class:`MakeAction`, :class:`ModifyAction`,
:class:`RemoveAction` (the paper's create/modify/delete), plus
:class:`BindAction`, :class:`WriteAction` and :class:`HaltAction`.
Values on the RHS are :class:`ValueExpr` trees evaluated against the
instantiation's variable bindings.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.errors import ValidationError
from repro.wm.element import Scalar, WME

#: Variable bindings produced by matching an LHS.
Bindings = Mapping[str, Scalar]

_PREDICATES: dict[str, Callable[[Scalar, Scalar], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _compare(op: str, left: Scalar, right: Scalar) -> bool:
    """Apply predicate ``op``; ordering across unlike types is False."""
    try:
        return _PREDICATES[op](left, right)
    except TypeError:
        return False


def dsl_literal(value: Scalar) -> str:
    """Render a scalar in the DSL's literal syntax (parse round-trip).

    Strings are double-quoted with escapes; booleans/None use the
    keyword literals; numbers print bare.
    """
    if value is None:
        return "nil"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f'"{escaped}"'
    return repr(value)


# ---------------------------------------------------------------------------
# LHS tests
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConstantTest:
    """``^attr = literal`` — attribute must equal the constant."""

    attribute: str
    value: Scalar

    def __str__(self) -> str:
        return f"^{self.attribute} {dsl_literal(self.value)}"


@dataclass(frozen=True)
class VariableTest:
    """``^attr <x>`` — bind attribute to variable, or test equality.

    On first occurrence (reading an LHS left to right) the variable is
    *bound* to the attribute's value; on later occurrences the value
    must equal the existing binding (an implicit join test).
    """

    attribute: str
    variable: str

    def __str__(self) -> str:
        return f"^{self.attribute} <{self.variable}>"


@dataclass(frozen=True)
class PredicateTest:
    """``^attr <op> value-or-var`` — relational comparison.

    ``operand`` is a literal when ``operand_is_variable`` is false,
    otherwise the name of a variable that must already be bound by an
    earlier test (a beta-level join test).
    """

    attribute: str
    op: str
    operand: Scalar
    operand_is_variable: bool = False

    def __post_init__(self) -> None:
        if self.op not in _PREDICATES:
            raise ValidationError(
                f"unknown predicate {self.op!r}; "
                f"expected one of {sorted(_PREDICATES)}"
            )

    def __str__(self) -> str:
        rhs = (
            f"<{self.operand}>"
            if self.operand_is_variable
            else dsl_literal(self.operand)
        )
        return f"^{self.attribute} {self.op} {rhs}"


#: Any single-attribute test usable in a condition element.
Test = ConstantTest | VariableTest | PredicateTest


# ---------------------------------------------------------------------------
# Condition elements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConditionElement:
    """One pattern of an LHS: a relation name plus attribute tests.

    Parameters
    ----------
    relation:
        Relation (class) name the pattern selects from.
    tests:
        Per-attribute tests, applied conjunctively.
    negated:
        When true this is a negative condition: the LHS requires that
        *no* WME matches the pattern.
    """

    relation: str
    tests: tuple[Test, ...] = ()
    negated: bool = False

    # -- classification helpers used by the matchers ---------------------------
    #
    # The test-list partitions are immutable functions of ``tests``, but
    # they used to be re-filtered on every call — and ``alpha_matches``
    # called two of them per WME probe.  They are now computed once and
    # cached on the instance (``object.__setattr__`` sidesteps the
    # frozen-dataclass guard; non-field attributes do not participate in
    # dataclass equality or hashing).

    def _partition(self) -> tuple:
        constants = []
        constant_preds = []
        variables = []
        variable_preds = []
        for test in self.tests:
            if isinstance(test, ConstantTest):
                constants.append(test)
            elif isinstance(test, VariableTest):
                variables.append(test)
            elif test.operand_is_variable:
                variable_preds.append(test)
            else:
                constant_preds.append(test)
        parts = (
            tuple(constants),
            tuple(constant_preds),
            tuple(variables),
            tuple(variable_preds),
        )
        object.__setattr__(self, "_parts", parts)
        return parts

    def constant_tests(self) -> tuple[ConstantTest, ...]:
        """Tests resolvable without any variable context (alpha tests)."""
        try:
            return self._parts[0]
        except AttributeError:
            return self._partition()[0]

    def constant_predicates(self) -> tuple[PredicateTest, ...]:
        """Predicate tests against literals (also alpha-level)."""
        try:
            return self._parts[1]
        except AttributeError:
            return self._partition()[1]

    def variable_tests(self) -> tuple[VariableTest, ...]:
        """Variable bind/equality tests (beta-level joins)."""
        try:
            return self._parts[2]
        except AttributeError:
            return self._partition()[2]

    def variable_predicates(self) -> tuple[PredicateTest, ...]:
        """Predicate tests whose operand is a variable (beta-level)."""
        try:
            return self._parts[3]
        except AttributeError:
            return self._partition()[3]

    def variables(self) -> frozenset[str]:
        """All variable names mentioned by this condition element."""
        try:
            return self._variables
        except AttributeError:
            pass
        names = {t.variable for t in self.variable_tests()}
        names.update(str(t.operand) for t in self.variable_predicates())
        result = frozenset(names)
        object.__setattr__(self, "_variables", result)
        return result

    def alpha_key(self) -> tuple:
        """Hashable key identifying the alpha pattern for node sharing.

        Two condition elements with the same key can share one alpha
        node in the Rete network, regardless of which productions they
        belong to or whether they are negated.
        """
        try:
            return self._alpha_key
        except AttributeError:
            pass
        key = (
            self.relation,
            self.constant_tests(),
            self.constant_predicates(),
        )
        object.__setattr__(self, "_alpha_key", key)
        return key

    # -- evaluation --------------------------------------------------------------
    #
    # Evaluation delegates to the compiled closures (repro.lang.compile):
    # one alpha and one beta closure per element, built on first use and
    # cached.  The matchers bind the closures directly at their hot
    # sites; these methods remain the convenient (and equivalent) entry
    # points for everything else.

    def compiled(self):
        """The element's :class:`~repro.lang.compile.CompiledCondition`.

        Built lazily on first use and cached; honors
        :func:`repro.lang.compile.interpreted_conditions` at build time.
        """
        try:
            return self._compiled
        except AttributeError:
            pass
        from repro.lang.compile import build_evaluators

        compiled = build_evaluators(self)
        object.__setattr__(self, "_compiled", compiled)
        return compiled

    def alpha_matches(self, wme: WME) -> bool:
        """True when ``wme`` passes the relation and constant tests."""
        return self.compiled().alpha(wme)

    def beta_matches(
        self, wme: WME, bindings: Bindings
    ) -> dict[str, Scalar] | None:
        """Join ``wme`` against existing ``bindings``.

        Returns the *extended* bindings dict when all variable tests
        succeed, or ``None`` on failure.  ``alpha_matches`` is assumed
        to have been checked already.
        """
        return self.compiled().beta(wme, bindings)

    def matches(
        self, wme: WME, bindings: Bindings | None = None
    ) -> dict[str, Scalar] | None:
        """Full single-WME match: alpha tests then beta join.

        Convenience for the naive matcher and for tests.
        """
        return self.compiled().match(wme, bindings)

    def __reduce__(self):
        # Cached partitions/closures are derived state; pickle only the
        # defining fields so closures never hit the wire.
        return (ConditionElement, (self.relation, self.tests, self.negated))

    def __str__(self) -> str:
        inner = " ".join(str(t) for t in self.tests)
        body = f"({self.relation}{' ' + inner if inner else ''})"
        return f"-{body}" if self.negated else body


# ---------------------------------------------------------------------------
# RHS value expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Constant:
    """A literal value."""

    value: Scalar

    def evaluate(self, bindings: Bindings) -> Scalar:
        return self.value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return dsl_literal(self.value)


@dataclass(frozen=True)
class VariableRef:
    """A reference to an LHS-bound variable."""

    name: str

    def evaluate(self, bindings: Bindings) -> Scalar:
        if self.name not in bindings:
            raise ValidationError(f"unbound variable <{self.name}>")
        return bindings[self.name]

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return f"<{self.name}>"


_ARITHMETIC: dict[str, Callable[[Scalar, Scalar], Scalar]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
    "%": operator.mod,
}


@dataclass(frozen=True)
class BinaryExpr:
    """Arithmetic over two sub-expressions (``compute`` in OPS5)."""

    op: str
    left: "ValueExpr"
    right: "ValueExpr"

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise ValidationError(
                f"unknown arithmetic operator {self.op!r}; "
                f"expected one of {sorted(_ARITHMETIC)}"
            )

    def evaluate(self, bindings: Bindings) -> Scalar:
        left = self.left.evaluate(bindings)
        right = self.right.evaluate(bindings)
        try:
            return _ARITHMETIC[self.op](left, right)
        except (TypeError, ZeroDivisionError) as exc:
            raise ValidationError(
                f"cannot evaluate ({left!r} {self.op} {right!r}): {exc}"
            ) from exc

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


ValueExpr = Constant | VariableRef | BinaryExpr


def as_expr(value: "ValueExpr | Scalar") -> ValueExpr:
    """Coerce a raw scalar into a :class:`Constant` expression."""
    if isinstance(value, (Constant, VariableRef, BinaryExpr)):
        return value
    return Constant(value)


# ---------------------------------------------------------------------------
# RHS actions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MakeAction:
    """``(make relation ^attr expr ...)`` — the paper's *create*."""

    relation: str
    values: tuple[tuple[str, ValueExpr], ...]

    @staticmethod
    def build(
        relation: str, values: Mapping[str, "ValueExpr | Scalar"]
    ) -> "MakeAction":
        return MakeAction(
            relation,
            tuple((k, as_expr(v)) for k, v in sorted(values.items())),
        )

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for _, expr in self.values:
            out |= expr.variables()
        return out

    def __str__(self) -> str:
        inner = " ".join(f"^{k} {v}" for k, v in self.values)
        return f"(make {self.relation} {inner})"


@dataclass(frozen=True)
class ModifyAction:
    """``(modify <ce-index> ^attr expr ...)`` — the paper's *modify*.

    ``ce_index`` is the 1-based index of the (positive) condition
    element whose matched WME is modified, OPS5's element designator.
    """

    ce_index: int
    values: tuple[tuple[str, ValueExpr], ...]

    @staticmethod
    def build(
        ce_index: int, values: Mapping[str, "ValueExpr | Scalar"]
    ) -> "ModifyAction":
        return ModifyAction(
            ce_index,
            tuple((k, as_expr(v)) for k, v in sorted(values.items())),
        )

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for _, expr in self.values:
            out |= expr.variables()
        return out

    def __str__(self) -> str:
        inner = " ".join(f"^{k} {v}" for k, v in self.values)
        return f"(modify {self.ce_index} {inner})"


@dataclass(frozen=True)
class RemoveAction:
    """``(remove <ce-index>)`` — the paper's *delete*."""

    ce_index: int

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return f"(remove {self.ce_index})"


@dataclass(frozen=True)
class BindAction:
    """``(bind <x> expr)`` — bind an RHS-local variable."""

    variable: str
    expr: ValueExpr

    def variables(self) -> frozenset[str]:
        return self.expr.variables()

    def __str__(self) -> str:
        return f"(bind <{self.variable}> {self.expr})"


@dataclass(frozen=True)
class WriteAction:
    """``(write expr ...)`` — emit values to the engine's output sink."""

    exprs: tuple[ValueExpr, ...]

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for expr in self.exprs:
            out |= expr.variables()
        return out

    def __str__(self) -> str:
        return f"(write {' '.join(str(e) for e in self.exprs)})"


@dataclass(frozen=True)
class HaltAction:
    """``(halt)`` — request termination of the recognize-act cycle."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "(halt)"


Action = (
    MakeAction | ModifyAction | RemoveAction | BindAction | WriteAction | HaltAction
)


def iter_actions(actions: Sequence[Action]) -> Iterator[Action]:
    """Iterate actions; exists to give the type alias a public consumer."""
    return iter(actions)
