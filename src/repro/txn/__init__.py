"""Transaction substrate.

Section 4.2: "Executing the productions in parallel is similar to
concurrent execution of transactions in a DBMS environment."  This
package models one production firing as a transaction — with a read
set, a write set, an operation history and a commit/abort outcome — and
provides the classical conflict-serializability checker (precedence
graph, [PAPA86]) that the correctness tests apply to every history the
lock schemes produce.
"""

from repro.txn.transaction import Transaction, TxnState
from repro.txn.schedule import History, Operation
from repro.txn.serializability import (
    conflicts,
    is_conflict_serializable,
    precedence_graph,
    serialization_orders,
)

__all__ = [
    "Transaction",
    "TxnState",
    "Operation",
    "History",
    "conflicts",
    "precedence_graph",
    "is_conflict_serializable",
    "serialization_orders",
]
