"""Histories: interleaved sequences of transactional operations.

A :class:`History` is the standard concurrency-control object of study
([PAPA86], which the paper cites for serializability): a sequence of
read/write/commit/abort operations tagged with their transaction.  The
lock managers append to a shared history as they grant operations; the
serializability checker consumes it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.txn.transaction import DataObject

#: Operation kinds.
READ = "r"
WRITE = "w"
COMMIT = "c"
ABORT = "a"

_KINDS = (READ, WRITE, COMMIT, ABORT)


@dataclass(frozen=True)
class Operation:
    """One step of a history.

    ``obj`` is ``None`` for commit/abort operations.
    """

    txn_id: str
    kind: str
    obj: DataObject | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown operation kind {self.kind!r}; expected {_KINDS}"
            )
        if self.kind in (READ, WRITE) and self.obj is None:
            raise ValueError(f"{self.kind!r} operation requires an object")

    def __str__(self) -> str:
        if self.kind in (COMMIT, ABORT):
            return f"{self.kind}[{self.txn_id}]"
        return f"{self.kind}[{self.txn_id},{self.obj!r}]"


class History:
    """An append-only, thread-safe operation sequence."""

    def __init__(self, operations: Iterable[Operation] = ()) -> None:
        self._operations: list[Operation] = list(operations)
        self._mutex = threading.Lock()

    # -- recording -------------------------------------------------------------------

    def append(self, operation: Operation) -> None:
        with self._mutex:
            self._operations.append(operation)

    def read(self, txn_id: str, obj: DataObject) -> None:
        """Record a read."""
        self.append(Operation(txn_id, READ, obj))

    def write(self, txn_id: str, obj: DataObject) -> None:
        """Record a write."""
        self.append(Operation(txn_id, WRITE, obj))

    def commit(self, txn_id: str) -> None:
        """Record a commit."""
        self.append(Operation(txn_id, COMMIT))

    def abort(self, txn_id: str) -> None:
        """Record an abort."""
        self.append(Operation(txn_id, ABORT))

    # -- views -------------------------------------------------------------------------

    def operations(self) -> tuple[Operation, ...]:
        with self._mutex:
            return tuple(self._operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations())

    def __len__(self) -> int:
        with self._mutex:
            return len(self._operations)

    def transactions(self) -> tuple[str, ...]:
        """Transaction ids in order of first appearance."""
        seen: dict[str, None] = {}
        for op in self.operations():
            seen.setdefault(op.txn_id, None)
        return tuple(seen)

    def committed(self) -> frozenset[str]:
        """Ids of transactions with a commit operation."""
        return frozenset(
            op.txn_id for op in self.operations() if op.kind == COMMIT
        )

    def aborted(self) -> frozenset[str]:
        """Ids of transactions with an abort operation."""
        return frozenset(
            op.txn_id for op in self.operations() if op.kind == ABORT
        )

    def committed_projection(self) -> "History":
        """The history restricted to committed transactions.

        Serializability is judged on the committed projection: aborted
        transactions' effects were rolled back, so they are outside the
        equivalence claim (exactly how Section 4.3 treats Rc aborts).
        """
        committed = self.committed()
        return History(
            op for op in self.operations() if op.txn_id in committed
        )

    def commit_order(self) -> tuple[str, ...]:
        """Transaction ids in commit order.

        This is the paper's "commit sequence ...p_i p_j p_k...": the
        string the semantic-consistency condition constrains.
        """
        return tuple(
            op.txn_id for op in self.operations() if op.kind == COMMIT
        )

    def __str__(self) -> str:
        return " ".join(str(op) for op in self.operations())
