"""Conflict-serializability over histories ([PAPA86]).

Two operations *conflict* when they belong to different transactions,
touch the same data object, and at least one is a write — the exact
criterion the paper reuses for interference (footnote 4: the
interference criteria "are identical to detecting conflicting database
operations [PAPA 86]").

A history is conflict-serializable iff its precedence graph is acyclic;
:func:`serialization_orders` enumerates the equivalent serial orders
(topological sorts), which the semantic-consistency tests intersect
with ``ES_single``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.txn.schedule import COMMIT, History, Operation, READ, WRITE


def conflicts(first: Operation, second: Operation) -> bool:
    """True when the two operations conflict (same object, ≥1 write)."""
    if first.txn_id == second.txn_id:
        return False
    if first.kind not in (READ, WRITE) or second.kind not in (READ, WRITE):
        return False
    if first.obj != second.obj:
        return False
    return first.kind == WRITE or second.kind == WRITE


def precedence_graph(
    history: History, committed_only: bool = True
) -> dict[str, set[str]]:
    """Build the precedence (serialization) graph of ``history``.

    Edge ``a -> b`` when some operation of ``a`` conflicts with and
    precedes some operation of ``b``.  By default only committed
    transactions participate (the committed projection).
    """
    source = history.committed_projection() if committed_only else history
    ops = source.operations()
    graph: dict[str, set[str]] = defaultdict(set)
    for txn_id in source.transactions():
        graph.setdefault(txn_id, set())
    for i, earlier in enumerate(ops):
        for later in ops[i + 1:]:
            if conflicts(earlier, later):
                graph[earlier.txn_id].add(later.txn_id)
    return dict(graph)


def _find_cycle(graph: dict[str, set[str]]) -> tuple[str, ...] | None:
    """Return one cycle as a node tuple, or ``None`` when acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack: list[str] = []

    def visit(node: str) -> tuple[str, ...] | None:
        color[node] = GRAY
        stack.append(node)
        for successor in sorted(graph.get(node, ())):
            if color.get(successor, WHITE) == GRAY:
                start = stack.index(successor)
                return tuple(stack[start:] + [successor])
            if color.get(successor, WHITE) == WHITE:
                found = visit(successor)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(graph):
        if color[node] == WHITE:
            found = visit(node)
            if found is not None:
                return found
    return None


def is_conflict_serializable(
    history: History, committed_only: bool = True
) -> bool:
    """True when the (committed projection of the) history is
    conflict-serializable."""
    return _find_cycle(precedence_graph(history, committed_only)) is None


def find_cycle(
    history: History, committed_only: bool = True
) -> tuple[str, ...] | None:
    """The first precedence-graph cycle found, or ``None``."""
    return _find_cycle(precedence_graph(history, committed_only))


def serialization_orders(
    history: History, limit: int = 1000
) -> list[tuple[str, ...]]:
    """Enumerate serial orders conflict-equivalent to ``history``.

    Returns all topological sorts of the precedence graph of the
    committed projection, up to ``limit`` (guarding against the n!
    blow-up of a conflict-free history).  Empty when the history is not
    serializable.
    """
    graph = precedence_graph(history, committed_only=True)
    if _find_cycle(graph) is not None:
        return []
    indegree: dict[str, int] = {node: 0 for node in graph}
    for successors in graph.values():
        for successor in successors:
            indegree[successor] += 1
    orders: list[tuple[str, ...]] = []

    def backtrack(prefix: list[str]) -> None:
        if len(orders) >= limit:
            return
        if len(prefix) == len(graph):
            orders.append(tuple(prefix))
            return
        for node in sorted(graph):
            if node in prefix or indegree[node] != 0:
                continue
            for successor in graph[node]:
                indegree[successor] -= 1
            prefix.append(node)
            backtrack(prefix)
            prefix.pop()
            for successor in graph[node]:
                indegree[successor] += 1

    backtrack([])
    return orders


def equivalent_to_commit_order(history: History) -> bool:
    """True when the commit order itself is an equivalent serial order.

    Strict two-phase disciplines (all locks held to commit, as in both
    of the paper's schemes — Figures 4.1 and 4.2) guarantee this
    stronger property: the commit sequence *is* a serialization order,
    which is what lets Theorem 2 map commit sequences onto execution-
    graph paths directly.
    """
    graph = precedence_graph(history, committed_only=True)
    order = history.commit_order()
    position = {txn: i for i, txn in enumerate(order)}
    for node, successors in graph.items():
        for successor in successors:
            if node not in position or successor not in position:
                continue
            if position[node] > position[successor]:
                return False
    return True
