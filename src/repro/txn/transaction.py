"""Transactions: a production firing's unit of atomicity.

A :class:`Transaction` tracks the data objects read and written, the
locks held (as opaque tags owned by the lock manager), and its state.
The Rc/Ra/Wa scheme needs transactions to support *abort with rollback*
(a committing ``Wa`` holder forces conflicting ``Rc`` holders to
abort), which the engine implements by pairing each transaction with a
:class:`~repro.wm.undo.UndoLog`.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import TransactionError

#: A lockable data object (see :func:`repro.wm.element.data_object_key`).
DataObject = Hashable

_txn_counter = itertools.count(1)


class TxnState(enum.Enum):
    """Lifecycle of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class Transaction:
    """One production firing as a transaction.

    Parameters
    ----------
    txn_id:
        Unique identifier; auto-assigned when omitted.
    rule_name:
        The production being fired, for diagnostics and the semantic-
        consistency checker.
    """

    txn_id: str = ""
    rule_name: str = ""
    state: TxnState = TxnState.ACTIVE
    read_set: set[DataObject] = field(default_factory=set)
    write_set: set[DataObject] = field(default_factory=set)
    #: Monotonic start order; used by deadlock victim policies.
    start_order: int = 0
    abort_reason: str = ""

    def __post_init__(self) -> None:
        number = next(_txn_counter)
        if not self.txn_id:
            self.txn_id = f"t{number}"
        if not self.start_order:
            self.start_order = number
        self._mutex = threading.Lock()
        # Transactions key every grant map and held-object index; the
        # id never changes after init, so hash once instead of
        # rehashing the string on each table operation.
        self._hash = hash(self.txn_id)

    # -- access tracking --------------------------------------------------------

    def record_read(self, obj: DataObject) -> None:
        """Record that ``obj`` was read."""
        self._require_active()
        self.read_set.add(obj)

    def record_write(self, obj: DataObject) -> None:
        """Record that ``obj`` was written."""
        self._require_active()
        self.write_set.add(obj)

    def footprint(self) -> frozenset[DataObject]:
        """All objects touched, read or write."""
        return frozenset(self.read_set | self.write_set)

    # -- lifecycle ------------------------------------------------------------------

    def commit(self) -> None:
        """Transition to COMMITTED; idempotent, illegal after abort."""
        with self._mutex:
            if self.state is TxnState.ABORTED:
                raise TransactionError(
                    f"{self.txn_id}: cannot commit an aborted transaction"
                )
            self.state = TxnState.COMMITTED

    def abort(self, reason: str = "") -> None:
        """Transition to ABORTED; idempotent, illegal after commit."""
        with self._mutex:
            if self.state is TxnState.COMMITTED:
                raise TransactionError(
                    f"{self.txn_id}: cannot abort a committed transaction"
                )
            self.state = TxnState.ABORTED
            if reason and not self.abort_reason:
                self.abort_reason = reason

    def try_abort(self, reason: str = "") -> bool:
        """Abort unless already committed; returns whether it aborted.

        This is the lock manager's entry point for rule (ii) of
        Section 4.3: the race between a committing Wa holder and the Rc
        holders it must kill is resolved under the transaction's mutex,
        so "commits first" is well-defined even in the threaded engine.
        """
        with self._mutex:
            if self.state is not TxnState.ACTIVE:
                return self.state is TxnState.ABORTED
            self.state = TxnState.ABORTED
            if reason:
                self.abort_reason = reason
            return True

    # -- predicates --------------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_committed(self) -> bool:
        return self.state is TxnState.COMMITTED

    @property
    def is_aborted(self) -> bool:
        return self.state is TxnState.ABORTED

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"{self.txn_id}: operation on {self.state.value} transaction"
            )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.txn_id == other.txn_id

    def __str__(self) -> str:
        rule = f"/{self.rule_name}" if self.rule_name else ""
        return f"{self.txn_id}{rule}({self.state.value})"
