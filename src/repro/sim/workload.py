"""Synthetic workload generators for the simulator and benchmarks.

The paper evaluates by worked example rather than by measurement, so
the parameter sweeps around its examples need workload families:

* :func:`random_add_delete_system` — random conflict-set dynamics with
  a controllable *degree of conflict* (Section 5.1's variable),
  guaranteed terminating (the add relation is a DAG).
* :func:`random_firing_batch` — synthetic firings (read/write sets over
  a shared object pool) for the lock-level scheme comparison, with
  controllable contention.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.addsets import AddDeleteSystem, Pid
from repro.sim.lock_sim import FiringSpec


def random_add_delete_system(
    n_productions: int,
    conflict_degree: float = 0.3,
    activation_degree: float = 0.3,
    initial_fraction: float = 0.6,
    time_range: tuple[float, float] = (1.0, 5.0),
    seed: int | None = None,
) -> AddDeleteSystem:
    """Generate a random, guaranteed-terminating add/delete system.

    Parameters
    ----------
    n_productions:
        Size of the production universe.
    conflict_degree:
        Probability that ``P_i`` deletes a given other production —
        the knob behind Figure 5.2's "degree of conflict".
    activation_degree:
        Probability that ``P_i`` adds a given *higher-numbered*
        production.  Restricting adds to higher indices makes the
        activation relation a DAG, so every execution terminates and
        the execution graph is finite.
    initial_fraction:
        Fraction of productions active initially.
    time_range:
        Uniform range for execution times ``T(P_i)``.
    seed:
        RNG seed for reproducibility.
    """
    if not 1 <= n_productions:
        raise ValueError("need at least one production")
    rng = random.Random(seed)
    pids = [f"P{i}" for i in range(1, n_productions + 1)]
    add_sets: dict[Pid, set[Pid]] = {}
    delete_sets: dict[Pid, set[Pid]] = {}
    for index, pid in enumerate(pids):
        later = pids[index + 1:]
        add_sets[pid] = {
            other for other in later if rng.random() < activation_degree
        }
        delete_sets[pid] = {
            other
            for other in pids
            if other != pid and rng.random() < conflict_degree
        }
    initial_count = max(1, round(initial_fraction * n_productions))
    initial = rng.sample(pids, initial_count)
    low, high = time_range
    times = {pid: rng.uniform(low, high) for pid in pids}
    return AddDeleteSystem.define(add_sets, delete_sets, initial, times)


def random_firing_batch(
    n_firings: int,
    n_objects: int = 20,
    reads_per_firing: int = 3,
    writes_per_firing: int = 1,
    action_read_fraction: float = 0.3,
    match_time_range: tuple[float, float] = (0.5, 1.5),
    act_time_range: tuple[float, float] = (2.0, 6.0),
    seed: int | None = None,
) -> list[FiringSpec]:
    """Generate a batch of synthetic firings over a shared object pool.

    Contention is controlled by ``n_objects``: fewer objects mean more
    read/write overlap, i.e. more Rc–Wa conflicts for the Rc scheme
    and more blocking for 2PL.  ``action_read_fraction`` of each
    condition read is also read by the action (and therefore needs a
    firm ``Ra`` lock, not just the permissive ``Rc``).  Action time
    dominating match time is the regime the paper targets ("the action
    part of a production can be long, which is the case for many
    database applications").
    """
    if n_objects < 1:
        raise ValueError("need at least one object")
    rng = random.Random(seed)
    objects = [f"obj{i}" for i in range(n_objects)]
    batch: list[FiringSpec] = []
    for index in range(1, n_firings + 1):
        reads = rng.sample(
            objects, min(reads_per_firing, n_objects)
        )
        writes = rng.sample(
            objects, min(writes_per_firing, n_objects)
        )
        action_reads = [
            obj for obj in reads if rng.random() < action_read_fraction
        ]
        batch.append(
            FiringSpec.build(
                pid=f"P{index}",
                reads=reads,
                writes=writes,
                action_reads=action_reads,
                match_time=rng.uniform(*match_time_range),
                act_time=rng.uniform(*act_time_range),
            )
        )
    return batch


def disjoint_firing_batch(
    n_firings: int,
    match_time: float = 1.0,
    act_time: float = 4.0,
) -> list[FiringSpec]:
    """A zero-contention batch: every firing touches private objects.

    Both schemes should reach the embarrassingly parallel makespan;
    used as the benchmarks' control group.
    """
    return [
        FiringSpec.build(
            pid=f"P{i}",
            reads=[f"r{i}"],
            writes=[f"w{i}"],
            match_time=match_time,
            act_time=act_time,
        )
        for i in range(1, n_firings + 1)
    ]


def reader_writer_chain(
    n_readers: int,
    match_time: float = 1.0,
    act_time: float = 8.0,
    writer_act_time: float = 2.0,
) -> list[FiringSpec]:
    """The paper's motivating pathology for 2PL (Section 4.3 intro).

    ``n_readers`` productions read a hot object ``q`` in their (long)
    conditions-plus-actions while one writer wants to update ``q``.
    Under 2PL the writer waits for every reader; under the Rc scheme it
    barges through and the readers abort.
    """
    firings = [
        FiringSpec.build(
            pid=f"R{i}",
            reads=["q"],
            writes=[f"private{i}"],
            match_time=match_time,
            act_time=act_time,
        )
        for i in range(1, n_readers + 1)
    ]
    firings.append(
        FiringSpec.build(
            pid="W",
            reads=["wsrc"],
            writes=["q"],
            match_time=match_time,
            act_time=writer_act_time,
        )
    )
    return firings
