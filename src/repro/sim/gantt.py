"""Execution traces and ASCII Gantt charts.

Figures 5.1-5.4 are processor-versus-time charts of production
executions (with aborted executions marked).  :class:`ExecutionTrace`
records the same information from a simulation and renders it as an
ASCII chart, which the benchmark harness prints next to the paper's
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Segment outcomes.
COMMITTED = "committed"
ABORTED = "aborted"
BLOCKED = "blocked"


@dataclass(frozen=True)
class TraceSegment:
    """One interval of work: ``task`` ran on ``processor`` over
    [start, end) and ended with ``outcome``."""

    processor: int
    task: str
    start: float
    end: float
    outcome: str = COMMITTED

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __str__(self) -> str:
        return (
            f"cpu{self.processor}: {self.task} "
            f"[{self.start:g},{self.end:g}) {self.outcome}"
        )


class ExecutionTrace:
    """An append-only list of trace segments with rendering helpers."""

    def __init__(self) -> None:
        self.segments: list[TraceSegment] = []

    def record(
        self,
        processor: int,
        task: str,
        start: float,
        end: float,
        outcome: str = COMMITTED,
    ) -> None:
        self.segments.append(
            TraceSegment(processor, task, start, end, outcome)
        )

    # -- aggregate views --------------------------------------------------------------

    def makespan(self) -> float:
        """Completion time of the last *committed* work."""
        committed = [s.end for s in self.segments if s.outcome == COMMITTED]
        return max(committed, default=0.0)

    def wasted_time(self) -> float:
        """Total time spent in segments that ended aborted.

        Example 5.1's "contribution from the partial executions of all
        productions that started executing but were aborted".
        """
        return sum(
            s.duration for s in self.segments if s.outcome == ABORTED
        )

    def busy_time(self) -> float:
        """Total processor-seconds of work (committed + wasted)."""
        return sum(s.duration for s in self.segments)

    def by_processor(self) -> dict[int, list[TraceSegment]]:
        out: dict[int, list[TraceSegment]] = {}
        for segment in sorted(self.segments, key=lambda s: s.start):
            out.setdefault(segment.processor, []).append(segment)
        return out

    def outcomes(self) -> dict[str, str]:
        """Final outcome per task (last segment wins)."""
        result: dict[str, str] = {}
        for segment in sorted(self.segments, key=lambda s: s.end):
            result[segment.task] = segment.outcome
        return result

    # -- rendering -----------------------------------------------------------------------

    def render(self, width: int = 60) -> str:
        """ASCII Gantt chart, one row per processor.

        Committed work renders as ``=``, aborted as ``x``, waiting as
        ``.``; each segment is labelled with its task at the start.
        """
        horizon = max((s.end for s in self.segments), default=0.0)
        if horizon <= 0:
            return "(empty trace)"
        scale = width / horizon
        lines: list[str] = [
            f"time: 0 {' ' * (width - 12)} {horizon:g}"
        ]
        fill = {COMMITTED: "=", ABORTED: "x", BLOCKED: "."}
        for processor, segments in sorted(self.by_processor().items()):
            row = [" "] * width
            for segment in segments:
                lo = int(segment.start * scale)
                hi = max(lo + 1, int(segment.end * scale))
                for i in range(lo, min(hi, width)):
                    row[i] = fill.get(segment.outcome, "?")
                label = segment.task[: max(0, hi - lo)]
                for offset, ch in enumerate(label):
                    if lo + offset < width:
                        row[lo + offset] = ch
            lines.append(f"cpu{processor} |{''.join(row)}|")
        lines.append("legend: name+'='*run committed, 'x' aborted")
        return "\n".join(lines)

    def __iter__(self) -> Iterable[TraceSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)
