"""Discrete-event multiprocessor substrate.

The paper's Section 5 numbers are scheduling arithmetic over production
execution times on ``Np`` processors; this package reproduces them with
a deterministic discrete-event simulation (simulated time, not
wall-clock — CPython's GIL makes real-thread speedups meaningless,
which is the reproduction substitution recorded in DESIGN.md).

* :mod:`~repro.sim.engine` — event queue and virtual clock.
* :mod:`~repro.sim.processor` — the ``Np``-processor pool.
* :mod:`~repro.sim.gantt` — execution traces and ASCII Gantt charts
  (the benchmarks print Figures 5.1-5.4 in this form).
* :mod:`~repro.sim.multithread` — single- and multiple-thread
  execution of an :class:`~repro.core.addsets.AddDeleteSystem`.
* :mod:`~repro.sim.lock_sim` — lock-level simulation comparing 2PL and
  the Rc scheme on synthetic firing workloads.
* :mod:`~repro.sim.workload` — synthetic workload generators.
* :mod:`~repro.sim.metrics` — speedup/utilization accounting.
"""

from repro.sim.engine import EventQueue, Simulator
from repro.sim.processor import ProcessorPool
from repro.sim.gantt import ExecutionTrace, TraceSegment
from repro.sim.multithread import (
    MultiThreadResult,
    simulate_multithread,
    simulate_single_thread,
)
from repro.sim.lock_sim import FiringSpec, LockSimResult, simulate_lock_scheme
from repro.sim.workload import (
    random_add_delete_system,
    random_firing_batch,
)
from repro.sim.metrics import speedup, utilization

__all__ = [
    "EventQueue",
    "Simulator",
    "ProcessorPool",
    "ExecutionTrace",
    "TraceSegment",
    "MultiThreadResult",
    "simulate_multithread",
    "simulate_single_thread",
    "FiringSpec",
    "LockSimResult",
    "simulate_lock_scheme",
    "random_add_delete_system",
    "random_firing_batch",
    "speedup",
    "utilization",
]
