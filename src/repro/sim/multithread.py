"""Single- vs multiple-thread execution of an add/delete-set system.

This is the executable form of Section 5's comparison:

* **single thread** — fire one production at a time; execution time of
  a sequence σ is ``T_single(σ) = Σ T(P_j)`` (Example 5.1).
* **multiple thread** — every active production is dispatched to a
  free processor; when one commits, its delete set *aborts* any victim
  still running (its partial work is wasted) and its add set activates
  new productions.  Makespan, the commit sequence and the wasted time
  come out of the trace.

Determinism: free processors are assigned to active productions in
sorted pid order, and simultaneous completions commit in (time, pid)
order — under which the simulator reproduces Figures 5.1-5.4 exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.addsets import AddDeleteSystem, Pid
from repro.errors import SimulationError
from repro.sim.gantt import ABORTED, COMMITTED, ExecutionTrace
from repro.sim.processor import ProcessorPool


@dataclass(frozen=True)
class MultiThreadResult:
    """Outcome of a multiple-thread simulation."""

    makespan: float
    commit_sequence: tuple[Pid, ...]
    aborted: tuple[Pid, ...]
    wasted_time: float
    processors: int
    trace: ExecutionTrace = field(compare=False, repr=False, default=None)

    @property
    def single_thread_time(self) -> float:
        """``T_single`` of the *corresponding* sequence — the commit
        sequence this run produced (Section 5 compares exactly that)."""
        return self._single_time

    _single_time: float = 0.0

    def speedup(self) -> float:
        """``T_single(σ) / T_multi(σ)`` for this run's σ."""
        if self.makespan <= 0:
            return 1.0
        return self._single_time / self.makespan


def simulate_single_thread(
    system: AddDeleteSystem, sequence: Sequence[Pid]
) -> float:
    """``T_single(σ)``; validates that σ is an allowable sequence."""
    if not system.is_valid_sequence(sequence):
        raise SimulationError(
            f"sequence {list(sequence)} is not in ES_single"
        )
    return system.sequence_time(sequence)


def simulate_multithread(
    system: AddDeleteSystem,
    processors: int,
    max_commits: int = 10_000,
) -> MultiThreadResult:
    """Run the multiple-thread mechanism on ``processors`` CPUs.

    Returns the makespan, commit sequence (always a member of
    ``ES_single`` — Theorem 2's conclusion, which the tests assert),
    the aborted productions, and the wasted (aborted) work time.
    """
    pool = ProcessorPool(processors)
    trace = ExecutionTrace()
    active: set[Pid] = set(system.initial)
    #: pid -> (processor, start_time, end_time) for running productions
    running: dict[Pid, tuple[int, float, float]] = {}
    commits: list[Pid] = []
    aborted: list[Pid] = []
    now = 0.0

    def dispatch() -> None:
        for pid in sorted(active - set(running)):
            if not pool.has_free():
                break
            processor = pool.acquire(pid)
            running[pid] = (processor, now, now + system.time(pid))

    dispatch()
    while running:
        if len(commits) > max_commits:
            raise SimulationError(
                f"exceeded {max_commits} commits; system may not terminate"
            )
        # Earliest completion commits; ties resolved by pid.
        winner = min(running, key=lambda p: (running[p][2], p))
        processor, start, end = running.pop(winner)
        now = end
        pool.release(processor)
        trace.record(processor, winner, start, end, COMMITTED)
        commits.append(winner)
        active = set(system.fire(frozenset(active), winner))
        # Deactivated victims still running are aborted mid-flight.
        for victim in sorted(set(running) - active):
            vproc, vstart, _ = running.pop(victim)
            pool.release(vproc)
            trace.record(vproc, victim, vstart, now, ABORTED)
            aborted.append(victim)
        dispatch()

    if active:
        # Processors free but nothing dispatched: impossible unless the
        # pool is broken; guard anyway.
        raise SimulationError(
            f"simulation stalled with active productions {sorted(active)}"
        )

    result = MultiThreadResult(
        makespan=now,
        commit_sequence=tuple(commits),
        aborted=tuple(aborted),
        wasted_time=trace.wasted_time(),
        processors=processors,
        trace=trace,
    )
    object.__setattr__(
        result, "_single_time", system.sequence_time(commits)
    )
    return result


def simulate_uniprocessor_multithread(
    system: AddDeleteSystem,
    abort_fraction: float = 0.5,
) -> tuple[float, tuple[Pid, ...]]:
    """Example 5.1's uniprocessor multiple-thread estimate.

    ``T_multi,uni(σ) = Σ T(P_j) + f · Σ_aborted T(P_k)`` where ``f``
    is "an averaged fraction" of each aborted production's execution
    completed before its abort.  The committed set and aborted set are
    taken from a 1-processor... no — from an ∞-processor run (every
    active production starts immediately, as the multiple-thread
    mechanism prescribes), then serialized onto one CPU.

    Returns ``(time, commit_sequence)``.
    """
    if not 0 <= abort_fraction < 1:
        raise SimulationError(
            f"abort fraction must be in [0, 1), got {abort_fraction}"
        )
    probe = simulate_multithread(
        system, processors=max(1, len(system.productions))
    )
    committed_work = sum(system.time(p) for p in probe.commit_sequence)
    wasted_work = abort_fraction * sum(
        system.time(p) for p in probe.aborted
    )
    return committed_work + wasted_work, probe.commit_sequence
