"""Lock-level simulation: 2PL vs the Rc/Ra/Wa scheme.

Section 4.3's motivation: under 2PL, "read locks acquired for
evaluating the LHS are held more conservatively than necessary while
other productions ready for execution must wait for their release."
This simulation makes that cost measurable.  A batch of *firings* —
each with a condition read set, an action write set, a match duration
and an action duration — executes on ``Np`` processors under either
scheme, using the **real lock managers** from :mod:`repro.locks`:

* under ``"2pl"`` a writer blocks until every condition reader of its
  target objects commits;
* under ``"rc"`` the writer proceeds immediately (Wa bypasses Rc) and,
  at its commit, conflicting Rc holders abort (rule (ii)) or are
  revalidated, wasting their partial match work.

The benchmark ``bench_scheme_comparison.py`` sweeps workloads through
both and reports makespans, blocked time and aborts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import repro.obs as obs_module
from repro.errors import SimulationError
from repro.locks.rc_scheme import RcScheme
from repro.locks.two_phase import ConservativeTwoPhaseScheme, TwoPhaseScheme
from repro.sim.gantt import ABORTED, COMMITTED, ExecutionTrace
from repro.sim.processor import ProcessorPool
from repro.txn.schedule import History
from repro.txn.transaction import Transaction

SchemeName = Literal["2pl", "rc", "c2pl"]


@dataclass(frozen=True)
class FiringSpec:
    """One production firing in the synthetic workload.

    ``reads`` are the objects the LHS examines (condition read set,
    locked ``Rc``/``R``); ``action_reads`` the objects the RHS *reads*
    (locked ``Ra``/``R`` at RHS start — the distinction matters: a
    condition-only read keeps its permissive ``Rc`` and can be bypassed
    by a writer, an action read cannot); ``writes`` the objects the RHS
    updates.  Durations are in virtual time units.
    """

    pid: str
    reads: frozenset
    writes: frozenset
    action_reads: frozenset = frozenset()
    match_time: float = 1.0
    act_time: float = 1.0

    @staticmethod
    def build(
        pid: str,
        reads: Sequence = (),
        writes: Sequence = (),
        action_reads: Sequence = (),
        match_time: float = 1.0,
        act_time: float = 1.0,
    ) -> "FiringSpec":
        return FiringSpec(
            pid,
            frozenset(reads),
            frozenset(writes),
            frozenset(action_reads),
            match_time,
            act_time,
        )


@dataclass
class LockSimResult:
    """Aggregate outcome of one lock-level simulation run."""

    scheme: str
    makespan: float
    committed: tuple[str, ...]
    aborted: tuple[str, ...]
    deadlock_aborts: int
    wasted_time: float
    blocked_time: float
    history: History
    trace: ExecutionTrace = field(repr=False, default=None)

    def throughput(self) -> float:
        """Committed firings per unit virtual time."""
        return len(self.committed) / self.makespan if self.makespan else 0.0


def _deadlock_victim(states, manager, discipline):
    """Find a waits-for cycle among stalled firings; return its
    youngest member (or ``None`` when acyclic)."""
    from repro.locks.modes import compatible

    blocked = [f for f in states.values() if f.phase == "wait_act"]
    edges: dict[str, set[str]] = {f.spec.pid: set() for f in blocked}
    by_pid = {f.spec.pid: f for f in blocked}
    for firing in blocked:
        needs = [
            (obj, discipline.action_read_mode)
            for obj in firing.spec.action_reads
        ] + [
            (obj, discipline.action_write_mode)
            for obj in firing.spec.writes
        ]
        for obj, mode in needs:
            for other in blocked:
                if other is firing:
                    continue
                held = manager.held_modes(other.txn, obj)
                if any(not compatible(mode, h) for h in held):
                    edges[firing.spec.pid].add(other.spec.pid)
    # Iterative DFS cycle search.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {pid: WHITE for pid in edges}
    for start in sorted(edges):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(edges[start])))]
        color[start] = GRAY
        path = [start]
        while stack:
            node, successors = stack[-1]
            advanced = False
            for succ in successors:
                if color.get(succ, WHITE) == GRAY:
                    cycle = path[path.index(succ):]
                    return max(
                        (by_pid[p] for p in cycle),
                        key=lambda f: f.txn.start_order,
                    )
                if color.get(succ, WHITE) == WHITE:
                    color[succ] = GRAY
                    path.append(succ)
                    stack.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                path.pop()
                color[node] = BLACK
    return None


class _Firing:
    """Mutable per-firing simulation state."""

    __slots__ = (
        "spec", "txn", "phase", "processor", "phase_start",
        "phase_end", "wait_since", "attempts",
    )

    def __init__(self, spec: FiringSpec, now: float) -> None:
        self.spec = spec
        self.txn = Transaction(rule_name=spec.pid)
        self.phase = "wait_match"
        self.processor: int | None = None
        self.phase_start = 0.0
        self.phase_end = 0.0
        self.wait_since = now
        self.attempts = 1

    def restart(self, now: float) -> None:
        """Re-enter as a parked firing: it re-matches only after the
        next commit event (the restart-after-conflicting-commit policy
        that keeps deadlock resolution from livelocking)."""
        self.txn = Transaction(rule_name=self.spec.pid)
        self.phase = "parked"
        self.processor = None
        self.wait_since = now
        self.attempts += 1


def simulate_lock_scheme(
    firings: Sequence[FiringSpec],
    processors: int,
    scheme: SchemeName = "2pl",
    restart_aborted: bool = False,
    max_steps: int = 200_000,
    observer=None,
) -> LockSimResult:
    """Execute ``firings`` under the chosen scheme on ``processors``.

    ``restart_aborted`` controls what happens to a production aborted
    by rule (ii): by default it is deactivated (its LHS was falsified —
    delete-set semantics); with ``True`` it re-matches and retries (the
    case where the update did *not* falsify it), which is the setting
    the revalidation ablation compares against.

    With a live observer the simulation emits virtual-time trace
    events (``sim.phase``/``sim.commit``/``sim.abort``/``sim.deadlock``)
    and blocked-time histograms alongside the lock manager's own
    events.
    """
    obs = observer if observer is not None else obs_module.get_observer()
    history = History()
    if scheme == "2pl":
        discipline: TwoPhaseScheme | RcScheme = TwoPhaseScheme(
            history=history, observer=obs
        )
    elif scheme == "c2pl":
        discipline = ConservativeTwoPhaseScheme(
            history=history, observer=obs
        )
    elif scheme == "rc":
        discipline = RcScheme(history=history, observer=obs)
    else:
        raise SimulationError(f"unknown scheme {scheme!r}")
    preclaims = getattr(discipline, "preclaims", False)

    pool = ProcessorPool(processors)
    trace = ExecutionTrace()
    states = {spec.pid: _Firing(spec, 0.0) for spec in firings}
    by_txn: dict[str, _Firing] = {}
    committed: list[str] = []
    aborted: list[str] = []
    deadlock_aborts = 0
    blocked_time = 0.0
    wasted_time = 0.0
    now = 0.0
    manager = discipline.manager

    def can_lock_condition(firing: _Firing) -> bool:
        if preclaims:
            # Conservative 2PL: the whole footprint must be free.
            read_ok = all(
                manager.can_grant(firing.txn, obj, discipline.condition_mode)
                for obj in sorted(
                    firing.spec.reads | firing.spec.action_reads, key=repr
                )
            )
            return read_ok and all(
                manager.can_grant(
                    firing.txn, obj, discipline.action_write_mode
                )
                for obj in sorted(firing.spec.writes, key=repr)
            )
        return all(
            manager.can_grant(firing.txn, obj, discipline.condition_mode)
            for obj in sorted(firing.spec.reads, key=repr)
        )

    def can_lock_action(firing: _Firing) -> bool:
        if preclaims:
            return True  # everything was acquired at match start
        for obj in sorted(firing.spec.action_reads, key=repr):
            if not manager.can_grant(
                firing.txn, obj, discipline.action_read_mode
            ):
                return False
        for obj in sorted(firing.spec.writes, key=repr):
            if not manager.can_grant(
                firing.txn, obj, discipline.action_write_mode
            ):
                return False
        return True

    def start_phase(firing: _Firing, phase: str, duration: float) -> None:
        nonlocal blocked_time
        firing.processor = pool.acquire(firing.spec.pid)
        blocked_time += now - firing.wait_since
        firing.phase = phase
        firing.phase_start = now
        firing.phase_end = now + duration
        if obs.enabled:
            obs.sim_observe("sim.blocked_vtime", now - firing.wait_since)
            obs.sim_event(
                now, "sim.phase", pid=firing.spec.pid, phase=phase,
                processor=firing.processor, until=firing.phase_end,
            )

    def dispatch() -> None:
        """Grant locks and processors to every waiter that can proceed.

        Lock-holding waiters (``wait_act``) are served before fresh
        matches: they are further along and giving them priority both
        mirrors a real scheduler and prevents an aborted-and-restarted
        reader from livelocking a writer it deadlocked with.
        """
        progressed = True
        while progressed:
            progressed = False
            for phase_wanted in ("wait_act", "wait_match"):
                for pid in sorted(states):
                    firing = states[pid]
                    if firing.phase != phase_wanted:
                        continue
                    if not pool.has_free():
                        return
                    if phase_wanted == "wait_act" and can_lock_action(
                        firing
                    ):
                        if not preclaims:
                            ok = discipline.try_lock_action(
                                firing.txn,
                                reads=firing.spec.action_reads,
                                writes=firing.spec.writes,
                            )
                            if not ok:  # pragma: no cover - guarded
                                raise SimulationError("action grant race")
                        start_phase(firing, "act", firing.spec.act_time)
                        progressed = True
                    elif phase_wanted == "wait_match" and can_lock_condition(
                        firing
                    ):
                        if preclaims:
                            ok = discipline.try_preclaim(
                                firing.txn,
                                reads=(
                                    firing.spec.reads
                                    | firing.spec.action_reads
                                ),
                                writes=firing.spec.writes,
                            )
                            if not ok:  # pragma: no cover - guarded
                                raise SimulationError("preclaim race")
                        else:
                            for obj in sorted(firing.spec.reads, key=repr):
                                if not discipline.try_lock_condition(
                                    firing.txn, obj
                                ):  # pragma: no cover
                                    raise SimulationError(
                                        "condition grant race"
                                    )
                        by_txn[firing.txn.txn_id] = firing
                        start_phase(firing, "match", firing.spec.match_time)
                        progressed = True

    def abort_firing(firing: _Firing, reason: str, *, restart: bool) -> None:
        """Abort a firing; all work done this attempt becomes waste."""
        nonlocal wasted_time
        if firing.processor is not None:
            pool.release(firing.processor)
            trace.record(
                firing.processor,
                firing.spec.pid,
                firing.phase_start,
                now,
                ABORTED,
            )
            wasted_time += now - firing.phase_start
            firing.processor = None
        if firing.phase in ("wait_act", "act"):
            # A completed match phase is also wasted on abort.
            wasted_time += firing.spec.match_time
        discipline.abort(firing.txn, reason)
        by_txn.pop(firing.txn.txn_id, None)
        if obs.enabled:
            obs.sim_event(
                now, "sim.abort", pid=firing.spec.pid, reason=reason,
                restart=restart,
            )
        if restart:
            firing.restart(now)
        else:
            firing.phase = "done"
            aborted.append(firing.spec.pid)

    dispatch()
    for _ in range(max_steps):
        running = [
            f for f in states.values() if f.phase in ("match", "act")
        ]
        waiting = [
            f
            for f in states.values()
            if f.phase in ("wait_match", "wait_act")
        ]
        parked = [f for f in states.values() if f.phase == "parked"]
        if not running and not waiting:
            if not parked:
                break
            # Only parked firings remain: wake them all (defensive —
            # normally a commit wakes them first).
            for firing in parked:
                firing.phase = "wait_match"
                firing.wait_since = now
            dispatch()
            continue
        if not running:
            # Stall: every waiter is lock-blocked — a deadlock.  Find a
            # waits-for cycle among the lock-holding waiters and abort
            # its youngest member, per Section 4.3's remark that
            # standard deadlock resolution applies unchanged.  (On a
            # true stall a cycle must exist: every blocked wait_act
            # firing waits on some lock-holding wait_act firing, and
            # the graph is finite.)
            victim = _deadlock_victim(states, manager, discipline)
            if obs.enabled and victim is not None:
                obs.sim_event(
                    now, "sim.deadlock", victim=victim.spec.pid
                )
            if victim is None:
                # Defensive: no cycle found — abort the youngest
                # lock-holder so the simulation cannot wedge.
                holders = [f for f in waiting if f.phase == "wait_act"]
                victim = max(
                    holders or waiting, key=lambda f: f.txn.start_order
                )
            deadlock_aborts += 1
            abort_firing(victim, "deadlock victim", restart=True)
            victim.wait_since = now
            dispatch()
            continue
        firing = min(
            running, key=lambda f: (f.phase_end, f.spec.pid)
        )
        now = firing.phase_end
        if firing.phase == "match":
            pool.release(firing.processor)
            trace.record(
                firing.processor,
                firing.spec.pid,
                firing.phase_start,
                now,
                COMMITTED,
            )
            firing.processor = None
            firing.phase = "wait_act"
            firing.wait_since = now
        else:  # act completes -> commit
            pool.release(firing.processor)
            trace.record(
                firing.processor,
                firing.spec.pid,
                firing.phase_start,
                now,
                COMMITTED,
            )
            firing.processor = None
            firing.phase = "done"
            outcome = discipline.commit(firing.txn)
            by_txn.pop(firing.txn.txn_id, None)
            committed.append(firing.spec.pid)
            if obs.enabled:
                obs.sim_event(
                    now, "sim.commit", pid=firing.spec.pid,
                    attempts=firing.attempts,
                )
            # A commit changes the database: parked victims re-match.
            for parked_firing in states.values():
                if parked_firing.phase == "parked":
                    parked_firing.phase = "wait_match"
                    parked_firing.wait_since = now
            for victim_txn in outcome.victims:
                victim = by_txn.get(victim_txn.txn_id)
                if victim is None:
                    continue
                abort_firing(
                    victim,
                    f"Rc-Wa conflict with {firing.spec.pid}",
                    restart=restart_aborted,
                )
        dispatch()
    else:
        raise SimulationError(f"exceeded {max_steps} simulation steps")

    return LockSimResult(
        scheme=scheme,
        makespan=now,
        committed=tuple(committed),
        aborted=tuple(aborted),
        deadlock_aborts=deadlock_aborts,
        wasted_time=wasted_time,
        blocked_time=blocked_time,
        history=history,
        trace=trace,
    )
