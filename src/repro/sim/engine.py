"""Event queue and virtual clock for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

import repro.obs as obs_module
from repro.errors import SimulationError

#: An event handler; receives the simulator so it can schedule more.
Handler = Callable[["Simulator"], None]


class EventQueue:
    """A stable priority queue of (time, insertion-order, handler).

    Events at equal times fire in insertion order, which — together
    with deterministic scheduling policies — makes every simulation in
    this package reproducible bit-for-bit.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Handler]] = []
        self._counter = itertools.count()

    def push(self, time: float, handler: Handler) -> None:
        heapq.heappush(self._heap, (time, next(self._counter), handler))

    def pop(self) -> tuple[float, Handler]:
        time, _, handler = heapq.heappop(self._heap)
        return time, handler

    def peek_time(self) -> float | None:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """Runs handlers in virtual-time order.

    Usage::

        sim = Simulator()
        sim.at(0.0, start_everything)
        sim.run()
        print(sim.now)
    """

    def __init__(
        self, max_events: int = 1_000_000, observer=None
    ) -> None:
        self.now = 0.0
        self.queue = EventQueue()
        self.max_events = max_events
        self.processed = 0
        #: Observability sink; handler dispatches are traced (with
        #: virtual timestamps) when a live observer is installed.
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )

    def at(self, time: float, handler: Handler) -> None:
        """Schedule ``handler`` at absolute virtual time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})"
            )
        self.queue.push(time, handler)

    def after(self, delay: float, handler: Handler) -> None:
        """Schedule ``handler`` ``delay`` units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.queue.push(self.now + delay, handler)

    def run(self, until: float | None = None) -> float:
        """Drain the queue (optionally stopping at virtual ``until``).

        Returns the final virtual time.  A ``max_events`` overrun
        raises — the guard against accidentally divergent simulations.
        """
        while self.queue:
            next_time = self.queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self.now = until
                return self.now
            time, handler = self.queue.pop()
            self.now = time
            if self.obs.enabled:
                self.obs.sim_event(
                    time,
                    "sim.handler",
                    fn=getattr(handler, "__qualname__", repr(handler)),
                    pending=len(self.queue),
                )
            handler(self)
            self.processed += 1
            if self.processed > self.max_events:
                raise SimulationError(
                    f"simulation exceeded {self.max_events} events"
                )
        return self.now
