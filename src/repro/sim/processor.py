"""The ``Np``-processor pool.

Section 5 varies the number of available processors (``Np``) and
observes the effect on speedup (Figure 5.4).  The pool hands the
lowest-numbered free processor to each request — the deterministic
policy under which the simulator reproduces the paper's schedules.
"""

from __future__ import annotations

from repro.errors import SimulationError


class ProcessorPool:
    """Tracks which of ``count`` processors is running which task."""

    def __init__(self, count: int) -> None:
        if count < 1:
            raise SimulationError(f"need at least one processor, got {count}")
        self.count = count
        self._running: dict[int, str] = {}

    # -- allocation ----------------------------------------------------------------

    def acquire(self, task: str) -> int:
        """Assign ``task`` to the lowest-numbered free processor.

        Raises when none is free; callers should check
        :meth:`has_free` first (the scheduler queues otherwise).
        """
        for processor in range(self.count):
            if processor not in self._running:
                self._running[processor] = task
                return processor
        raise SimulationError(f"no free processor for {task}")

    def release(self, processor: int) -> str:
        """Free ``processor``; returns the task it was running."""
        try:
            return self._running.pop(processor)
        except KeyError:
            raise SimulationError(
                f"processor {processor} was not busy"
            ) from None

    def release_task(self, task: str) -> int | None:
        """Free whichever processor runs ``task`` (abort path)."""
        for processor, running in self._running.items():
            if running == task:
                del self._running[processor]
                return processor
        return None

    # -- queries --------------------------------------------------------------------

    def has_free(self) -> bool:
        return len(self._running) < self.count

    def free_count(self) -> int:
        return self.count - len(self._running)

    def busy_count(self) -> int:
        return len(self._running)

    def running(self) -> dict[int, str]:
        """Snapshot of processor -> task."""
        return dict(self._running)

    def processor_of(self, task: str) -> int | None:
        for processor, running in self._running.items():
            if running == task:
                return processor
        return None
