"""Speedup and utilization accounting (Section 5's quantities)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import SimulationError


def speedup(single_thread_time: float, multi_thread_time: float) -> float:
    """``T_single / T_multi`` — "Speedup is the ratio of the execution
    times of the single thread mechanism to that of the multiple thread
    mechanism" (Section 5)."""
    if multi_thread_time <= 0:
        raise SimulationError(
            f"multi-thread time must be positive, got {multi_thread_time}"
        )
    return single_thread_time / multi_thread_time


def utilization(
    busy_time: float, makespan: float, processors: int
) -> float:
    """Fraction of processor-time spent doing (any) work."""
    capacity = makespan * processors
    if capacity <= 0:
        return 0.0
    return min(1.0, busy_time / capacity)


def efficiency(speedup_value: float, processors: int) -> float:
    """Speedup per processor — how much of linear scaling was achieved."""
    if processors < 1:
        raise SimulationError(f"need >= 1 processor, got {processors}")
    return speedup_value / processors


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep, as printed by the benchmarks."""

    parameter: float
    single_time: float
    multi_time: float

    @property
    def speedup(self) -> float:
        return speedup(self.single_time, self.multi_time)

    def row(self) -> str:
        return (
            f"{self.parameter:>10.3g} {self.single_time:>10.3g} "
            f"{self.multi_time:>10.3g} {self.speedup:>9.3f}"
        )


def sweep_table(
    title: str,
    parameter_name: str,
    points: Sequence[SweepPoint],
) -> str:
    """Render a sweep as the aligned table the benchmarks print."""
    header = (
        f"{parameter_name:>10} {'T_single':>10} {'T_multi':>10} "
        f"{'speedup':>9}"
    )
    lines = [title, header, "-" * len(header)]
    lines.extend(point.row() for point in points)
    return "\n".join(lines)


def monotone_fraction(values: Sequence[float], decreasing: bool = True) -> float:
    """Fraction of adjacent pairs ordered the expected way.

    The paper's shape claims ("speedup decreases with conflict") are
    statistical over random workloads; benchmarks report this fraction
    rather than asserting strict monotonicity.
    """
    if len(values) < 2:
        return 1.0
    good = 0
    for left, right in zip(values, values[1:]):
        if (right <= left + 1e-12) if decreasing else (right >= left - 1e-12):
            good += 1
    return good / (len(values) - 1)
