"""The single-execution-thread interpreter (Section 2).

"The production system interpreter executes a three phase production
system cycle repeatedly until a termination condition occurs": *match*
(delegated to an incremental matcher), *select* (a conflict-resolution
strategy over eligible instantiations) and *execute* (the RHS actions).
Termination: empty conflict set, a ``halt`` action, or the cycle cap.

Refraction (an instantiation never fires twice) is on by default, as in
OPS5 — without it any rule whose RHS leaves its own LHS true loops
forever.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Iterable

from repro.engine.actions import ActionExecutor
from repro.engine.result import FiringRecord, RunResult
from repro.errors import EngineError
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.match.naive import NaiveMatcher
from repro.match.rete.network import ReteMatcher
from repro.match.strategies import Strategy, make_strategy
from repro.match.cond import CondRelationMatcher
from repro.match.treat import TreatMatcher
from repro.wm.memory import WorkingMemory
from repro.wm.snapshot import WMSnapshot

#: A matcher name (``"naive"``/``"rete"``/``"treat"``/``"cond"``) or a
#: partitioned spec ``"partitioned[:inner[:shards[:backend]]]"``.
MatcherName = str

_MATCHERS: dict[str, type[BaseMatcher]] = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
}


def parse_matcher_spec(name: MatcherName) -> MatcherName:
    """Validate a matcher spec without building a matcher.

    Returns ``name`` unchanged when it is a known matcher name or a
    well-formed partitioned spec; raises :class:`EngineError` (or
    :class:`~repro.errors.MatchError`, for partitioned specs) naming
    the valid alternatives otherwise.  The CLI uses this as the
    ``--matcher`` argparse type so a typo like
    ``partitioned:rete:4:prcess`` fails at parse time with the
    valid-backend list instead of falling through to a default.
    """
    if name.startswith("partitioned"):
        from repro.match.partitioned import parse_partitioned_spec

        parse_partitioned_spec(name)
        return name
    if name not in _MATCHERS:
        raise EngineError(
            f"unknown matcher {name!r}; expected one of "
            f"{sorted(_MATCHERS) + ['partitioned[:inner[:K[:backend]]]']}"
        )
    return name


def build_matcher(
    name: MatcherName, memory: WorkingMemory, observer=None
) -> BaseMatcher:
    """Instantiate a matcher by name or partitioned spec.

    Plain names resolve via the registry; anything starting with
    ``"partitioned"`` is parsed as ``partitioned[:inner[:shards
    [:backend]]]`` (e.g. ``"partitioned:rete:4"``) and builds a
    :class:`~repro.match.partitioned.PartitionedMatcher`.  ``observer``
    is forwarded to matchers that are observability-instrumented
    (currently the partitioned one); engines pass their own observer
    so shard/batch telemetry lands in the same trace as wave spans.
    """
    if name.startswith("partitioned"):
        from repro.match.partitioned import (
            PartitionedMatcher,
            parse_partitioned_spec,
        )

        inner, shards, backend = parse_partitioned_spec(name)
        return PartitionedMatcher(
            memory,
            shards=shards,
            inner=inner,
            backend=backend,
            observer=observer,
        )
    try:
        cls = _MATCHERS[name]
    except KeyError:
        raise EngineError(
            f"unknown matcher {name!r}; expected one of "
            f"{sorted(_MATCHERS) + ['partitioned[:inner[:K[:backend]]]']}"
        ) from None
    return cls(memory)


class Interpreter:
    """The classic recognize-act loop.

    Parameters
    ----------
    productions:
        The rule program.
    memory:
        The working memory (a fresh one is created when omitted).
    matcher:
        ``"rete"`` (default), ``"treat"``, ``"naive"``, ``"cond"``, a
        partitioned spec (``"partitioned:rete:4"``) — or a pre-built
        matcher instance.
    strategy:
        Conflict-resolution strategy name (``"lex"`` default) or a
        :class:`~repro.match.strategies.Strategy` instance.
    refraction:
        Suppress refiring of already-fired instantiations (default on).
    """

    def __init__(
        self,
        productions: Iterable[Production],
        memory: WorkingMemory | None = None,
        matcher: MatcherName | BaseMatcher = "rete",
        strategy: str | Strategy = "lex",
        refraction: bool = True,
        seed: int | None = None,
    ) -> None:
        self.memory = memory if memory is not None else WorkingMemory()
        if isinstance(matcher, str):
            self.matcher = build_matcher(matcher, self.memory)
        else:
            self.matcher = matcher
        self.matcher.add_productions(productions)
        self.matcher.attach()
        if isinstance(strategy, str):
            self.strategy = make_strategy(strategy, seed)
        else:
            self.strategy = strategy
        self.refraction = refraction
        self.executor = ActionExecutor(self.memory)
        self.result = RunResult()

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Release matcher resources: the store subscription and any
        thread/process pools (the partitioned matcher's process
        backend keeps live worker processes until detached).
        Idempotent; the engine must not run again afterwards.
        """
        self.matcher.detach()

    def __enter__(self) -> "Interpreter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- phases ----------------------------------------------------------------------

    @property
    def conflict_set(self):
        return self.matcher.conflict_set

    def eligible(self) -> list[Instantiation]:
        """The *select* phase's candidates, after refraction."""
        if self.refraction:
            return self.conflict_set.eligible()
        return list(self.conflict_set)

    def select(self) -> Instantiation | None:
        """Pick the dominant instantiation, or None when quiescent."""
        candidates = self.eligible()
        if not candidates:
            return None
        return self.strategy.select(candidates)

    def fire(self, instantiation: Instantiation) -> bool:
        """Execute one instantiation; returns False when it halted.

        RHS execution runs inside ``matcher.batch()`` so a multi-action
        RHS publishes all its WM deltas through one match barrier
        (one partitioned flush per firing instead of one per action).
        Nothing consults the conflict set until the next ``select``.
        """
        self.conflict_set.mark_fired(instantiation)
        with getattr(self.matcher, "batch", nullcontext)():
            outcome = self.executor.execute(instantiation)
        self.result.firings.append(
            FiringRecord.from_instantiation(
                instantiation, self.result.cycles
            )
        )
        self.result.outputs.extend(outcome.outputs)
        if outcome.halted:
            self.result.halted = True
            return False
        return True

    def step(self) -> Instantiation | None:
        """One full cycle: select + execute.  None when quiescent."""
        chosen = self.select()
        if chosen is None:
            return None
        self.result.cycles += 1
        self.fire(chosen)
        return chosen

    # -- whole runs ---------------------------------------------------------------------

    def run(self, max_cycles: int = 10_000) -> RunResult:
        """Cycle until quiescence, ``halt`` or ``max_cycles``."""
        while self.result.cycles < max_cycles:
            chosen = self.select()
            if chosen is None:
                self.result.stop_reason = "quiescent"
                break
            self.result.cycles += 1
            if not self.fire(chosen):
                self.result.stop_reason = "halt"
                break
        else:
            self.result.stop_reason = "max_cycles"
        self.result.final_snapshot = WMSnapshot.capture(self.memory)
        return self.result
