"""The multiple-thread mechanism over a real working memory.

Executes *waves* of logically concurrent firings under either lock
scheme (Section 4.2's 2PL or Section 4.3's Rc/Ra/Wa):

1. The wave's candidates are the eligible instantiations (at most
   ``processors`` of them, Section 5's ``Np``).
2. Every candidate acquires condition locks (``R``/``Rc``) on the data
   objects its LHS examined — tuple-level for matched WMEs, relation
   level (SYSTEM-CATALOG tuple) for negated condition elements, per
   Section 4.3's escalation rule.
3. Candidates then execute their RHSs in conflict-resolution order,
   each acquiring its action locks at RHS start:

   * under **2PL**, a firing whose ``W`` locks conflict with another
     candidate's ``R`` locks *blocks* — it is deferred to a later wave
     (the conservatism Theorem 2 pays for);
   * under **Rc**, the ``Wa`` is granted over outstanding ``Rc`` locks;
     at commit, conflicting ``Rc`` holders are aborted (rule (ii)) and
     their partial work rolled back.

4. Aborted/deferred candidates release their locks at wave end; the
   next wave re-runs match over the updated database.

The engine records the commit sequence (the σ of Definition 3.2),
every lock operation (via :class:`~repro.txn.schedule.History`), and
per-wave statistics.  ``repro.engine.replay`` checks the commit
sequence against single-thread semantics — the operational form of
Theorem 2's conclusion.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Literal

import repro.obs as obs_module
from repro.engine.actions import ActionExecutor
from repro.engine.interpreter import MatcherName, build_matcher
from repro.engine.result import FiringRecord, RunResult
from repro.errors import EngineError, FiringCrashed
from repro.core.interference import (
    instantiation_read_objects,
    instantiation_write_objects,
)
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy, VirtualSleeper
from repro.lang.production import Production
from repro.locks.rc_scheme import RcScheme
from repro.locks.two_phase import ConservativeTwoPhaseScheme, TwoPhaseScheme
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.match.strategies import Strategy, make_strategy
from repro.txn.schedule import History
from repro.txn.transaction import Transaction
from repro.wm.memory import WorkingMemory
from repro.wm.snapshot import WMSnapshot
from repro.wm.undo import UndoLog

SchemeName = Literal["2pl", "rc", "c2pl"]


@dataclass
class WaveResult:
    """What one wave did."""

    wave: int
    committed: list[str] = field(default_factory=list)
    aborted: list[str] = field(default_factory=list)
    deferred: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        return (
            f"wave {self.wave}: committed={self.committed} "
            f"aborted={self.aborted} deferred={self.deferred}"
        )


class ParallelEngine:
    """Wave-parallel execution of a production program.

    Parameters
    ----------
    productions, memory, matcher, strategy:
        As for :class:`~repro.engine.interpreter.Interpreter`.
    scheme:
        ``"rc"`` (default — the paper's contribution), ``"2pl"``
        (Figure 4.1), or ``"c2pl"`` (conservative/preclaiming 2PL,
        the deadlock-avoidance variant).
    processors:
        Wave width limit (``Np``); ``None`` means unbounded.
    observer:
        Observability sink (wave spans, firing/rollback events, match
        latency), shared with the lock scheme and manager.  Defaults
        to the module-level observer from :mod:`repro.obs`.
    retry_policy:
        When given, deferred/aborted firings are re-driven across
        waves with a *bounded* budget: each failure charges one
        attempt (plus the policy's backoff, on a virtual clock), and a
        firing that exhausts its budget is dropped from candidacy for
        the rest of the run (recorded in :attr:`gave_up`) instead of
        being silently re-deferred forever.
    fault_injector:
        Optional :class:`~repro.fault.injector.FaultInjector`; its
        lock faults can deny condition/action locks (the firing
        defers), its RHS faults force aborts, and its crash faults
        kill a firing post-RHS (the undo log rolls it back and the
        wave continues) — the deterministic chaos harness.
    """

    def __init__(
        self,
        productions: Iterable[Production],
        memory: WorkingMemory | None = None,
        scheme: SchemeName = "rc",
        matcher: MatcherName | BaseMatcher = "rete",
        strategy: str | Strategy = "lex",
        processors: int | None = None,
        seed: int | None = None,
        observer=None,
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        lock_stripes: int = 1,
    ) -> None:
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.memory = memory if memory is not None else WorkingMemory()
        if isinstance(matcher, str):
            self.matcher = build_matcher(
                matcher, self.memory, observer=self.obs
            )
        else:
            self.matcher = matcher
        self.matcher.add_productions(productions)
        self.matcher.attach()
        if isinstance(strategy, str):
            self.strategy = make_strategy(strategy, seed)
        else:
            self.strategy = strategy
        self.history = History()
        if scheme == "rc":
            self.scheme: RcScheme | TwoPhaseScheme = RcScheme(
                history=self.history, observer=self.obs,
                stripes=lock_stripes,
            )
        elif scheme == "2pl":
            self.scheme = TwoPhaseScheme(
                history=self.history, observer=self.obs,
                stripes=lock_stripes,
            )
        elif scheme == "c2pl":
            self.scheme = ConservativeTwoPhaseScheme(
                history=self.history, observer=self.obs,
                stripes=lock_stripes,
            )
        else:
            raise EngineError(f"unknown scheme {scheme!r}")
        self._preclaims = getattr(self.scheme, "preclaims", False)
        self.processors = processors
        self.executor = ActionExecutor(self.memory)
        self.result = RunResult()
        self.waves: list[WaveResult] = []
        #: Rule-(ii) abort count across the run.
        self.abort_count = 0
        self.retry_policy = retry_policy
        self.fault = fault_injector
        #: Failed attempts per still-retryable instantiation.
        self._attempts: dict[Instantiation, int] = {}
        #: Instantiations whose retry budget is exhausted.
        self._gave_up: set[Instantiation] = set()
        #: Rule names that exhausted their retry budget, in order.
        self.gave_up: list[str] = []
        #: Re-drive attempts charged across the run.
        self.retry_count = 0
        #: Virtual clock accumulating retry backoff (seconds).
        self.retry_clock = VirtualSleeper()

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release matcher resources: the store subscription and any
        thread/process pools (the partitioned matcher's process
        backend keeps live worker processes until detached).
        Idempotent; the engine must not run again afterwards.
        """
        self.matcher.detach()

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- wave machinery -----------------------------------------------------------------

    def _eligible_candidates(self) -> list[Instantiation]:
        """Eligible instantiations minus those out of retry budget."""
        eligible = self.matcher.conflict_set.eligible()
        if not self._gave_up:
            return eligible
        return [c for c in eligible if c not in self._gave_up]

    def _note_failure(self, instantiation: Instantiation, reason: str) -> None:
        """Charge one retry attempt for a deferred/aborted firing.

        No-op without a retry policy (the pre-retry behavior: failed
        candidates simply stay eligible for later waves, forever).
        """
        if self.retry_policy is None:
            return
        attempts = self._attempts.get(instantiation, 0) + 1
        self._attempts[instantiation] = attempts
        rule = instantiation.production.name
        if self.retry_policy.should_retry(attempts):
            delay = self.retry_policy.backoff(attempts, key=rule)
            self.retry_clock(delay)
            self.retry_count += 1
            if self.obs.enabled:
                self.obs.retry_attempt(rule, attempts, delay, reason)
        else:
            self._gave_up.add(instantiation)
            self.gave_up.append(rule)
            if self.obs.enabled:
                self.obs.retry_exhausted(rule, attempts, reason)

    def _fault_denies_locks(
        self, txn: Transaction, objects, mode
    ) -> bool:
        """Run lock fault sites; True when any acquisition is denied."""
        if self.fault is None:
            return False
        return any(
            self.fault.lock_fault(txn, obj, str(mode)) == "deny"
            for obj in sorted(objects, key=repr)
        )

    def _ordered_candidates(self) -> list[Instantiation]:
        """Eligible instantiations in conflict-resolution order."""
        remaining = self._eligible_candidates()
        ordered: list[Instantiation] = []
        while remaining:
            chosen = self.strategy.select(remaining)
            ordered.append(chosen)
            remaining.remove(chosen)
        if self.processors is not None:
            ordered = ordered[: self.processors]
        return ordered

    def _span_fields(self, instantiation: Instantiation) -> dict:
        """Extra fields stamped on acquire/firing spans (overridable)."""
        return {}

    def run_wave(self, started_at: float | None = None) -> WaveResult:
        """Execute one wave; returns its summary.

        ``started_at`` backdates the cycle span to when the run loop
        began this iteration's eligibility pre-check, so that match
        work stays inside the cycle on the causal timeline.
        """
        wave = WaveResult(wave=len(self.waves) + 1)
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        if spans is not None and spans.scope_dropped():
            # The enclosing run's trace was sampled out: skip per-
            # candidate span construction for the whole wave.
            spans = None
        if started_at is not None:
            wave_start = started_at
        else:
            wave_start = obs.clock() if obs.enabled else 0.0
        cycle_span = None
        if spans is not None:
            cycle_span = spans.start(
                "cycle", parent=spans.current(), ts=wave_start,
                wave=wave.wave,
            )
            spans.push_scope(cycle_span)
        try:
            if spans is not None:
                with spans.span(
                    "phase.match", parent=cycle_span, scope=True
                ):
                    candidates = self._ordered_candidates()
            else:
                candidates = self._ordered_candidates()
            if obs.enabled:
                obs.match_latency(obs.clock() - wave_start)
                obs.wave_started(wave.wave, len(candidates))
            slots = self._acquire_phase(wave, candidates, spans, cycle_span)
            self._act_phase(wave, slots, spans, cycle_span)
            self.waves.append(wave)
            # Fire wave_finished (and with it the health evaluation)
            # while the cycle span is still open, so watchdog work is
            # charged to the cycle on the causal timeline.
            if obs.enabled:
                obs.wave_finished(
                    wave.wave,
                    committed=len(wave.committed),
                    aborted=len(wave.aborted),
                    deferred=len(wave.deferred),
                    duration=obs.clock() - wave_start,
                )
        finally:
            if spans is not None:
                spans.pop_scope(cycle_span)
                cycle_span.finish(
                    committed=len(wave.committed),
                    aborted=len(wave.aborted),
                    deferred=len(wave.deferred),
                )
        return wave

    def _acquire_phase(
        self, wave: WaveResult, candidates, spans, cycle_span
    ) -> list[tuple[Instantiation, Transaction]]:
        """Phase 1: condition locks for every candidate.

        Under the conservative (preclaiming) scheme the whole
        footprint — condition reads AND action writes — is taken
        atomically here.
        """
        slots: list[tuple[Instantiation, Transaction]] = []
        phase_span = (
            spans.start("phase.acquire", parent=cycle_span)
            if spans is not None else None
        )
        obs = self.obs
        for instantiation in candidates:
            txn = Transaction(rule_name=instantiation.production.name)
            acq = None
            acq_start = obs.clock() if obs.enabled else 0.0
            if spans is not None:
                acq = spans.start(
                    "acquire", parent=phase_span,
                    rule=instantiation.production.name, txn=txn.txn_id,
                    **self._span_fields(instantiation),
                )
                spans.bind(txn.txn_id, acq)
            reads = instantiation_read_objects(instantiation)
            denied_by_fault = self._fault_denies_locks(
                txn, reads, self.scheme.condition_mode
            )
            if denied_by_fault:
                granted = False
            elif self._preclaims:
                granted = self.scheme.try_preclaim(
                    txn,
                    reads=sorted(reads, key=repr),
                    writes=sorted(
                        instantiation_write_objects(instantiation),
                        key=repr,
                    ),
                )
            else:
                granted = all(
                    self.scheme.try_lock_condition(txn, obj)
                    for obj in sorted(reads, key=repr)
                )
            if granted:
                slots.append((instantiation, txn))
                if acq is not None:
                    # The binding stays on the acquire span until the
                    # firing span takes over in phase 2, so a
                    # rule-(ii) abort link from an earlier commit
                    # lands on the span holding the Rc locks.
                    acq.finish(granted=True)
            else:
                # Footprint unavailable: defer to a later wave.  An
                # injected denial keeps its own reason — it is a
                # fault, not wave-protocol breathing, so the health
                # monitor must count it as a failure.
                self.scheme.abort(
                    txn,
                    "injected lock denial" if denied_by_fault
                    else "condition lock denied",
                )
                wave.deferred.append(instantiation.production.name)
                self._note_failure(instantiation, "condition-lock-denied")
                if acq is not None:
                    acq.finish(granted=False)
                    spans.unbind(txn.txn_id)
            if obs.enabled:
                obs.acquire_finished(
                    instantiation.production.name, txn.txn_id,
                    obs.clock() - acq_start,
                )
        if phase_span is not None:
            phase_span.finish(
                candidates=len(candidates), granted=len(slots)
            )
        return slots

    def _act_phase(
        self, wave: WaveResult, slots, spans, cycle_span
    ) -> None:
        """Phase 2: RHS execution in conflict-resolution order."""
        phase_span = (
            spans.start("phase.act", parent=cycle_span)
            if spans is not None else None
        )
        obs = self.obs
        try:
            for instantiation, txn in slots:
                fire_start = obs.clock() if obs.enabled else 0.0
                firing = None
                if spans is not None:
                    firing = spans.start(
                        "firing", parent=phase_span,
                        rule=instantiation.production.name,
                        txn=txn.txn_id,
                        **self._span_fields(instantiation),
                    )
                    spans.bind(txn.txn_id, firing)
                try:
                    self._run_slot(wave, instantiation, txn)
                finally:
                    if firing is not None:
                        firing.finish()
                        spans.unbind(txn.txn_id)
                    if obs.enabled:
                        obs.firing_finished(
                            instantiation.production.name, txn.txn_id,
                            obs.clock() - fire_start,
                        )
        finally:
            if phase_span is not None:
                phase_span.finish(slots=len(slots))

    def _run_slot(
        self, wave: WaveResult, instantiation: Instantiation,
        txn: Transaction,
    ) -> None:
        """Drive one granted candidate through RHS + commit."""
        obs = self.obs
        if txn.is_aborted:
            # Rule (ii) victim of an earlier commit in this wave.
            self.scheme.abort(txn, "rule (ii) victim")
            wave.aborted.append(instantiation.production.name)
            self.abort_count += 1
            self._note_failure(instantiation, "rule-ii-victim")
            return
        if instantiation not in self.matcher.conflict_set:
            # The database changed under it and the matcher
            # retracted the instantiation: semantically a victim.
            # (Not retryable: there is nothing left to re-drive.)
            self.scheme.abort(txn, "instantiation invalidated")
            wave.aborted.append(instantiation.production.name)
            self.abort_count += 1
            return
        writes = instantiation_write_objects(instantiation)
        denied_by_fault = self._fault_denies_locks(
            txn, writes, self.scheme.action_write_mode
        )
        if denied_by_fault or (
            not self._preclaims
            and not self.scheme.try_lock_action(
                txn, writes=sorted(writes, key=repr)
            )
        ):
            # 2PL: blocked by another candidate's condition locks —
            # defer to a later wave.  (Under Rc only Ra/Wa block Wa,
            # and none are held across candidates here.)  Injected
            # denials keep a distinct reason so health counts them.
            self.scheme.abort(
                txn,
                "injected lock denial" if denied_by_fault
                else "action locks unavailable",
            )
            wave.deferred.append(instantiation.production.name)
            self._note_failure(instantiation, "action-lock-denied")
            return
        if self.fault is not None and self.fault.rhs_abort(txn):
            self.scheme.abort(txn, "injected RHS abort")
            wave.aborted.append(instantiation.production.name)
            self.abort_count += 1
            self._note_failure(instantiation, "injected-abort")
            return
        undo = UndoLog(self.memory).attach()
        try:
            self.matcher.conflict_set.mark_fired(instantiation)
            # Batch the RHS's WM deltas behind one match barrier; the
            # act phase is single-threaded, and the conflict set is
            # next consulted at the following slot's membership check
            # (after the batch has flushed).
            with getattr(self.matcher, "batch", nullcontext)():
                outcome = self.executor.execute(instantiation)
            if self.fault is not None:
                self.fault.crash_point(txn)
        except FiringCrashed:
            # The firing died after its RHS but before commit: roll
            # back, clear the fired mark (the restored WMEs revive
            # the same instantiation identity), and survive — the
            # wave goes on and the retry budget governs re-driving.
            undo.detach()
            undone = undo.rollback()
            self.matcher.conflict_set.forget_fired(instantiation)
            if obs.enabled:
                obs.rollback(txn.txn_id, undone)
            self.scheme.abort(txn, "crashed before commit")
            wave.aborted.append(instantiation.production.name)
            self.abort_count += 1
            self._note_failure(instantiation, "crash-before-commit")
            return
        except Exception:
            undo.detach()
            undone = undo.rollback()
            if obs.enabled:
                obs.rollback(txn.txn_id, undone)
            self.scheme.abort(txn, "RHS execution failed")
            raise
        undo.detach()
        self.scheme.commit(txn)
        undo.commit()
        self.result.firings.append(
            FiringRecord.from_instantiation(instantiation, wave.wave)
        )
        self.result.outputs.extend(outcome.outputs)
        wave.committed.append(instantiation.production.name)
        if obs.enabled:
            obs.firing_committed(
                instantiation.production.name, wave.wave
            )
        if outcome.halted:
            self.result.halted = True
        # commit.victims carry the rule-(ii) aborts; their slots
        # are skipped when their turn comes (txn.is_aborted above).

    # -- whole runs -------------------------------------------------------------------------

    def run(self, max_waves: int = 1_000) -> RunResult:
        """Run waves until quiescence, ``halt`` or ``max_waves``.

        When a wave commits nothing while candidates existed (mutual
        2PL blocking), the engine falls back to one single-thread
        firing to guarantee progress — equivalent to shrinking that
        wave to width 1, still inside ``ES_single``.
        """
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        run_start = obs.clock() if obs.enabled else 0.0
        run_span = None
        if spans is not None:
            run_span = spans.start(
                "run",
                scheme=type(self.scheme).__name__,
                processors=self.processors,
            )
            spans.push_scope(run_span)
        try:
            while len(self.waves) < max_waves:
                if self.result.halted:
                    self.result.stop_reason = "halt"
                    break
                # The eligibility pre-check flushes pending match
                # deltas — that is match work, charged to the
                # profiler's (match) row (run_wave's own candidate
                # ordering is covered by match_latency).
                check_start = obs.clock() if obs.enabled else 0.0
                candidates = self._eligible_candidates()
                if obs.enabled:
                    obs.match_prepass(obs.clock() - check_start)
                if not candidates:
                    # With a retry policy, work may remain in the
                    # conflict set whose budget is exhausted — that is
                    # not quiescence and is reported honestly.
                    self.result.stop_reason = (
                        "retries_exhausted"
                        if self.matcher.conflict_set.eligible()
                        else "quiescent"
                    )
                    break
                wave = self.run_wave(
                    started_at=check_start if obs.enabled else None
                )
                self.result.cycles += 1
                if not wave.committed and self._eligible_candidates():
                    self._fire_single()
            else:
                self.result.stop_reason = "max_waves"
        finally:
            if spans is not None:
                spans.pop_scope(run_span)
                run_span.finish(
                    cycles=self.result.cycles,
                    stop_reason=self.result.stop_reason,
                )
            if obs.enabled:
                obs.run_finished(
                    self.result.cycles, obs.clock() - run_start
                )
        self.result.final_snapshot = WMSnapshot.capture(self.memory)
        return self.result

    def _fire_single(self) -> None:
        """Progress fallback: one single-thread firing.

        Counts as its own sequential cycle and runs under an undo log,
        so an RHS exception leaves working memory exactly as the wave
        machinery would — rolled back, not half-mutated.
        """
        candidates = self._eligible_candidates()
        if not candidates:
            return
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        if spans is not None and spans.scope_dropped():
            spans = None
        instantiation = self.strategy.select(candidates)
        txn = Transaction(rule_name=instantiation.production.name)
        fire_start = obs.clock() if obs.enabled else 0.0
        cycle_span = firing = None
        if spans is not None:
            cycle_span = spans.start(
                "cycle", parent=spans.current(),
                wave=len(self.waves), kind="single",
            )
            firing = spans.start(
                "firing", parent=cycle_span,
                rule=instantiation.production.name, txn=txn.txn_id,
                single=True, **self._span_fields(instantiation),
            )
            spans.bind(txn.txn_id, firing)
        try:
            undo = UndoLog(self.memory).attach()
            try:
                self.matcher.conflict_set.mark_fired(instantiation)
                with getattr(self.matcher, "batch", nullcontext)():
                    outcome = self.executor.execute(instantiation)
            except Exception:
                undo.detach()
                undone = undo.rollback()
                if obs.enabled:
                    obs.rollback(txn.txn_id, undone)
                self.history.abort(txn.txn_id)
                txn.abort("RHS execution failed")
                if firing is not None:
                    firing.annotate(status="aborted")
                raise
            undo.detach()
            self.history.commit(txn.txn_id)
            txn.commit()
            undo.commit()
            self.result.cycles += 1
            self.result.firings.append(
                FiringRecord.from_instantiation(
                    instantiation, len(self.waves)
                )
            )
            self.result.outputs.extend(outcome.outputs)
            if firing is not None:
                firing.annotate(status="committed")
            if obs.enabled:
                obs.single_fire_committed(
                    instantiation.production.name, len(self.waves),
                    obs.clock() - fire_start,
                )
            if outcome.halted:
                self.result.halted = True
        finally:
            if spans is not None:
                firing.finish()
                cycle_span.finish()
                spans.unbind(txn.txn_id)
            if obs.enabled:
                obs.firing_finished(
                    instantiation.production.name, txn.txn_id,
                    obs.clock() - fire_start,
                )
