"""Run results: what a (single- or multiple-thread) execution did."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.match.instantiation import Instantiation
from repro.wm.element import Scalar
from repro.wm.snapshot import WMSnapshot


@dataclass(frozen=True)
class FiringRecord:
    """One committed firing.

    ``value_identities`` captures the matched WMEs by value (timetag-
    free) so replays — where timetags differ — can re-identify the
    instantiation.
    """

    rule_name: str
    timetags: tuple[int, ...]
    value_identities: tuple[tuple, ...]
    cycle: int

    @staticmethod
    def from_instantiation(
        instantiation: Instantiation, cycle: int
    ) -> "FiringRecord":
        return FiringRecord(
            rule_name=instantiation.production.name,
            timetags=instantiation.timetags(),
            value_identities=tuple(
                w.identity() for w in instantiation.wmes
            ),
            cycle=cycle,
        )

    def __str__(self) -> str:
        return f"{self.rule_name}@{self.cycle}"


@dataclass
class RunResult:
    """Aggregate outcome of an engine run."""

    firings: list[FiringRecord] = field(default_factory=list)
    outputs: list[tuple[Scalar, ...]] = field(default_factory=list)
    halted: bool = False
    cycles: int = 0
    #: Why the run ended: "quiescent", "halt", or "max_cycles".
    stop_reason: str = "quiescent"
    final_snapshot: WMSnapshot | None = None

    def firing_sequence(self) -> tuple[str, ...]:
        """The commit sequence as rule names — the paper's σ."""
        return tuple(f.rule_name for f in self.firings)

    def fired_rules(self) -> frozenset[str]:
        return frozenset(f.rule_name for f in self.firings)

    def __iter__(self) -> Iterator[FiringRecord]:
        return iter(self.firings)

    def __len__(self) -> int:
        return len(self.firings)

    def __str__(self) -> str:
        sigma = " ".join(self.firing_sequence()) or "(none)"
        return (
            f"RunResult({len(self.firings)} firings, "
            f"stop={self.stop_reason}, sigma: {sigma})"
        )
