"""Genuinely multi-threaded firing waves.

The deterministic engines (simulator, wave engine) validate the
*semantics*; this executor validates the lock manager's *mutual
exclusion* under real OS-thread interleavings.  It is a stress/test
harness, not a performance vehicle — the GIL precludes real speedups
(DESIGN.md records that substitution).

One wave: every eligible instantiation fires on its own thread under
the chosen scheme with *blocking* lock acquisition.  Each thread:

1. acquires condition locks (``Rc``/``R``) on its read objects;
2. acquires action locks (``Wa``/``W``) on its write objects;
3. re-checks it has not been rule-(ii) aborted, then executes its RHS
   inside the working memory's global mutex (paired with its undo
   log), commits, and triggers victim aborts.

Deadlocks are broken by acquisition timeouts: a timed-out thread
aborts, rolls back, and ends (its production may refire in a later
wave).  The executor records the commit order and the lock history for
the serializability and semantic-consistency checks.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Literal

import repro.obs as obs_module
from repro.engine.actions import ActionExecutor
from repro.engine.interpreter import MatcherName, build_matcher
from repro.engine.result import FiringRecord
from repro.errors import EngineError
from repro.core.interference import (
    instantiation_read_objects,
    instantiation_write_objects,
)
from repro.lang.production import Production
from repro.locks.rc_scheme import RcScheme
from repro.locks.two_phase import TwoPhaseScheme
from repro.match.instantiation import Instantiation
from repro.txn.schedule import History
from repro.txn.transaction import Transaction
from repro.wm.memory import WorkingMemory

SchemeName = Literal["2pl", "rc"]


@dataclass
class ThreadedWaveResult:
    """Outcome of one threaded wave."""

    committed: list[FiringRecord] = field(default_factory=list)
    aborted: list[str] = field(default_factory=list)
    timed_out: list[str] = field(default_factory=list)
    history: History = field(default_factory=History)

    def commit_order(self) -> tuple[str, ...]:
        return tuple(r.rule_name for r in self.committed)


class ThreadedWaveExecutor:
    """Runs eligible instantiations concurrently on real threads."""

    def __init__(
        self,
        productions: Iterable[Production],
        memory: WorkingMemory,
        scheme: SchemeName = "rc",
        matcher: MatcherName = "rete",
        lock_timeout: float = 0.2,
        observer=None,
    ) -> None:
        if memory._mutex is None:  # noqa: SLF001 - deliberate check
            raise EngineError(
                "threaded execution requires WorkingMemory(thread_safe=True)"
            )
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.memory = memory
        self.matcher = build_matcher(matcher, memory, observer=self.obs)
        self.matcher.add_productions(productions)
        self.matcher.attach()
        self.history = History()
        if scheme == "rc":
            self.scheme: RcScheme | TwoPhaseScheme = RcScheme(
                history=self.history, observer=self.obs
            )
        elif scheme == "2pl":
            self.scheme = TwoPhaseScheme(
                history=self.history, observer=self.obs
            )
        else:
            raise EngineError(f"unknown scheme {scheme!r}")
        self.lock_timeout = lock_timeout
        self.executor = ActionExecutor(memory)
        self._commit_mutex = threading.Lock()
        #: Waves run so far; the current wave number is the ``cycle``
        #: label stamped on committed :class:`FiringRecord`\ s.
        self.waves_run = 0

    # -- one wave ------------------------------------------------------------------------

    def run_wave(self) -> ThreadedWaveResult:
        result = ThreadedWaveResult(history=self.history)
        self.waves_run += 1
        cycle = self.waves_run
        obs = self.obs
        wave_start = obs.clock() if obs.enabled else 0.0
        candidates = self.matcher.conflict_set.eligible()
        if obs.enabled:
            obs.wave_started(cycle, len(candidates))
        threads = [
            threading.Thread(
                target=self._fire,
                args=(instantiation, result, cycle),
                name=f"firing-{instantiation.production.name}",
                daemon=True,
            )
            for instantiation in candidates
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if obs.enabled:
            obs.wave_finished(
                cycle,
                committed=len(result.committed),
                aborted=len(result.aborted),
                deferred=len(result.timed_out),
                duration=obs.clock() - wave_start,
            )
        return result

    def _acquire_all(
        self, txn: Transaction, objects, mode_method
    ) -> bool:
        """Blocking acquisition with timeout; False on failure/abort."""
        for obj in sorted(objects, key=repr):
            if txn.is_aborted:
                return False
            request = mode_method(txn, obj)
            deadline = self.lock_timeout
            status = request.wait(deadline)
            if not request.is_granted:
                self.scheme.manager.cancel(request)
                return False
        return True

    def _fire(
        self,
        instantiation: Instantiation,
        result: ThreadedWaveResult,
        cycle: int,
    ) -> None:
        txn = Transaction(rule_name=instantiation.production.name)
        reads = instantiation_read_objects(instantiation)
        writes = instantiation_write_objects(instantiation)
        lock_condition = (
            lambda t, obj: self.scheme.lock_condition(t, obj, blocking=False)
        )
        lock_write = lambda t, obj: self.scheme.manager.acquire(
            t, obj, self.scheme.action_write_mode, blocking=False
        )
        if not self._acquire_all(txn, reads, lock_condition):
            self.scheme.abort(txn, "condition lock timeout")
            with self._commit_mutex:
                result.timed_out.append(instantiation.production.name)
            return
        if not self._acquire_all(txn, writes, lock_write):
            self.scheme.abort(txn, "action lock timeout")
            with self._commit_mutex:
                result.timed_out.append(instantiation.production.name)
            return
        # Serialize the actual database update + commit decision.
        with self._commit_mutex:
            if txn.is_aborted:
                self.scheme.abort(txn)
                result.aborted.append(instantiation.production.name)
                return
            if instantiation not in self.matcher.conflict_set:
                self.scheme.abort(txn, "instantiation invalidated")
                result.aborted.append(instantiation.production.name)
                return
            self.matcher.conflict_set.mark_fired(instantiation)
            self.executor.execute(instantiation)
            self.scheme.commit(txn)
            result.committed.append(
                FiringRecord.from_instantiation(instantiation, cycle=cycle)
            )
            if self.obs.enabled:
                self.obs.firing_committed(
                    instantiation.production.name, cycle
                )
