"""Genuinely multi-threaded firing waves.

The deterministic engines (simulator, wave engine) validate the
*semantics*; this executor validates the lock manager's *mutual
exclusion* under real OS-thread interleavings.  It is a stress/test
harness, not a performance vehicle — the GIL precludes real speedups
(DESIGN.md records that substitution).

One wave: every eligible instantiation fires on its own thread under
the chosen scheme with *blocking* lock acquisition.  Each thread:

1. acquires condition locks (``Rc``/``R``) on its read objects;
2. acquires action locks (``Wa``/``W``) on its write objects;
3. re-checks it has not been rule-(ii) aborted, then executes its RHS
   inside the working memory's global mutex (paired with an undo log),
   commits, and triggers victim aborts.

Deadlocks are *detected*, not timed out: every blocking acquisition
registers an ``on_block`` hook that runs the waits-for cycle detector
(:mod:`repro.locks.deadlock`); when a cycle closes, a victim chosen by
a pluggable policy (youngest / fewest-locks / ...) is aborted and its
waiting requests cancelled, waking its thread immediately.  Timeouts
remain only as a backstop for pathological stalls.

A timed-out or aborted firing is re-driven under the executor's
:class:`~repro.fault.retry.RetryPolicy` (bounded attempts, exponential
backoff with seeded jitter) as long as its instantiation is still in
the conflict set; the final classification distinguishes *timeouts*
(lock never became available) from *aborts* (rule-(ii) victims,
deadlock victims, injected faults) — ``result.timed_out`` vs
``result.aborted``.  An attached
:class:`~repro.fault.injector.FaultInjector` can delay or deny lock
grants, force mid-RHS aborts, and kill a firing after its RHS but
before commit (the undo log rolls the crash back).  The executor
records the commit order and the lock history for the serializability
and semantic-consistency checks.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal

import repro.obs as obs_module
from repro.engine.actions import ActionExecutor
from repro.engine.interpreter import MatcherName, build_matcher
from repro.engine.result import FiringRecord
from repro.errors import EngineError, FiringCrashed
from repro.core.interference import (
    instantiation_read_objects,
    instantiation_write_objects,
)
from repro.fault.injector import FaultInjector
from repro.fault.retry import RetryPolicy
from repro.lang.production import Production
from repro.locks.deadlock import (
    DeadlockDetector,
    VictimPolicy,
    resolve_victim_policy,
)
from repro.locks.modes import LockMode
from repro.locks.rc_scheme import RcScheme
from repro.locks.request import LockRequest
from repro.locks.two_phase import TwoPhaseScheme
from repro.match.instantiation import Instantiation
from repro.txn.schedule import History
from repro.txn.transaction import Transaction
from repro.wm.memory import WorkingMemory
from repro.wm.undo import UndoLog

SchemeName = Literal["2pl", "rc"]


class _Acquire(enum.Enum):
    """Outcome of a (multi-object) lock acquisition."""

    GRANTED = "granted"
    #: The lock never became available within ``lock_timeout``.
    TIMEOUT = "timeout"
    #: The transaction was aborted while acquiring — rule-(ii) victim,
    #: deadlock victim, or injected abort.  NOT a timeout.
    ABORTED = "aborted"


class _Fired(enum.Enum):
    """Outcome of one firing attempt."""

    COMMITTED = "committed"
    TIMEOUT = "timeout"
    ABORTED = "aborted"
    #: The instantiation left the conflict set before commit.
    INVALIDATED = "invalidated"


@dataclass
class ThreadedWaveResult:
    """Outcome of one threaded wave."""

    committed: list[FiringRecord] = field(default_factory=list)
    #: Rules whose firing was aborted (rule (ii), deadlock victim,
    #: injected fault, or invalidated instantiation).
    aborted: list[str] = field(default_factory=list)
    #: Rules whose firing gave up waiting for a lock.
    timed_out: list[str] = field(default_factory=list)
    history: History = field(default_factory=History)
    #: Transactions aborted by deadlock detection during this wave.
    deadlock_victims: list[str] = field(default_factory=list)
    #: Re-drive attempts performed during this wave.
    retries: int = 0

    def commit_order(self) -> tuple[str, ...]:
        return tuple(r.rule_name for r in self.committed)


class ThreadedWaveExecutor:
    """Runs eligible instantiations concurrently on real threads.

    Parameters
    ----------
    productions, memory, scheme, matcher, lock_timeout, observer:
        As before; ``lock_timeout`` is now a stall backstop, not the
        deadlock breaker.
    deadlock_detection:
        When true (default), blocking acquisitions run the waits-for
        cycle detector and abort a victim instead of waiting for the
        timeout.
    victim_policy:
        ``"youngest"`` (default), ``"oldest"``, ``"fewest-locks"``,
        ``"most-locks"``, or a callable ``cycle -> Transaction``.
    retry_policy:
        When given, timed-out/aborted firings are re-driven (fresh
        transaction, exponential backoff) while their instantiation
        remains in the conflict set.
    fault_injector:
        Optional :class:`FaultInjector` wired into every lock
        acquisition, the pre-RHS point, and the pre-commit point.
    sleeper:
        Time source for retry backoff (default :func:`time.sleep`).
    """

    def __init__(
        self,
        productions: Iterable[Production],
        memory: WorkingMemory,
        scheme: SchemeName = "rc",
        matcher: MatcherName = "rete",
        lock_timeout: float = 0.2,
        observer=None,
        deadlock_detection: bool = True,
        victim_policy: str | VictimPolicy = "youngest",
        retry_policy: RetryPolicy | None = None,
        fault_injector: FaultInjector | None = None,
        sleeper: Callable[[float], None] = time.sleep,
        lock_stripes: int = 1,
    ) -> None:
        if memory._mutex is None:  # noqa: SLF001 - deliberate check
            raise EngineError(
                "threaded execution requires WorkingMemory(thread_safe=True)"
            )
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.memory = memory
        self.matcher = build_matcher(matcher, memory, observer=self.obs)
        self.matcher.add_productions(productions)
        self.matcher.attach()
        self.history = History()
        if scheme == "rc":
            self.scheme: RcScheme | TwoPhaseScheme = RcScheme(
                history=self.history, observer=self.obs,
                stripes=lock_stripes,
            )
        elif scheme == "2pl":
            self.scheme = TwoPhaseScheme(
                history=self.history, observer=self.obs,
                stripes=lock_stripes,
            )
        else:
            raise EngineError(f"unknown scheme {scheme!r}")
        self.lock_timeout = lock_timeout
        self.executor = ActionExecutor(memory)
        self.retry_policy = retry_policy
        self.fault = fault_injector
        self._sleep = sleeper
        self.victim_policy_name = (
            victim_policy if isinstance(victim_policy, str) else "custom"
        )
        self.detector: DeadlockDetector | None = None
        if deadlock_detection:
            self.detector = DeadlockDetector(
                self.scheme.manager,
                policy=resolve_victim_policy(
                    victim_policy, self.scheme.manager
                ),
            )
        self._detector_mutex = threading.Lock()
        self._commit_mutex = threading.Lock()
        #: Deadlock victims across all waves (txn ids).
        self.deadlock_victims: list[str] = []
        #: Waves run so far; the current wave number is the ``cycle``
        #: label stamped on committed :class:`FiringRecord`\ s.
        self.waves_run = 0

    # -- one wave ------------------------------------------------------------------------

    def run_wave(self) -> ThreadedWaveResult:
        result = ThreadedWaveResult(history=self.history)
        self.waves_run += 1
        cycle = self.waves_run
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        if spans is not None and spans.scope_dropped():
            # Sampled-out run: skip span construction for the wave.
            spans = None
        wave_start = obs.clock() if obs.enabled else 0.0
        cycle_span = None
        if spans is not None:
            cycle_span = spans.start(
                "cycle", parent=spans.current(), ts=wave_start,
                wave=cycle, executor="threaded",
            )
            spans.push_scope(cycle_span)
        victims_before = len(self.deadlock_victims)
        try:
            candidates = self.matcher.conflict_set.eligible()
            if obs.enabled:
                obs.match_latency(obs.clock() - wave_start)
                obs.wave_started(cycle, len(candidates))
            threads = [
                threading.Thread(
                    target=self._fire,
                    args=(instantiation, result, cycle, cycle_span),
                    name=f"firing-{instantiation.production.name}",
                    daemon=True,
                )
                for instantiation in candidates
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            if spans is not None:
                spans.pop_scope(cycle_span)
                cycle_span.finish(
                    committed=len(result.committed),
                    aborted=len(result.aborted),
                    timed_out=len(result.timed_out),
                )
        result.deadlock_victims = self.deadlock_victims[victims_before:]
        if obs.enabled:
            obs.wave_finished(
                cycle,
                committed=len(result.committed),
                aborted=len(result.aborted),
                deferred=len(result.timed_out),
                duration=obs.clock() - wave_start,
            )
        return result

    def run(self, max_waves: int = 100) -> list[ThreadedWaveResult]:
        """Run waves until the conflict set drains (or ``max_waves``)."""
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        run_start = obs.clock() if obs.enabled else 0.0
        run_span = None
        if spans is not None:
            run_span = spans.start(
                "run",
                scheme=type(self.scheme).__name__,
                executor="threaded",
            )
            spans.push_scope(run_span)
        results: list[ThreadedWaveResult] = []
        try:
            for _ in range(max_waves):
                check_start = obs.clock() if obs.enabled else 0.0
                eligible = self.matcher.conflict_set.eligible()
                if obs.enabled:
                    obs.match_prepass(obs.clock() - check_start)
                if not eligible:
                    break
                results.append(self.run_wave())
        finally:
            if run_span is not None:
                spans.pop_scope(run_span)
                run_span.finish(waves=len(results))
            if obs.enabled:
                obs.run_finished(len(results), obs.clock() - run_start)
        return results

    # -- deadlock detection ----------------------------------------------------------------

    def _on_block(self, request: LockRequest) -> None:
        """Runs once whenever a lock request starts waiting.

        The last edge of any waits-for cycle is created by a request
        going to wait, so checking here catches every deadlock at the
        instant it forms.
        """
        if self.detector is None:
            return
        manager = self.scheme.manager
        with self._detector_mutex:
            cycle = self.detector.find_cycle()
            if cycle is None:
                return
            cycle_ids = tuple(t.txn_id for t in cycle)
            self.detector.detected.append(cycle_ids)
            victim = self.detector.policy(cycle)
            if not victim.try_abort("deadlock victim"):
                return
            self.deadlock_victims.append(victim.txn_id)
            if self.obs.enabled:
                self.obs.deadlock_victim(
                    victim.txn_id, cycle_ids, self.victim_policy_name
                )
            # Wake the victim: cancelling its waiting requests unblocks
            # its thread immediately (it sees is_aborted, not a grant).
            for waiting in manager.waiting_requests():
                if waiting.txn is victim:
                    manager.cancel(waiting)

    # -- lock acquisition --------------------------------------------------------------------

    def _acquire_all(
        self, txn: Transaction, objects, mode: LockMode
    ) -> _Acquire:
        """Blocking multi-object acquisition in deterministic order.

        Distinguishes the two failure modes the caller must not
        conflate: the lock never arriving (``TIMEOUT``) versus the
        transaction being aborted while it waited (``ABORTED``).
        """
        manager = self.scheme.manager
        for obj in sorted(objects, key=repr):
            if txn.is_aborted:
                return _Acquire.ABORTED
            if self.fault is not None:
                if self.fault.lock_fault(txn, obj, str(mode)) == "deny":
                    return _Acquire.TIMEOUT
                if txn.is_aborted:
                    # An injected delay widened the window for a
                    # concurrent rule-(ii)/deadlock abort to land.
                    return _Acquire.ABORTED
            request = manager.acquire(
                txn,
                obj,
                mode,
                blocking=True,
                timeout=self.lock_timeout,
                on_block=self._on_block,
            )
            if request.is_granted:
                # Covers both the immediate grant and the grant that
                # slipped in during the timeout/cancel race window —
                # the manager leaves such a request GRANTED (it only
                # cancels WAITING requests), so the lock is used, not
                # leaked.
                continue
            return _Acquire.ABORTED if txn.is_aborted else _Acquire.TIMEOUT
        return _Acquire.ABORTED if txn.is_aborted else _Acquire.GRANTED

    # -- firing ------------------------------------------------------------------------------

    def _fire(
        self,
        instantiation: Instantiation,
        result: ThreadedWaveResult,
        cycle: int,
        parent=None,
    ) -> None:
        policy = self.retry_policy
        rule = instantiation.production.name
        attempt = 0
        outcome = _Fired.ABORTED
        while True:
            attempt += 1
            txn = Transaction(rule_name=rule)
            outcome = self._fire_once(
                instantiation, txn, result, cycle,
                parent=parent, attempt=attempt,
            )
            if outcome is _Fired.COMMITTED:
                return
            if outcome is _Fired.INVALIDATED:
                break
            if policy is None or not policy.should_retry(attempt):
                if policy is not None and self.obs.enabled:
                    self.obs.retry_exhausted(rule, attempt, outcome.value)
                break
            if instantiation not in self.matcher.conflict_set:
                # Retracted by a concurrent commit: nothing to re-drive.
                break
            delay = policy.backoff(attempt, key=rule)
            with self._commit_mutex:
                result.retries += 1
            if self.obs.enabled:
                self.obs.retry_attempt(rule, attempt, delay, outcome.value)
            if delay > 0:
                self._sleep(delay)
        with self._commit_mutex:
            if outcome is _Fired.TIMEOUT:
                result.timed_out.append(rule)
            else:
                result.aborted.append(rule)

    def _fire_once(
        self,
        instantiation: Instantiation,
        txn: Transaction,
        result: ThreadedWaveResult,
        cycle: int,
        parent=None,
        attempt: int = 1,
    ) -> _Fired:
        """One attempt wrapped in a ``firing`` span (when recording).

        The transaction is bound to the span for the duration, so
        lock grants, faults, deadlock victimhood and rule-(ii) links
        land on the right firing even across OS threads.
        """
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        if spans is not None and spans.scope_dropped():
            # Suppressed wave (sampled-out trace): a firing span here
            # would be parentless and steal a fresh head decision.
            spans = None
        fire_start = obs.clock() if obs.enabled else 0.0
        if spans is None:
            try:
                return self._attempt(instantiation, txn, result, cycle)
            finally:
                if obs.enabled:
                    obs.firing_finished(
                        instantiation.production.name, txn.txn_id,
                        obs.clock() - fire_start,
                    )
        firing = spans.start(
            "firing", parent=parent,
            rule=instantiation.production.name, txn=txn.txn_id,
            attempt=attempt,
        )
        spans.bind(txn.txn_id, firing)
        try:
            outcome = self._attempt(instantiation, txn, result, cycle)
            firing.annotate(outcome=outcome.value)
            return outcome
        finally:
            firing.finish()
            spans.unbind(txn.txn_id)
            obs.firing_finished(
                instantiation.production.name, txn.txn_id,
                obs.clock() - fire_start,
            )

    def _attempt(
        self,
        instantiation: Instantiation,
        txn: Transaction,
        result: ThreadedWaveResult,
        cycle: int,
    ) -> _Fired:
        """One attempt: acquire, execute, commit.  Never raises for
        survivable failures; the caller decides whether to re-drive."""
        reads = instantiation_read_objects(instantiation)
        writes = instantiation_write_objects(instantiation)
        acquired = self._acquire_all(txn, reads, self.scheme.condition_mode)
        if acquired is not _Acquire.GRANTED:
            if acquired is _Acquire.TIMEOUT:
                self.scheme.abort(txn, "condition lock timeout")
                return _Fired.TIMEOUT
            self.scheme.abort(txn)
            return _Fired.ABORTED
        acquired = self._acquire_all(
            txn, writes, self.scheme.action_write_mode
        )
        if acquired is not _Acquire.GRANTED:
            if acquired is _Acquire.TIMEOUT:
                self.scheme.abort(txn, "action lock timeout")
                return _Fired.TIMEOUT
            self.scheme.abort(txn)
            return _Fired.ABORTED
        if self.fault is not None and self.fault.rhs_abort(txn):
            txn.try_abort("injected RHS abort")
        # Serialize the actual database update + commit decision.
        with self._commit_mutex:
            if txn.is_aborted:
                self.scheme.abort(txn)
                return _Fired.ABORTED
            if instantiation not in self.matcher.conflict_set:
                self.scheme.abort(txn, "instantiation invalidated")
                return _Fired.INVALIDATED
            undo = UndoLog(self.memory).attach()
            try:
                self.matcher.conflict_set.mark_fired(instantiation)
                self.executor.execute(instantiation)
                if self.fault is not None:
                    self.fault.crash_point(txn)
            except FiringCrashed:
                self._rollback(undo, txn, instantiation)
                self.scheme.abort(txn, "crashed before commit")
                return _Fired.ABORTED
            except Exception:
                self._rollback(undo, txn, instantiation)
                self.scheme.abort(txn, "RHS execution failed")
                raise
            undo.detach()
            self.scheme.commit(txn)
            undo.commit()
            result.committed.append(
                FiringRecord.from_instantiation(instantiation, cycle=cycle)
            )
            if self.obs.enabled:
                self.obs.firing_committed(
                    instantiation.production.name, cycle
                )
        return _Fired.COMMITTED

    def _rollback(
        self, undo: UndoLog, txn: Transaction, instantiation: Instantiation
    ) -> None:
        """Undo a partially executed RHS; caller holds the commit mutex."""
        undo.detach()
        undone = undo.rollback()
        # The rollback restored the matched WMEs under their original
        # timetags, so the instantiation identity is back — clear its
        # fired mark or the retry could never refire it.
        self.matcher.conflict_set.forget_fired(instantiation)
        if self.obs.enabled:
            self.obs.rollback(txn.txn_id, undone)
