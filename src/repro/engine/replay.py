"""Replay validation: Definition 3.2 for real (working-memory) systems.

A parallel run is semantically consistent iff its commit sequence is a
root-originating path (or prefix) of the single-thread execution graph
from the same initial state.  For real systems we verify this
*operationally*: replay the commit sequence on a fresh single-thread
engine started from the same initial snapshot, checking at every step
that the committed instantiation is present in the replayed conflict
set, then firing exactly it.

Instantiations are re-identified across runs by (rule name, matched
WME *value identities*): timetags differ between the original run and
the replay for WMEs created mid-run, but values do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.actions import ActionExecutor
from repro.engine.interpreter import MatcherName, build_matcher
from repro.engine.result import FiringRecord
from repro.lang.production import Production
from repro.match.instantiation import Instantiation
from repro.wm.snapshot import WMSnapshot


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying a commit sequence."""

    consistent: bool
    replayed: int
    detail: str = ""

    def __bool__(self) -> bool:
        return self.consistent


def _find_match(
    candidates: Iterable[Instantiation], record: FiringRecord
) -> Instantiation | None:
    """Find an instantiation matching a firing record by value."""
    for candidate in candidates:
        if candidate.production.name != record.rule_name:
            continue
        identities = tuple(w.identity() for w in candidate.wmes)
        if identities == record.value_identities:
            return candidate
    return None


def replay_commit_sequence(
    initial: WMSnapshot,
    productions: Sequence[Production],
    firings: Sequence[FiringRecord],
    matcher: MatcherName = "naive",
) -> ReplayOutcome:
    """Replay ``firings`` single-threaded from ``initial``.

    Returns an inconsistent outcome at the first firing whose
    instantiation is absent from the replayed conflict set — the exact
    violation Definition 3.2 forbids.
    """
    memory = initial.materialize()
    engine_matcher = build_matcher(matcher, memory)
    engine_matcher.add_productions(productions)
    engine_matcher.attach()
    executor = ActionExecutor(memory)
    for index, record in enumerate(firings):
        candidates = engine_matcher.conflict_set.eligible()
        chosen = _find_match(candidates, record)
        if chosen is None:
            in_set_names = sorted(
                {c.production.name for c in candidates}
            )
            return ReplayOutcome(
                consistent=False,
                replayed=index,
                detail=(
                    f"firing #{index} ({record.rule_name}) not in the "
                    f"replayed conflict set (active rules: {in_set_names})"
                ),
            )
        engine_matcher.conflict_set.mark_fired(chosen)
        executor.execute(chosen)
    return ReplayOutcome(
        consistent=True,
        replayed=len(firings),
        detail=f"all {len(firings)} firings replayed in order",
    )
