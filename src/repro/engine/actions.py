"""RHS action execution.

Executes a fired instantiation's actions against working memory: the
paper's *execute* phase ("the RHS operations of the selected production
are performed, which may cause changes to the database").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import EngineError
from repro.lang.ast import (
    BindAction,
    HaltAction,
    MakeAction,
    ModifyAction,
    RemoveAction,
    WriteAction,
)
from repro.match.instantiation import Instantiation
from repro.wm.element import Scalar, WME
from repro.wm.memory import WorkingMemory

#: Sink for ``write`` action output.
OutputSink = Callable[[tuple[Scalar, ...]], None]


@dataclass
class ActionOutcome:
    """What one RHS execution did."""

    created: list[WME] = field(default_factory=list)
    modified: list[tuple[WME, WME]] = field(default_factory=list)
    removed: list[WME] = field(default_factory=list)
    outputs: list[tuple[Scalar, ...]] = field(default_factory=list)
    halted: bool = False

    def touched(self) -> list[WME]:
        """Every WME the RHS wrote (old and new versions)."""
        out = list(self.created) + list(self.removed)
        for old, new in self.modified:
            out.append(old)
            out.append(new)
        return out


class ActionExecutor:
    """Executes instantiations' RHSs against one working memory."""

    def __init__(
        self,
        memory: WorkingMemory,
        output_sink: OutputSink | None = None,
    ) -> None:
        self.memory = memory
        self._sink = output_sink

    def execute(self, instantiation: Instantiation) -> ActionOutcome:
        """Run every RHS action of ``instantiation`` in order.

        Element designators resolve through a live map so that a
        ``modify`` of an element followed by another action on the same
        element operates on the *current* version.  A ``halt`` is
        reported in the outcome (after completing the RHS, as OPS5
        does), not raised.
        """
        production = instantiation.production
        bindings = dict(instantiation.bindings)
        positive = production.positive_indices()
        #: 1-based CE index -> current WME version (None once removed).
        current: dict[int, WME | None] = {
            ce_index + 1: instantiation.wmes[position]
            for position, ce_index in enumerate(positive)
        }
        outcome = ActionOutcome()
        for action in production.rhs:
            if isinstance(action, MakeAction):
                values = {
                    name: expr.evaluate(bindings)
                    for name, expr in action.values
                }
                outcome.created.append(
                    self.memory.make(action.relation, values)
                )
            elif isinstance(action, ModifyAction):
                target = current.get(action.ce_index)
                if target is None:
                    raise EngineError(
                        f"{production.name}: modify {action.ce_index} after "
                        f"the element was removed"
                    )
                changes = {
                    name: expr.evaluate(bindings)
                    for name, expr in action.values
                }
                new = self.memory.modify(target, changes)
                current[action.ce_index] = new
                outcome.modified.append((target, new))
            elif isinstance(action, RemoveAction):
                target = current.get(action.ce_index)
                if target is None:
                    raise EngineError(
                        f"{production.name}: remove {action.ce_index} after "
                        f"the element was removed"
                    )
                self.memory.remove(target)
                current[action.ce_index] = None
                outcome.removed.append(target)
            elif isinstance(action, BindAction):
                bindings[action.variable] = action.expr.evaluate(bindings)
            elif isinstance(action, WriteAction):
                values = tuple(e.evaluate(bindings) for e in action.exprs)
                outcome.outputs.append(values)
                if self._sink is not None:
                    self._sink(values)
            elif isinstance(action, HaltAction):
                outcome.halted = True
            else:  # pragma: no cover - exhaustive over the AST
                raise EngineError(f"unknown action {action!r}")
        return outcome
