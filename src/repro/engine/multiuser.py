"""Multi-user execution: several sessions over one shared database.

Section 2's classification closes with: "Finally, tasks of different
users can be done in parallel."  A :class:`MultiUserEngine` hosts
several *sessions* — each a named rule set, conceptually one user's
task — over one shared working memory, firing them concurrently
through one lock scheme.

Scheduling is round-robin across sessions within each wave (no user
can starve another), and every firing is attributed to its session, so
fairness and interference between users are measurable.  All the
semantic machinery is inherited: the combined commit sequence must
still replay single-threaded, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.engine.parallel import ParallelEngine, SchemeName
from repro.engine.result import RunResult
from repro.errors import EngineError
from repro.lang.production import Production
from repro.match.instantiation import Instantiation
from repro.match.strategies import Strategy, make_strategy
from repro.wm.memory import WorkingMemory


@dataclass(frozen=True)
class Session:
    """One user's rule set."""

    user: str
    productions: tuple[Production, ...]

    @staticmethod
    def of(user: str, productions: Iterable[Production]) -> "Session":
        return Session(user, tuple(productions))


class MultiUserEngine(ParallelEngine):
    """Wave-parallel execution of several users' rule sets.

    Parameters are as for :class:`~repro.engine.parallel.ParallelEngine`
    except that ``sessions`` replaces ``productions``.  Rule names must
    be globally unique across sessions (they share one conflict set).

    Wave candidates are ordered round-robin across users (each user's
    own candidates ordered by ``base_strategy``), with the starting
    user rotating wave to wave — strict fairness even at wave width 1.
    """

    def __init__(
        self,
        sessions: Sequence[Session],
        memory: WorkingMemory | None = None,
        scheme: SchemeName = "rc",
        matcher="rete",
        base_strategy: str | Strategy = "lex",
        processors: int | None = None,
        seed: int | None = None,
        observer=None,
        retry_policy=None,
        fault_injector=None,
        lock_stripes: int = 1,
    ) -> None:
        owners: dict[str, str] = {}
        productions: list[Production] = []
        for session in sessions:
            for production in session.productions:
                if production.name in owners:
                    raise EngineError(
                        f"rule {production.name!r} appears in sessions "
                        f"{owners[production.name]!r} and {session.user!r}"
                    )
                owners[production.name] = session.user
                productions.append(production)
        if isinstance(base_strategy, str):
            base_strategy = make_strategy(base_strategy, seed)
        super().__init__(
            productions,
            memory,
            scheme=scheme,
            matcher=matcher,
            strategy=base_strategy,
            processors=processors,
            seed=seed,
            observer=observer,
            retry_policy=retry_policy,
            fault_injector=fault_injector,
            lock_stripes=lock_stripes,
        )
        self.sessions = tuple(sessions)
        self._owners = owners
        self._users = [session.user for session in sessions]
        self._turn = 0

    # -- fair wave ordering ------------------------------------------------------------

    def _ordered_candidates(self) -> list[Instantiation]:
        """Interleave users' candidates, rotating the lead user."""
        remaining = self._eligible_candidates()
        buckets: dict[str, list[Instantiation]] = {}
        for candidate in remaining:
            user = self._owners.get(candidate.production.name, "?")
            buckets.setdefault(user, []).append(candidate)
        # Order within each bucket by the base strategy.
        for user, candidates in buckets.items():
            ordered: list[Instantiation] = []
            pool = list(candidates)
            while pool:
                chosen = self.strategy.select(pool)
                ordered.append(chosen)
                pool.remove(chosen)
            buckets[user] = ordered
        # Rotate the user list so the lead changes every wave.
        if self._users:
            rotation = (
                self._users[self._turn:] + self._users[: self._turn]
            )
            self._turn = (self._turn + 1) % len(self._users)
        else:  # pragma: no cover - engines always have sessions
            rotation = list(buckets)
        interleaved: list[Instantiation] = []
        index = 0
        while any(buckets.get(user) for user in rotation):
            user = rotation[index % len(rotation)]
            index += 1
            bucket = buckets.get(user)
            if bucket:
                interleaved.append(bucket.pop(0))
        if self.processors is not None:
            interleaved = interleaved[: self.processors]
        return interleaved

    # -- attribution -----------------------------------------------------------------

    def _span_fields(self, instantiation: Instantiation) -> dict:
        """Stamp acquire/firing spans with the owning session's user."""
        return {
            "user": self._owners.get(instantiation.production.name, "?")
        }

    def user_of(self, rule_name: str) -> str:
        """The session owning ``rule_name``."""
        try:
            return self._owners[rule_name]
        except KeyError:
            raise EngineError(f"unknown rule {rule_name!r}") from None

    def firings_by_user(self) -> dict[str, int]:
        """Committed firings per session (fairness view)."""
        counts = {session.user: 0 for session in self.sessions}
        for record in self.result.firings:
            counts[self.user_of(record.rule_name)] += 1
        return counts

    def profile_by_user(self) -> dict[str, dict[str, float]]:
        """The observer's per-rule profile folded onto sessions.

        Rolls every rule's self-time buckets up to the session that
        owns it (the cost-attribution view of fairness: who *spent*
        the wall, not just who committed).  Engine-level pseudo-rules
        like ``(match)`` land under ``"(engine)"``.
        """
        snapshot = self.obs.profiler.snapshot() if self.obs.enabled else {
            "rules": []
        }
        out: dict[str, dict[str, float]] = {}
        for row in snapshot["rules"]:
            user = self._owners.get(row["rule"], "(engine)")
            bucket = out.setdefault(
                user,
                {"total_seconds": 0.0, "match": 0.0, "lock_wait": 0.0,
                 "acquire": 0.0, "rhs": 0.0, "firings": 0},
            )
            bucket["total_seconds"] += row["total_seconds"]
            bucket["match"] += row["match"]
            bucket["lock_wait"] += row["lock_wait"]
            bucket["acquire"] += row["acquire"]
            bucket["rhs"] += row["rhs"]
            bucket["firings"] += row["firings"]
        return out

    def run(self, max_waves: int = 1_000) -> RunResult:
        """Run to quiescence; see :meth:`ParallelEngine.run`."""
        return super().run(max_waves=max_waves)
