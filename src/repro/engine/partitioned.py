"""User-visible parallelism: data partitioning (Section 2).

"User visible: The user is aware of parallelism opportunities, and
makes full use of them.  Example approaches are (1) dividing a task
into non-interacting subtasks, (2) **partitioning the database into
classes of objects accessed by different tasks**."

:class:`PartitionedEngine` implements approach (2): the user supplies a
partition key (an attribute), the working memory is split into shards
by that key, and an independent single-thread engine runs per shard.
When the rule program is *shard-local* — every join variable passes
through the partition key, so no instantiation ever spans shards — the
shards are non-interacting by construction and the union of the shard
runs equals a whole-memory run, which :meth:`verify_against_whole`
checks and the tests assert.

Shard makespans also give the user-visible speedup estimate:
``speedup = Σ shard_cost / max shard_cost`` (perfect when balanced).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.interpreter import Interpreter, MatcherName
from repro.engine.result import RunResult
from repro.errors import EngineError
from repro.lang.production import Production
from repro.wm.element import Scalar
from repro.wm.memory import WorkingMemory


@dataclass
class ShardRun:
    """One shard's engine run."""

    key: Scalar
    memory: WorkingMemory
    result: RunResult

    @property
    def firing_count(self) -> int:
        return len(self.result.firings)


class PartitionedEngine:
    """Runs one rule program independently per data shard.

    Parameters
    ----------
    productions:
        The rule program.  Should be shard-local with respect to
        ``partition_attr`` (rules whose LHS joins only within one key
        value); :meth:`verify_against_whole` detects violations.
    partition_attr:
        Attribute whose value assigns each WME to a shard.  WMEs
        missing the attribute go to every shard? — no: they raise, to
        keep the partitioning honest.
    """

    def __init__(
        self,
        productions: Sequence[Production],
        partition_attr: str,
        matcher: MatcherName = "rete",
        strategy: str = "lex",
    ) -> None:
        self.productions = list(productions)
        self.partition_attr = partition_attr
        self.matcher = matcher
        self.strategy = strategy
        self.shards: list[ShardRun] = []

    # -- partitioning ----------------------------------------------------------------

    def split(self, memory: WorkingMemory) -> dict[Scalar, WorkingMemory]:
        """Split ``memory`` into per-key shard memories."""
        shards: dict[Scalar, WorkingMemory] = {}
        for wme in memory:
            if self.partition_attr not in wme:
                raise EngineError(
                    f"WME {wme} lacks partition attribute "
                    f"{self.partition_attr!r}"
                )
            key = wme[self.partition_attr]
            shard = shards.get(key)
            if shard is None:
                shard = WorkingMemory()
                shards[key] = shard
            shard.add(wme)
        return shards

    # -- execution -------------------------------------------------------------------

    def run(
        self, memory: WorkingMemory, max_cycles: int = 10_000
    ) -> list[ShardRun]:
        """Split and run every shard to quiescence (independently)."""
        self.shards = []
        for key, shard_memory in sorted(
            self.split(memory).items(), key=lambda kv: repr(kv[0])
        ):
            result = Interpreter(
                self.productions,
                shard_memory,
                matcher=self.matcher,
                strategy=self.strategy,
            ).run(max_cycles=max_cycles)
            self.shards.append(ShardRun(key, shard_memory, result))
        return self.shards

    def merged_state(self) -> frozenset:
        """Union of the shard memories' value identities."""
        out: set = set()
        for shard in self.shards:
            out |= shard.memory.value_identity_set()
        return frozenset(out)

    def speedup_estimate(self) -> float:
        """``Σ shard firings / max shard firings`` — the user-visible
        parallel speedup with one processor per shard, using firing
        counts as the cost proxy."""
        counts = [shard.firing_count for shard in self.shards]
        if not counts or max(counts) == 0:
            return 1.0
        return sum(counts) / max(counts)

    # -- validation -------------------------------------------------------------------

    def verify_against_whole(
        self, original: WorkingMemory, max_cycles: int = 10_000
    ) -> bool:
        """Run the same program un-partitioned and compare final states.

        True when the union of shard results equals the whole-memory
        run — the non-interaction property approach (2) relies on.
        (Requires a deterministic strategy; both runs use the engine's
        configured one.)
        """
        whole = WorkingMemory()
        for wme in original:
            whole.add(wme)
        Interpreter(
            self.productions,
            whole,
            matcher=self.matcher,
            strategy=self.strategy,
        ).run(max_cycles=max_cycles)
        return whole.value_identity_set() == self.merged_state()
