"""The full database production system engine.

* :mod:`~repro.engine.actions` — RHS action execution against working
  memory (create/modify/delete plus bind/write/halt).
* :mod:`~repro.engine.interpreter` — the classic single-execution-
  thread match–select–execute cycle of Section 2.
* :mod:`~repro.engine.parallel` — the multiple-thread mechanism over a
  real working memory: waves of concurrent firings under either lock
  scheme, with rollback of aborted firings.
* :mod:`~repro.engine.replay` — semantic-consistency validation for
  real systems: replays a parallel run's commit sequence on the
  single-thread engine (Definition 3.2 made operational).
* :mod:`~repro.engine.threaded` — genuinely multi-threaded firing
  waves, used to stress the lock manager's mutual exclusion.
"""

from repro.engine.actions import ActionExecutor, ActionOutcome
from repro.engine.result import RunResult, FiringRecord
from repro.engine.interpreter import Interpreter
from repro.engine.parallel import ParallelEngine, WaveResult
from repro.engine.replay import replay_commit_sequence, ReplayOutcome
from repro.engine.threaded import ThreadedWaveExecutor
from repro.engine.multiuser import MultiUserEngine, Session
from repro.engine.partitioned import PartitionedEngine, ShardRun

__all__ = [
    "ActionExecutor",
    "ActionOutcome",
    "RunResult",
    "FiringRecord",
    "Interpreter",
    "ParallelEngine",
    "WaveResult",
    "replay_commit_sequence",
    "ReplayOutcome",
    "ThreadedWaveExecutor",
    "MultiUserEngine",
    "Session",
    "PartitionedEngine",
    "ShardRun",
]
