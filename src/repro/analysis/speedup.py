"""Analytical speedup models (Section 5, Example 5.1).

* ``T_single(σ) = Σ_{P_j ∈ σ} T(P_j)`` — single-thread time.
* ``T_multi,uni(σ) = Σ T(P_j) + f · Σ_{P_k aborted} T(P_k)`` — the
  multiple-thread mechanism on a *uniprocessor*, where ``f ∈ [0, 1)``
  is "an averaged fraction" of aborted work.  Hence
  ``T_single ≤ T_multi,uni``: "single thread execution on a
  uniprocessor is no worse than multiple thread execution".
* On a multiprocessor, speedup is bounded by both the parallelism of
  the workload and ``Np``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.addsets import (
    AddDeleteSystem,
    Pid,
    SECTION_5_EXEC_TIMES,
    table_5_1,
    table_5_2,
)
from repro.errors import SimulationError
from repro.sim.multithread import simulate_multithread


def single_thread_time(
    exec_times: Mapping[Pid, float], sequence: Sequence[Pid]
) -> float:
    """``T_single(σ)``."""
    return sum(float(exec_times.get(p, 1.0)) for p in sequence)


def multi_thread_uniprocessor_time(
    exec_times: Mapping[Pid, float],
    committed: Sequence[Pid],
    aborted: Sequence[Pid],
    abort_fraction: float,
) -> float:
    """Example 5.1's ``T_multi,uni``.

    Raises unless ``0 <= f < 1`` (the paper's range).
    """
    if not 0 <= abort_fraction < 1:
        raise SimulationError(
            f"abort fraction must be in [0, 1), got {abort_fraction}"
        )
    committed_work = single_thread_time(exec_times, committed)
    aborted_work = single_thread_time(exec_times, aborted)
    return committed_work + abort_fraction * aborted_work


def speedup_bound(
    exec_times: Mapping[Pid, float],
    sequence: Sequence[Pid],
    processors: int,
) -> float:
    """An upper bound on attainable speedup for firing σ's productions
    in one parallel wave: ``min(Σ T / max T, Np)``."""
    if not sequence:
        return 1.0
    total = single_thread_time(exec_times, sequence)
    longest = max(float(exec_times.get(p, 1.0)) for p in sequence)
    return min(total / longest, float(processors))


@dataclass(frozen=True)
class SpeedupCase:
    """One of the paper's worked speedup examples."""

    name: str
    system_factory: Callable[[], AddDeleteSystem]
    processors: int
    expected_single: float
    expected_multi: float
    expected_speedup: float

    def run(self) -> dict[str, float]:
        """Simulate and return measured-vs-expected values."""
        result = simulate_multithread(self.system_factory(), self.processors)
        return {
            "single": result.single_thread_time,
            "multi": result.makespan,
            "speedup": result.speedup(),
            "expected_single": self.expected_single,
            "expected_multi": self.expected_multi,
            "expected_speedup": self.expected_speedup,
        }

    def matches_paper(self, tolerance: float = 1e-9) -> bool:
        measured = self.run()
        return (
            abs(measured["single"] - self.expected_single) <= tolerance
            and abs(measured["multi"] - self.expected_multi) <= tolerance
        )


def _table_5_1_slow_p2() -> AddDeleteSystem:
    times = dict(SECTION_5_EXEC_TIMES)
    times["P2"] = times["P2"] + 1  # Section 5.2: T(P2) increased by 1
    return table_5_1(times)


def section_5_cases() -> tuple[SpeedupCase, ...]:
    """All four worked examples of Section 5 as runnable cases."""
    return (
        SpeedupCase(
            "fig5.1-base", table_5_1, 4, 9.0, 4.0, 2.25
        ),
        SpeedupCase(
            "fig5.2-conflict", table_5_2, 4, 5.0, 3.0, 5.0 / 3.0
        ),
        SpeedupCase(
            "fig5.3-exec-time", _table_5_1_slow_p2, 4, 10.0, 4.0, 2.5
        ),
        SpeedupCase(
            "fig5.4-processors", table_5_1, 3, 9.0, 6.0, 1.5
        ),
    )
