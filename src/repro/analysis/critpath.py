"""Critical-path extraction, abort-chain attribution, bench diffing.

The analysis half of the causal-tracing layer: the span trees emitted
by the engines (:mod:`repro.obs.spans`) answer the Section 5 questions
only once they are *reduced* — where did each wave's time go
(lock-wait vs. match vs. RHS, the Figure 5.1/5.3 decomposition), and
which committed Wa transaction caused each Rc abort (the Table
4.1/Figure 5.2 commit-rule behavior).

Three toolkits:

* **Per-cycle attribution** (:func:`cycle_breakdowns`) — for every
  ``cycle`` span, a sweep over its descendants attributes each instant
  of the cycle to the *deepest* covering span's category (``lock_wait``
  / ``match`` / ``acquire`` / ``rhs`` / ``other``).  The buckets sum
  to the cycle duration exactly, so summing cycles against the ``run``
  span's makespan is a built-in self-check (:func:`coverage`).
  :func:`critical_chain` extracts the dominant child chain — the
  longest spine of each wave.
* **Abort chains** (:func:`abort_chains`) — walks ``rc_wa_abort``
  links, mapping every rule-(ii) victim back to the committing Wa
  transaction's span.
* **Bench regression diff** (:func:`diff_bench`) — compares two
  ``BENCH_*.json`` files (the benchmark harness output) value by
  value with a configurable relative tolerance; ``repro obs diff``
  exits non-zero when anything regressed.

All functions accept live :class:`~repro.obs.spans.Span` objects, a
:class:`~repro.obs.spans.SpanRecorder`, or plain span dicts re-read
from a JSONL dump — analysis works offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Attribution buckets, in report order.
CATEGORIES = ("lock_wait", "match", "acquire", "rhs", "storage", "other")


def categorize(name: str) -> str:
    """Map a span name to its attribution bucket."""
    if name.startswith("lock."):
        return "lock_wait"
    if name.startswith("match") or name == "phase.match":
        return "match"
    if name == "phase.acquire" or name == "acquire":
        return "acquire"
    if name in ("firing", "rhs", "phase.act") or name.startswith("txn."):
        return "rhs"
    if name.startswith("storage."):
        return "storage"
    return "other"


# -- span normalization ------------------------------------------------------------------


@dataclass
class SpanNode:
    """A normalized span: live object or JSONL dict, same shape."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None
    fields: dict
    links: list[tuple[int, str]]
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def label(self) -> str:
        tag = self.fields.get("rule") or self.fields.get("txn")
        return f"{self.name}[{tag}]" if tag else self.name


def _normalize(spans: Iterable) -> list[SpanNode]:
    out: list[SpanNode] = []
    for span in spans:
        if isinstance(span, Mapping):
            out.append(
                SpanNode(
                    span_id=span["span_id"],
                    parent_id=span.get("parent_id"),
                    name=span["name"],
                    start=span["start"],
                    end=span.get("end"),
                    fields=dict(span.get("fields", {})),
                    links=[
                        (link["target"], link.get("kind", "causes"))
                        for link in span.get("links", [])
                    ],
                )
            )
        else:  # live Span
            out.append(
                SpanNode(
                    span_id=span.span_id,
                    parent_id=span.parent_id,
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    fields=dict(span.fields),
                    links=list(span.links),
                )
            )
    return out


def build_tree(spans: Iterable) -> tuple[list[SpanNode], dict[int, SpanNode]]:
    """Normalize spans and wire parent/child pointers.

    Returns ``(roots, by_id)``; spans whose parent fell out of the
    ring buffer are treated as roots.
    """
    nodes = _normalize(
        spans.spans() if hasattr(spans, "spans") else spans
    )
    by_id = {node.span_id: node for node in nodes}
    roots: list[SpanNode] = []
    for node in nodes:
        parent = (
            by_id.get(node.parent_id)
            if node.parent_id is not None
            else None
        )
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    return roots, by_id


# -- per-cycle attribution ---------------------------------------------------------------


@dataclass
class CycleBreakdown:
    """Where one wave's time went."""

    wave: int
    start: float
    duration: float
    #: category -> attributed seconds; sums to ``duration`` exactly.
    buckets: dict[str, float]
    #: The dominant chain: ``(label, clipped duration)`` per level.
    chain: list[tuple[str, float]]

    @property
    def dominant(self) -> str:
        """The heaviest non-``other`` bucket (or ``"other"``)."""
        ranked = sorted(
            self.buckets.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for name, value in ranked:
            if name != "other" and value > 0:
                return name
        return "other"


def _descendants(node: SpanNode) -> list[tuple[SpanNode, int]]:
    """All finished descendants with their depth below ``node``."""
    out: list[tuple[SpanNode, int]] = []
    stack = [(child, 1) for child in node.children]
    while stack:
        current, depth = stack.pop()
        if current.end is not None:
            out.append((current, depth))
        stack.extend((child, depth + 1) for child in current.children)
    return out


def _attribute(cycle: SpanNode) -> dict[str, float]:
    """Sweep the cycle interval; deepest covering span wins each slice."""
    buckets = {name: 0.0 for name in CATEGORIES}
    lo, hi = cycle.start, cycle.end if cycle.end is not None else cycle.start
    if hi <= lo:
        return buckets
    covers = [
        (max(node.start, lo), min(node.end, hi), depth, categorize(node.name))
        for node, depth in _descendants(cycle)
        if min(node.end, hi) > max(node.start, lo)
    ]
    boundaries = sorted(
        {lo, hi}
        | {start for start, _, _, _ in covers}
        | {end for _, end, _, _ in covers}
    )
    for left, right in zip(boundaries, boundaries[1:]):
        if right <= lo or left >= hi:
            continue
        mid = (left + right) / 2.0
        best_depth, best_cat = -1, "other"
        for start, end, depth, cat in covers:
            if start <= mid < end and depth > best_depth:
                best_depth, best_cat = depth, cat
        buckets[best_cat] += right - left
    return buckets


def critical_chain(node: SpanNode) -> list[tuple[str, float]]:
    """The dominant descent: at each level, the longest finished child."""
    chain: list[tuple[str, float]] = []
    current = node
    while True:
        finished = [c for c in current.children if c.end is not None]
        if not finished:
            break
        heaviest = max(finished, key=lambda c: (c.duration, -c.span_id))
        chain.append((heaviest.label(), heaviest.duration))
        current = heaviest
    return chain


def cycle_breakdowns(spans: Iterable) -> list[CycleBreakdown]:
    """One :class:`CycleBreakdown` per finished ``cycle`` span."""
    roots, by_id = build_tree(spans)
    out: list[CycleBreakdown] = []
    for node in by_id.values():
        if node.name != "cycle" or node.end is None:
            continue
        out.append(
            CycleBreakdown(
                wave=int(node.fields.get("wave", len(out) + 1)),
                start=node.start,
                duration=node.duration,
                buckets=_attribute(node),
                chain=critical_chain(node),
            )
        )
    out.sort(key=lambda b: (b.start, b.wave))
    return out


def makespan(spans: Iterable) -> float:
    """The run's measured wall (or virtual) extent.

    The ``run`` span when present; otherwise the envelope of all
    finished spans.
    """
    roots, by_id = build_tree(spans)
    runs = [
        node for node in by_id.values()
        if node.name == "run" and node.end is not None
    ]
    if runs:
        return sum(node.duration for node in runs)
    finished = [n for n in by_id.values() if n.end is not None]
    if not finished:
        return 0.0
    return max(n.end for n in finished) - min(n.start for n in finished)


def coverage(spans: Iterable) -> float:
    """Σ per-cycle critical-path time over the measured makespan.

    The acceptance self-check: with cycles back to back inside the
    run span this lands within a few percent of 1.0; a low value
    means spans are missing or the clock rules were violated.
    """
    total = makespan(spans)
    if total <= 0:
        return 0.0
    return sum(b.duration for b in cycle_breakdowns(spans)) / total


# -- shard attribution -------------------------------------------------------------------


@dataclass
class ShardAttribution:
    """Where the partitioned matcher's shard time went across a run.

    Built from ``match.flush`` spans.  Shard busy-times come from
    per-shard ``match.shard`` child spans when the substrate emits
    them (thread/serial on the wall clock), or from the
    ``shard_seconds`` flush annotation the DES and **process**
    substrates record instead — DES seconds are virtual charges, and
    process seconds are worker self-times reported over IPC (they
    overlap in parent wall time, so they can only ever be fields).
    """

    #: Finished ``match.flush`` spans observed.
    flushes: int
    #: shard index -> summed busy seconds (virtual or worker-reported).
    shard_seconds: dict[int, float]
    #: Σ flush-span durations (the parent-side cost of the barriers).
    flush_wall: float
    #: IPC payload bytes (process backend; 0 elsewhere).
    ipc_bytes: int

    @property
    def busy(self) -> float:
        """Total shard busy time across the run."""
        return sum(self.shard_seconds.values())

    @property
    def imbalance(self) -> float:
        """Busiest shard over mean shard busy time (1.0 = balanced)."""
        if not self.shard_seconds:
            return 1.0
        values = list(self.shard_seconds.values())
        mean = sum(values) / len(values)
        if mean <= 0:
            return 1.0
        return max(values) / mean


def shard_attribution(spans: Iterable) -> ShardAttribution | None:
    """Reduce ``match.flush`` spans to per-shard busy time.

    Returns None when the run used a monolithic matcher (no flush
    spans) — callers skip the report section.
    """
    roots, by_id = build_tree(spans)
    shard_seconds: dict[int, float] = {}
    flushes = 0
    flush_wall = 0.0
    ipc_bytes = 0
    for node in by_id.values():
        if node.name != "match.flush" or node.end is None:
            continue
        flushes += 1
        flush_wall += node.duration
        ipc_bytes += int(node.fields.get("ipc_bytes_out", 0))
        ipc_bytes += int(node.fields.get("ipc_bytes_in", 0))
        annotated = node.fields.get("shard_seconds")
        if annotated is not None:
            for index, seconds in enumerate(annotated):
                shard_seconds[index] = (
                    shard_seconds.get(index, 0.0) + float(seconds)
                )
            continue
        for child in node.children:
            if child.name != "match.shard" or child.end is None:
                continue
            index = int(child.fields.get("shard", 0))
            shard_seconds[index] = (
                shard_seconds.get(index, 0.0) + child.duration
            )
    if not flushes:
        return None
    return ShardAttribution(
        flushes=flushes,
        shard_seconds=shard_seconds,
        flush_wall=flush_wall,
        ipc_bytes=ipc_bytes,
    )


# -- abort attribution -------------------------------------------------------------------


@dataclass
class AbortChain:
    """One rule-(ii) abort mapped back to its cause."""

    victim_rule: str
    victim_txn: str
    victim_span: int
    committer_rule: str
    committer_txn: str
    committer_span: int
    objs: tuple[str, ...]


def abort_chains(spans: Iterable) -> list[AbortChain]:
    """Every ``rc_wa_abort`` link as a victim → committer chain."""
    roots, by_id = build_tree(spans)
    out: list[AbortChain] = []
    for node in by_id.values():
        for target_id, kind in node.links:
            if kind != "rc_wa_abort":
                continue
            committer = by_id.get(target_id)
            out.append(
                AbortChain(
                    victim_rule=str(node.fields.get("rule", "?")),
                    victim_txn=str(node.fields.get("txn", "?")),
                    victim_span=node.span_id,
                    committer_rule=str(
                        committer.fields.get("rule", "?")
                        if committer is not None else "?"
                    ),
                    committer_txn=str(
                        node.fields.get("aborted_by_txn")
                        or (
                            committer.fields.get("txn", "?")
                            if committer is not None else "?"
                        )
                    ),
                    committer_span=target_id,
                    objs=tuple(
                        str(o)
                        for o in node.fields.get("conflict_objs", ())
                    ),
                )
            )
    out.sort(key=lambda c: (c.victim_span, c.committer_span))
    return out


# -- BENCH_*.json regression diff --------------------------------------------------------


@dataclass
class DiffEntry:
    """One compared quantity between two benchmark files."""

    key: str
    a: object
    b: object
    #: Relative delta ``(b - a) / |a|`` for numeric pairs, else None.
    delta: float | None
    regressed: bool
    note: str = ""


@dataclass
class BenchDiff:
    """The full comparison of two ``BENCH_*.json`` payloads."""

    entries: list[DiffEntry]
    tolerance: float

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _iter_bench_values(payload: dict):
    """Yield ``(key, value)`` comparison points from one BENCH payload."""
    for nodeid, test in sorted(payload.get("tests", {}).items()):
        wall = test.get("wall_seconds")
        if wall is not None:
            yield f"{nodeid}::wall_seconds", wall
        for table_index, table in enumerate(test.get("reports", [])):
            title = table.get("title", f"report[{table_index}]")
            for row in table.get("rows", []):
                quantity = row.get("quantity", "?")
                yield (
                    f"{nodeid}::{title}::{quantity}",
                    row.get("measured"),
                )


def diff_bench(
    a: dict,
    b: dict,
    tolerance: float = 0.15,
    compare_wall: bool = True,
) -> BenchDiff:
    """Compare two benchmark payloads with a relative tolerance.

    Rules:

    * ``wall_seconds`` regresses only when ``b`` is *slower* than
      ``a`` by more than ``tolerance`` (faster is fine);
    * numeric measured values regress when they move in *either*
      direction by more than ``tolerance`` (they are reproduction
      quantities, not timings);
    * non-numeric values regress on any change;
    * a test present on one side only regresses.
    """
    values_a = dict(_iter_bench_values(a))
    values_b = dict(_iter_bench_values(b))
    entries: list[DiffEntry] = []
    for key in sorted(values_a.keys() | values_b.keys()):
        is_wall = key.endswith("::wall_seconds")
        if is_wall and not compare_wall:
            continue
        in_a, in_b = key in values_a, key in values_b
        if not (in_a and in_b):
            entries.append(
                DiffEntry(
                    key=key,
                    a=values_a.get(key),
                    b=values_b.get(key),
                    delta=None,
                    regressed=True,
                    note="missing in B" if in_a else "missing in A",
                )
            )
            continue
        va, vb = values_a[key], values_b[key]
        numeric = isinstance(va, (int, float)) and isinstance(
            vb, (int, float)
        ) and not isinstance(va, bool) and not isinstance(vb, bool)
        if numeric:
            if va == vb:
                delta = 0.0
            elif va == 0:
                delta = float("inf") if vb > 0 else float("-inf")
            else:
                delta = (vb - va) / abs(va)
            if is_wall:
                regressed = delta > tolerance
                note = "slower" if regressed else ""
            else:
                regressed = abs(delta) > tolerance
                note = "drifted" if regressed else ""
            entries.append(
                DiffEntry(
                    key=key, a=va, b=vb, delta=delta,
                    regressed=regressed, note=note,
                )
            )
        else:
            changed = va != vb
            entries.append(
                DiffEntry(
                    key=key, a=va, b=vb, delta=None,
                    regressed=changed, note="changed" if changed else "",
                )
            )
    return BenchDiff(entries=entries, tolerance=tolerance)
