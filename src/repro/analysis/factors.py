"""Parameter sweeps around Section 5's factors.

"The degree of parallelism attained by the multiple thread mechanism
depends on various factors.  The ones we discuss are (i) Degree of
interference (ii) Number of available processors (iii) Execution times
of individual productions."  The paper varies each by one worked
example; these sweeps generalize each example over randomized
workloads so the *shape* claims become measurable curves.
"""

from __future__ import annotations

from statistics import mean
from typing import Sequence

from repro.sim.metrics import SweepPoint
from repro.sim.multithread import simulate_multithread
from repro.sim.workload import random_add_delete_system


def sweep_conflict_degree(
    degrees: Sequence[float] = (0.0, 0.1, 0.2, 0.35, 0.5, 0.7),
    n_productions: int = 16,
    processors: int = 16,
    trials: int = 10,
    seed: int = 0,
) -> list[SweepPoint]:
    """Speedup vs. degree of conflict (generalizes Figure 5.2).

    Each point averages ``trials`` random systems at that conflict
    degree.  Expected shape: speedup decreases as conflict increases —
    more productions are deactivated/aborted instead of running in
    parallel.
    """
    points: list[SweepPoint] = []
    for degree in degrees:
        singles: list[float] = []
        multis: list[float] = []
        for trial in range(trials):
            system = random_add_delete_system(
                n_productions,
                conflict_degree=degree,
                activation_degree=0.15,
                seed=seed * 1_000 + trial,
            )
            result = simulate_multithread(system, processors)
            if result.makespan <= 0:
                continue
            singles.append(result.single_thread_time)
            multis.append(result.makespan)
        if multis:
            points.append(
                SweepPoint(degree, mean(singles), mean(multis))
            )
    return points


def sweep_processors(
    processor_counts: Sequence[int] = (1, 2, 3, 4, 6, 8, 12, 16),
    n_productions: int = 16,
    conflict_degree: float = 0.15,
    trials: int = 10,
    seed: int = 1,
) -> list[SweepPoint]:
    """Speedup vs. Np (generalizes Figure 5.4).

    Expected shape: speedup rises with Np and saturates once
    ``Np >= max |PA|`` ("N_p >= max |PA| ... will expedite execution").
    """
    points: list[SweepPoint] = []
    for count in processor_counts:
        singles: list[float] = []
        multis: list[float] = []
        for trial in range(trials):
            system = random_add_delete_system(
                n_productions,
                conflict_degree=conflict_degree,
                activation_degree=0.15,
                seed=seed * 1_000 + trial,
            )
            result = simulate_multithread(system, count)
            if result.makespan <= 0:
                continue
            singles.append(result.single_thread_time)
            multis.append(result.makespan)
        if multis:
            points.append(
                SweepPoint(float(count), mean(singles), mean(multis))
            )
    return points


def sweep_exec_times(
    skews: Sequence[float] = (1.0, 1.5, 2.0, 3.0, 5.0, 8.0),
    n_productions: int = 16,
    processors: int = 16,
    conflict_degree: float = 0.15,
    trials: int = 10,
    seed: int = 2,
) -> list[SweepPoint]:
    """Speedup vs. execution-time skew (generalizes Figure 5.3).

    ``skew`` is the max/min ratio of production execution times.  With
    enough processors, higher skew *lowers* speedup: the makespan is
    pinned to the longest production while T_single grows only with
    the sum.  (Figure 5.3's speedup went *up* because lengthening P2
    increased the numerator while the slowest production still pinned
    the denominator — both effects fall out of the same model.)
    """
    points: list[SweepPoint] = []
    for skew in skews:
        singles: list[float] = []
        multis: list[float] = []
        for trial in range(trials):
            system = random_add_delete_system(
                n_productions,
                conflict_degree=conflict_degree,
                activation_degree=0.15,
                time_range=(1.0, max(1.0, skew)),
                seed=seed * 1_000 + trial,
            )
            result = simulate_multithread(system, processors)
            if result.makespan <= 0:
                continue
            singles.append(result.single_thread_time)
            multis.append(result.makespan)
        if multis:
            points.append(SweepPoint(skew, mean(singles), mean(multis)))
    return points
