"""Inter-phase parallelism: overlapping match with execute.

Section 2 classifies user-transparent parallelism into "(1) intra-phase
parallelism, i.e., execution of each phase in a parallel manner,
(2) **inter-phase parallelism, i.e., overlapped execution of different
phases**".  Everything else in this repository exploits (1); this
module models (2): while cycle *i*'s RHS executes, cycle *i+1*'s match
can already run against the (not-yet-committed) database, with the
commit publishing the delta.

For per-cycle match times ``m_1..m_n`` and execute times ``e_1..e_n``:

* **sequential phases** (the plain interpreter):
  ``T_seq = Σ (m_i + e_i)``
* **two-stage pipeline** (match of cycle i+1 overlapped with execute
  of cycle i): ``T_pipe = m_1 + Σ_{i<n} max(m_{i+1}, e_i) + e_n``

The overlap speedup ``T_seq / T_pipe`` is bounded by 2 (a two-stage
pipeline) and is maximized when match and execute times are balanced —
which the bench sweeps.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SimulationError


def sequential_time(
    match_times: Sequence[float], execute_times: Sequence[float]
) -> float:
    """``T_seq``: strict match-then-execute cycles."""
    _validate(match_times, execute_times)
    return sum(match_times) + sum(execute_times)


def pipelined_time(
    match_times: Sequence[float], execute_times: Sequence[float]
) -> float:
    """``T_pipe``: cycle i+1's match overlapped with cycle i's execute."""
    _validate(match_times, execute_times)
    if not match_times:
        return 0.0
    total = match_times[0]
    for i in range(len(match_times) - 1):
        total += max(match_times[i + 1], execute_times[i])
    total += execute_times[-1]
    return total


def overlap_speedup(
    match_times: Sequence[float], execute_times: Sequence[float]
) -> float:
    """``T_seq / T_pipe`` for one run; 1.0 on the empty run."""
    pipe = pipelined_time(match_times, execute_times)
    if pipe == 0:
        return 1.0
    return sequential_time(match_times, execute_times) / pipe


def balanced_speedup_bound(n_cycles: int) -> float:
    """The exact speedup of a perfectly balanced n-cycle pipeline:
    ``2n / (n + 1)`` — approaching 2 as n grows."""
    if n_cycles < 1:
        raise SimulationError(f"need >= 1 cycle, got {n_cycles}")
    return 2 * n_cycles / (n_cycles + 1)


def _validate(
    match_times: Sequence[float], execute_times: Sequence[float]
) -> None:
    if len(match_times) != len(execute_times):
        raise SimulationError(
            f"phase lists differ in length: {len(match_times)} vs "
            f"{len(execute_times)}"
        )
    if any(t < 0 for t in match_times) or any(
        t < 0 for t in execute_times
    ):
        raise SimulationError("phase times must be non-negative")
