"""Section 5 analytics: speedup models, factor sweeps, critical paths."""

from repro.analysis.speedup import (
    multi_thread_uniprocessor_time,
    single_thread_time,
    speedup_bound,
    SpeedupCase,
    section_5_cases,
)
from repro.analysis.factors import (
    sweep_conflict_degree,
    sweep_exec_times,
    sweep_processors,
)
from repro.analysis.pipeline import (
    balanced_speedup_bound,
    overlap_speedup,
    pipelined_time,
    sequential_time,
)
from repro.analysis.match_parallel import (
    lpt_makespan,
    match_speedup,
    skewed_costs,
    speedup_ceiling,
    speedup_curve,
)
from repro.analysis.critpath import (
    AbortChain,
    BenchDiff,
    CycleBreakdown,
    abort_chains,
    build_tree,
    coverage,
    critical_chain,
    cycle_breakdowns,
    diff_bench,
    makespan,
)

__all__ = [
    "single_thread_time",
    "multi_thread_uniprocessor_time",
    "speedup_bound",
    "SpeedupCase",
    "section_5_cases",
    "sweep_conflict_degree",
    "sweep_exec_times",
    "sweep_processors",
    "sequential_time",
    "pipelined_time",
    "overlap_speedup",
    "balanced_speedup_bound",
    "lpt_makespan",
    "match_speedup",
    "speedup_ceiling",
    "skewed_costs",
    "speedup_curve",
    "AbortChain",
    "BenchDiff",
    "CycleBreakdown",
    "abort_chains",
    "build_tree",
    "coverage",
    "critical_chain",
    "cycle_breakdowns",
    "diff_bench",
    "makespan",
]
