"""Intra-phase parallelism: parallelizing the match phase itself.

Section 2's user-transparent form "(1) intra-phase parallelism, i.e.,
execution of each phase in a parallel manner", and the survey's
observation that "the match phase is the bottleneck [FORG82]" with
"parallel algorithms and specialized architectures for matching
[GUPT86, MIRA84, RAMN86, SHAW81, STOL84]".

The standard software realization partitions productions across
processors: each processor matches its share of the rules against the
delta.  This module models that as list scheduling of per-production
match costs onto ``Np`` processors:

* :func:`lpt_makespan` — Longest-Processing-Time-first scheduling, the
  classical 4/3-approximation;
* :func:`match_speedup` — sequential-sum over parallel makespan;
* Gupta's empirical law (the [GUPT84] "sources of parallelism" report)
  that match speedup saturates quickly because per-production costs
  are highly skewed — reproduced by :func:`speedup_curve` on skewed
  cost distributions.
"""

from __future__ import annotations

import heapq
import random
from typing import Sequence

from repro.errors import SimulationError


def lpt_makespan(costs: Sequence[float], processors: int) -> float:
    """Makespan of LPT list scheduling on ``processors`` machines."""
    if processors < 1:
        raise SimulationError(f"need >= 1 processor, got {processors}")
    if any(c < 0 for c in costs):
        raise SimulationError("match costs must be non-negative")
    loads = [0.0] * min(processors, max(1, len(costs)))
    heap = list(loads)
    heapq.heapify(heap)
    for cost in sorted(costs, reverse=True):
        lightest = heapq.heappop(heap)
        heapq.heappush(heap, lightest + cost)
    return max(heap) if heap else 0.0


def lpt_assignment(costs: Sequence[float], processors: int) -> list[int]:
    """Shard index per cost position under LPT list scheduling.

    Mirrors :func:`lpt_makespan`'s greedy exactly (ties broken toward
    the lowest shard id), so ``max`` over the induced shard loads
    equals ``lpt_makespan(costs, processors)``.  This is the schedule
    :class:`repro.match.partitioned.PartitionedMatcher` realizes with
    ``assign="lpt"`` — the executable counterpart of this model.
    """
    if processors < 1:
        raise SimulationError(f"need >= 1 processor, got {processors}")
    if any(c < 0 for c in costs):
        raise SimulationError("match costs must be non-negative")
    n_shards = min(processors, max(1, len(costs)))
    heap: list[tuple[float, int]] = [
        (0.0, shard) for shard in range(n_shards)
    ]
    heapq.heapify(heap)
    assignment = [0] * len(costs)
    order = sorted(
        range(len(costs)), key=lambda i: -costs[i]
    )
    for index in order:
        load, shard = heapq.heappop(heap)
        assignment[index] = shard
        heapq.heappush(heap, (load + costs[index], shard))
    return assignment


def match_speedup(costs: Sequence[float], processors: int) -> float:
    """Sequential match time over LPT-parallel match time."""
    total = sum(costs)
    makespan = lpt_makespan(costs, processors)
    if makespan == 0:
        return 1.0
    return total / makespan


def speedup_ceiling(costs: Sequence[float]) -> float:
    """The skew-imposed ceiling: ``Σ cost / max cost``.

    No processor count can beat it — the longest single production's
    match pins the phase, the software analogue of the paper's
    observation that production-level parallelism is workload-limited.
    """
    if not costs:
        return 1.0
    longest = max(costs)
    if longest == 0:
        return 1.0
    return sum(costs) / longest


def skewed_costs(
    n_productions: int,
    skew: float = 2.0,
    seed: int | None = None,
) -> list[float]:
    """Pareto-like skewed per-production match costs.

    Production-system measurements (Gupta) show a few productions
    dominate match cost; ``skew`` is the Pareto shape (smaller = more
    skewed).
    """
    if skew <= 0:
        raise SimulationError(f"skew must be positive, got {skew}")
    rng = random.Random(seed)
    return [rng.paretovariate(skew) for _ in range(n_productions)]


def speedup_curve(
    costs: Sequence[float],
    processor_counts: Sequence[int],
) -> list[tuple[int, float]]:
    """(Np, speedup) points for one cost vector."""
    return [
        (count, match_speedup(costs, count))
        for count in processor_counts
    ]
