"""The :class:`ReteMatcher` facade over the alpha and beta networks.

Building a production's network walks its LHS left to right, sharing
alpha memories globally (by constant pattern) and beta nodes by
(parent, element) — so two rules with a common LHS prefix share the
whole prefix, Rete's second key property from Section 2.
"""

from __future__ import annotations

from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.rete.alpha import AlphaNetwork
from repro.match.rete.nodes import (
    DummyTopNode,
    JoinNode,
    NegativeNode,
    NetworkState,
    ProductionNode,
    TokenStore,
)
from repro.wm.memory import WMDelta, WorkingMemory


class ReteMatcher(BaseMatcher):
    """Incremental matcher implementing the :class:`Matcher` protocol.

    Statistics useful to benchmarks are exposed as attributes:
    ``activation_count`` (alpha activations processed) and the node
    counts via :meth:`stats`.
    """

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        self.state = NetworkState()
        self.alpha = AlphaNetwork()
        self.top = DummyTopNode(self.state)
        self._pnodes: dict[str, ProductionNode] = {}
        self._shared_nodes: dict[tuple, JoinNode | NegativeNode] = {}
        self.activation_count = 0

    # -- production management ------------------------------------------------------

    def add_production(self, production: Production) -> None:
        """Compile ``production`` into the network.

        If the matcher is attached, newly created alpha memories are
        back-filled from the live store, so existing WMEs immediately
        produce instantiations.

        Sharing stays intact under the slotted token layout: slot
        assignment is a pure function of the LHS element sequence, so
        two productions sharing a prefix compile identical widths and
        slots for it — the shared nodes' step closures are
        interchangeable.
        """
        if production.name in self._pnodes:
            self.remove_production(production.name)
        plan = self._register(production)
        # The root token's payload is the layout's empty token; the
        # base-class plan guard keeps the layout uniform per network.
        self.top.root.data = plan.empty_token()
        current: TokenStore = self.top
        for position, element in enumerate(production.lhs):
            step = plan.steps[position]
            alpha = self.alpha.build_or_share(element)
            fresh_alpha = len(alpha) == 0 and self._attached
            if fresh_alpha:
                self._backfill(alpha)
            share_key = (id(current), element, element.negated)
            shared = self._shared_nodes.get(share_key)
            if shared is not None:
                current = (
                    shared.memory
                    if isinstance(shared, JoinNode)
                    else shared
                )
                continue
            if element.negated:
                negative = NegativeNode(self.state, current, alpha, step)
                self._shared_nodes[share_key] = negative
                self._prime(negative)
                current = negative
            else:
                join = JoinNode(self.state, current, alpha, step)
                self._shared_nodes[share_key] = join
                self._prime(join)
                current = join.memory
        pnode = ProductionNode(
            self.state, current, plan, self.conflict_set
        )
        self._pnodes[production.name] = pnode
        self._prime(pnode)

    def remove_production(self, name: str) -> None:
        """Retract the rule's instantiations and deactivate its p-node.

        Simplification: interior nodes are left in place (they are
        shared and cheap); only the production node is deactivated.
        """
        self._unregister(name)
        pnode = self._pnodes.pop(name, None)
        if pnode is not None:
            pnode.retract_all()
            try:
                pnode.parent.children.remove(pnode)
            except ValueError:
                pass

    # -- wiring ------------------------------------------------------------------------

    def _backfill(self, alpha) -> None:
        """Populate a brand-new alpha memory from the live store."""
        for wme in self.memory.elements(alpha.pattern.relation):
            if alpha.accepts(wme):
                alpha.items[wme.timetag] = wme

    def _prime(self, node) -> None:
        """Feed a freshly created node its parent's existing tokens."""
        parent: TokenStore = node.parent
        for token in list(parent.tokens):
            if isinstance(parent, NegativeNode) and token.is_blocked():
                continue
            node.on_token_added(token)

    def rebuild(self) -> None:
        """(Re)build all matches from the current store contents.

        Called by :meth:`attach`; also usable to recover after direct
        state manipulation in tests.
        """
        for wme in self.memory:
            self.alpha.add_wme(wme)

    def _on_delta(self, delta: WMDelta) -> None:
        self.activation_count += 1
        if delta.kind == "add":
            self.alpha.add_wme(delta.wme)
        else:
            self.alpha.remove_wme(delta.wme)
            self.state.retract_wme(delta.wme)

    # -- introspection ---------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Node and memory counts, for benchmarks and debugging."""
        joins = sum(
            1 for n in self._shared_nodes.values() if isinstance(n, JoinNode)
        )
        negatives = len(self._shared_nodes) - joins
        return {
            "alpha_memories": len(self.alpha),
            "join_nodes": joins,
            "negative_nodes": negatives,
            "production_nodes": len(self._pnodes),
            "activations": self.activation_count,
        }
