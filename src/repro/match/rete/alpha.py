"""Alpha network: constant tests and alpha memories.

The alpha network filters WMEs by the tests that need no variable
context — relation name, constant equalities, constant predicates.
One :class:`AlphaMemory` exists per distinct
:meth:`~repro.lang.ast.ConditionElement.alpha_key`, shared across every
production (and across positive/negated uses), implementing Rete's
"sharing of common subexpressions among LHS's of different
productions".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lang.ast import ConditionElement
from repro.wm.element import WME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.match.rete.nodes import RightActivatable


class AlphaMemory:
    """Stores the WMEs passing one alpha pattern.

    ``successors`` are the join/negative nodes reading this memory;
    they are right-activated on every add/remove.
    """

    def __init__(self, pattern: ConditionElement) -> None:
        # The pattern is stored stripped of variable tests: only the
        # relation/constant part matters here; variable tests are
        # evaluated by the join nodes.
        self.pattern = pattern
        self.items: dict[int, WME] = {}
        self.successors: list["RightActivatable"] = []
        #: Compiled constant-test check, bound once — the alpha
        #: network probes every memory on every WM delta.
        self.accepts = pattern.compiled().alpha

    def activate(self, wme: WME) -> None:
        """Insert ``wme`` and right-activate the successors."""
        self.items[wme.timetag] = wme
        for successor in list(self.successors):
            successor.on_wme_added(wme)

    def deactivate(self, wme: WME) -> None:
        """Remove ``wme`` and notify successors of the retraction."""
        if self.items.pop(wme.timetag, None) is not None:
            for successor in list(self.successors):
                successor.on_wme_removed(wme)

    def __iter__(self) -> Iterator[WME]:
        return iter(list(self.items.values()))

    def __len__(self) -> int:
        return len(self.items)

    def __contains__(self, wme: object) -> bool:
        return isinstance(wme, WME) and wme.timetag in self.items


class AlphaNetwork:
    """The set of alpha memories, keyed for sharing."""

    def __init__(self) -> None:
        self._memories: dict[tuple, AlphaMemory] = {}

    def build_or_share(self, element: ConditionElement) -> AlphaMemory:
        """Return the alpha memory for ``element``'s constant pattern.

        Creates it on first use.  The caller is responsible for
        back-filling a newly created memory from the live store (the
        network does not know the store).
        """
        key = element.alpha_key()
        memory = self._memories.get(key)
        if memory is None:
            memory = AlphaMemory(element)
            self._memories[key] = memory
        return memory

    def add_wme(self, wme: WME) -> None:
        """Route an added WME to every accepting alpha memory."""
        for memory in self._memories.values():
            if memory.accepts(wme):
                memory.activate(wme)

    def remove_wme(self, wme: WME) -> None:
        """Route a removed WME to every memory holding it."""
        for memory in self._memories.values():
            memory.deactivate(wme)

    def __len__(self) -> int:
        return len(self._memories)

    def memories(self) -> list[AlphaMemory]:
        """All alpha memories (stable order not guaranteed)."""
        return list(self._memories.values())
