"""Beta part of the Rete network: tokens and node classes.

The design follows Doorenbos' formulation ("Production Matching for
Large Learning Systems") adapted to carry an explicit binding payload
per token — a fixed-width slot tuple under the default slotted layout,
or a variable-binding dict under :func:`repro.lang.compile.dict_tokens`
/ ``interpreted_conditions()``.  Join tests are the per-element step
closures from the production's token plan; because slot assignment is
a pure function of the LHS prefix, productions sharing a prefix still
share the join chain (identical widths and slots by induction from the
dummy top node).

Node taxonomy
-------------
*Token-storing nodes* hold :class:`Token` objects and feed child
*activatable* nodes:

* :class:`BetaMemory` — plain storage of partial matches.
* :class:`NegativeNode` — stores tokens annotated with the WMEs that
  currently *block* them (match the negated pattern); a token is
  propagated downstream only while unblocked.

*Activatable nodes* react to token/WME arrivals:

* :class:`JoinNode` — joins its parent's tokens with an alpha memory.
* :class:`NegativeNode` (doubles as both kinds).
* :class:`ProductionNode` — terminal; converts full tokens into
  conflict-set instantiations.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.lang.compile import DictStep, SlottedStep, TokenPlan
from repro.match.conflict_set import ConflictSet
from repro.match.instantiation import Instantiation
from repro.match.rete.alpha import AlphaMemory
from repro.wm.element import WME


class Token:
    """One partial match: a path of WMEs through the join chain.

    ``wme`` is ``None`` for tokens created by negative nodes (absence
    contributes no element) and for the dummy root token.  ``data`` is
    the binding payload in the network's token layout — a slot tuple
    whose width is the LHS prefix width at the token's depth, or a
    binding dict.
    """

    __slots__ = (
        "parent",
        "wme",
        "data",
        "node",
        "children",
        "blockers",
        "instantiation",
    )

    def __init__(
        self,
        parent: "Token | None",
        wme: WME | None,
        data,
        node: "TokenStore | ProductionNode | None",
    ) -> None:
        self.parent = parent
        self.wme = wme
        self.data = data
        self.node = node
        self.children: list[Token] = []
        #: WMEs currently matching a negated pattern (NegativeNode only).
        self.blockers: dict[int, WME] = {}
        #: Instantiation emitted for this token (ProductionNode only).
        self.instantiation: Instantiation | None = None
        if parent is not None:
            parent.children.append(self)

    def wmes(self) -> tuple[WME, ...]:
        """The positive-element WMEs along the path, in LHS order."""
        path: list[WME] = []
        token: Token | None = self
        while token is not None:
            if token.wme is not None:
                path.append(token.wme)
            token = token.parent
        path.reverse()
        return tuple(path)

    def is_blocked(self) -> bool:
        return bool(self.blockers)


class RightActivatable(Protocol):
    """Nodes fed by an alpha memory (its ``successors``)."""

    def on_wme_added(self, wme: WME) -> None: ...

    def on_wme_removed(self, wme: WME) -> None: ...


class Activatable(Protocol):
    """Nodes fed by a token-storing parent."""

    def on_token_added(self, token: Token) -> None: ...


class TokenStore:
    """Base for nodes that store tokens (beta memories, negative nodes)."""

    def __init__(self, network: "NetworkState") -> None:
        self.network = network
        self.tokens: list[Token] = []
        self.children: list[Activatable] = []

    def _store(self, token: Token) -> None:
        self.tokens.append(token)
        self.network.register_token(token)

    def remove_token(self, token: Token) -> None:
        """Unlink ``token`` from this store (deletion bookkeeping)."""
        try:
            self.tokens.remove(token)
        except ValueError:
            pass

    def propagate(self, token: Token) -> None:
        for child in list(self.children):
            child.on_token_added(token)


class DummyTopNode(TokenStore):
    """Holds the single root token every match path starts from.

    The root token's ``data`` is the layout's empty token — set by the
    matcher when the first production registers (``()`` for slot
    tuples, ``{}`` for dicts; one network holds one layout).
    """

    def __init__(self, network: "NetworkState") -> None:
        super().__init__(network)
        self.root = Token(None, None, (), self)
        self.tokens.append(self.root)


class BetaMemory(TokenStore):
    """Stores the output tokens of one join node."""

    def add_match(self, parent: Token, wme: WME, data) -> None:
        token = Token(parent, wme, data, self)
        self._store(token)
        self.propagate(token)


class JoinNode:
    """Joins the parent store's tokens with an alpha memory.

    The join test is the condition element's variable tests/predicates,
    compiled into the step's beta closure for the network's token
    layout and evaluated against each token's payload.
    """

    def __init__(
        self,
        network: "NetworkState",
        parent: TokenStore,
        alpha: AlphaMemory,
        step: SlottedStep | DictStep,
    ) -> None:
        self.network = network
        self.parent = parent
        self.alpha = alpha
        self.step = step
        self.element = step.element
        #: Compiled join test, bound once for the activation loops.
        self._beta = step.beta
        self.memory = BetaMemory(network)
        parent.children.append(self)
        alpha.successors.append(self)

    # -- activations -----------------------------------------------------------

    def on_token_added(self, token: Token) -> None:
        beta = self._beta
        add_match = self.memory.add_match
        data = token.data
        for wme in self.alpha:
            extended = beta(wme, data)
            if extended is not None:
                add_match(token, wme, extended)

    def on_wme_added(self, wme: WME) -> None:
        beta = self._beta
        add_match = self.memory.add_match
        skip_blocked = isinstance(self.parent, NegativeNode)
        for token in list(self.parent.tokens):
            if skip_blocked and token.is_blocked():
                continue
            extended = beta(wme, token.data)
            if extended is not None:
                add_match(token, wme, extended)

    def on_wme_removed(self, wme: WME) -> None:
        # Token deletion is driven centrally by the network via the
        # wme -> tokens map; nothing to do at the join itself.
        return None

    def share_key(self) -> tuple:
        """Key for beta-level sharing of identical consecutive joins."""
        return (id(self.parent), self.element, False)


class NegativeNode(TokenStore):
    """Negated condition element: token passes while *no* WME matches.

    Stores its own tokens (wme=None) whose ``blockers`` record the
    currently matching WMEs.  A blocked token keeps its storage but has
    no downstream children; unblocking re-propagates it.
    """

    def __init__(
        self,
        network: "NetworkState",
        parent: TokenStore,
        alpha: AlphaMemory,
        step: SlottedStep | DictStep,
    ) -> None:
        super().__init__(network)
        self.parent = parent
        self.alpha = alpha
        self.step = step
        self.element = step.element
        #: Compiled join test, bound once for the activation loops.
        #: Blocker probes always evaluate against the *parent* token's
        #: payload (the step's input width); the stored own token is
        #: that payload carried past this element — padded with
        #: ``_MISSING`` for the negation's local slots, which never
        #: escape.
        self._beta = step.beta
        self._carry = step.carry
        parent.children.append(self)
        alpha.successors.append(self)

    # -- left activation ----------------------------------------------------------

    def on_token_added(self, token: Token) -> None:
        own = Token(token, None, self._carry(token.data), self)
        self._store(own)
        beta = self._beta
        for wme in self.alpha:
            if beta(wme, token.data) is not None:
                own.blockers[wme.timetag] = wme
                self.network.register_blocker(wme, own)
        if not own.is_blocked():
            self.propagate(own)

    # -- right activations -----------------------------------------------------------

    def on_wme_added(self, wme: WME) -> None:
        beta = self._beta
        for token in list(self.tokens):
            if beta(wme, token.parent.data) is None:
                continue
            was_blocked = token.is_blocked()
            token.blockers[wme.timetag] = wme
            self.network.register_blocker(wme, token)
            if not was_blocked:
                # Newly blocked: retract everything downstream of the
                # token, but keep the token itself.
                self.network.delete_descendants(token)

    def on_wme_removed(self, wme: WME) -> None:
        for token in self.network.take_blocked_tokens(wme, owner=self):
            token.blockers.pop(wme.timetag, None)
            if not token.is_blocked():
                self.propagate(token)

    def share_key(self) -> tuple:
        return (id(self.parent), self.element, True)


class ProductionNode:
    """Terminal node: full tokens become conflict-set instantiations."""

    def __init__(
        self,
        network: "NetworkState",
        parent: TokenStore,
        plan: TokenPlan,
        conflict_set: ConflictSet,
    ) -> None:
        self.network = network
        self.parent = parent
        self.plan = plan
        self.production = plan.production
        self.conflict_set = conflict_set
        self.active = True
        parent.children.append(self)

    def on_token_added(self, token: Token) -> None:
        if not self.active:
            return
        own = Token(token, None, token.data, self)
        self.network.register_token(own)
        own.instantiation = self.plan.instantiate(token.wmes(), token.data)
        self.conflict_set.add(own.instantiation)

    def remove_token(self, token: Token) -> None:
        if token.instantiation is not None:
            self.conflict_set.remove(token.instantiation)
            token.instantiation = None

    def retract_all(self) -> None:
        """Deactivate and retract every live instantiation of this rule."""
        self.active = False
        for instantiation in self.conflict_set.for_rule(self.production.name):
            self.conflict_set.remove(instantiation)


class NetworkState:
    """Shared deletion bookkeeping for one Rete network.

    Maintains the maps that make WME retraction O(affected matches):

    * ``tokens_by_wme`` — tokens whose own WME is the retracted one,
    * ``blocked_by_wme`` — negative-node tokens blocked by it.
    """

    def __init__(self) -> None:
        self._tokens_by_wme: dict[int, list[Token]] = {}
        self._blocked_by_wme: dict[int, list[Token]] = {}

    # -- registration -------------------------------------------------------------

    def register_token(self, token: Token) -> None:
        if token.wme is not None:
            self._tokens_by_wme.setdefault(token.wme.timetag, []).append(
                token
            )

    def register_blocker(self, wme: WME, token: Token) -> None:
        self._blocked_by_wme.setdefault(wme.timetag, []).append(token)

    def take_blocked_tokens(
        self, wme: WME, owner: "TokenStore | None" = None
    ) -> list[Token]:
        """Remove and return tokens blocked by ``wme``.

        When ``owner`` is given, only tokens stored in that node are
        taken; others stay registered (several negative nodes can share
        one alpha memory).
        """
        waiting = self._blocked_by_wme.get(wme.timetag)
        if not waiting:
            return []
        if owner is None:
            del self._blocked_by_wme[wme.timetag]
            return waiting
        taken = [t for t in waiting if t.node is owner]
        remaining = [t for t in waiting if t.node is not owner]
        if remaining:
            self._blocked_by_wme[wme.timetag] = remaining
        else:
            del self._blocked_by_wme[wme.timetag]
        return taken

    # -- deletion -------------------------------------------------------------------

    def retract_wme(self, wme: WME) -> None:
        """Delete every token rooted at ``wme`` (called after the alpha
        network has processed the removal)."""
        for token in self._tokens_by_wme.pop(wme.timetag, []):
            self.delete_token(token)

    def delete_token(self, token: Token) -> None:
        """Delete ``token`` and its whole subtree."""
        self.delete_descendants(token)
        if token.parent is not None:
            try:
                token.parent.children.remove(token)
            except ValueError:
                pass
        if token.node is not None:
            token.node.remove_token(token)
        for blocker_tag in list(token.blockers):
            waiting = self._blocked_by_wme.get(blocker_tag)
            if waiting and token in waiting:
                waiting.remove(token)
        if token.wme is not None:
            siblings = self._tokens_by_wme.get(token.wme.timetag)
            if siblings and token in siblings:
                siblings.remove(token)

    def delete_descendants(self, token: Token) -> None:
        """Delete the children subtrees of ``token``, keeping ``token``."""
        while token.children:
            self.delete_token(token.children[-1])

    def __iter__(self) -> Iterator[Token]:  # pragma: no cover - debug aid
        for tokens in self._tokens_by_wme.values():
            yield from tokens
