"""The Rete match network [FORG82].

Rete achieves the two properties the paper highlights (Section 2):

1. *Incremental condition evaluation* — partial matches are stored in
   beta memories, so a working-memory delta costs work proportional to
   the affected matches, not to the whole database.
2. *Sharing of common subexpressions* — condition elements with the
   same relation and constant tests share one alpha node/memory across
   all productions (and consecutive identical join steps share beta
   nodes).

Layout: :mod:`~repro.match.rete.alpha` (constant-test network and
alpha memories), :mod:`~repro.match.rete.nodes` (tokens, beta
memories, join/negative/production nodes), and
:mod:`~repro.match.rete.network` (the :class:`ReteMatcher` facade).
"""

from repro.match.rete.network import ReteMatcher

__all__ = ["ReteMatcher"]
