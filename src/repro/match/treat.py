"""The TREAT matcher [MIRA84].

TREAT keeps *alpha* memories and the *conflict set* across cycles but —
unlike Rete — stores no intermediate join results (beta memories).  On
each working-memory delta it:

* **add(w)**: for every production and every positive condition element
  whose constant tests accept ``w``, enumerates the instantiations that
  use ``w`` in that position (joining the other positions against the
  live store) and adds them; and for every *negated* element accepting
  ``w``, retracts the instantiations ``w`` now invalidates.
* **remove(w)**: retracts the instantiations that mention ``w``
  (conflict-set retention makes this a filter, no re-join needed); for
  productions with a negated element accepting ``w``, conservatively
  recomputes the rule, since removing a blocker can create matches.

The TREAT-vs-Rete trade (state kept vs join work redone) is measured by
``benchmarks/bench_match_algorithms.py``.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.match.naive import match_production
from repro.wm.element import Scalar, WME
from repro.wm.memory import WMDelta, WorkingMemory


def match_with_fixed(
    production: Production,
    memory: WorkingMemory,
    fixed_index: int,
    fixed_wme: WME,
) -> Iterator[Instantiation]:
    """Instantiations of ``production`` using ``fixed_wme`` at LHS
    position ``fixed_index`` (0-based, must be a positive element)."""
    yield from _extend_fixed(
        production, memory, 0, (), {}, fixed_index, fixed_wme
    )


def _extend_fixed(
    production: Production,
    memory: WorkingMemory,
    index: int,
    matched: tuple[WME, ...],
    bindings: Mapping[str, Scalar],
    fixed_index: int,
    fixed_wme: WME,
) -> Iterator[Instantiation]:
    if index == len(production.lhs):
        yield Instantiation.build(production, matched, bindings)
        return
    element = production.lhs[index]
    match = element.compiled().match
    if element.negated:
        for wme in memory.select(element.relation):
            if match(wme, bindings) is not None:
                return
        yield from _extend_fixed(
            production, memory, index + 1, matched, bindings,
            fixed_index, fixed_wme,
        )
        return
    if index == fixed_index:
        candidates = [fixed_wme]
    else:
        compiled = element.compiled()
        equalities = list(compiled.constant_equalities)
        for attribute, variable in compiled.variable_items:
            if variable in bindings:
                equalities.append((attribute, bindings[variable]))
        candidates = memory.select(element.relation, equalities)
    for wme in candidates:
        extended = match(wme, bindings)
        if extended is not None:
            yield from _extend_fixed(
                production, memory, index + 1, matched + (wme,), extended,
                fixed_index, fixed_wme,
            )


class TreatMatcher(BaseMatcher):
    """Conflict-set-retaining matcher implementing :class:`Matcher`."""

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        #: Join enumerations performed, exposed for benchmarks.
        self.join_count = 0

    def add_production(self, production: Production) -> None:
        self._productions[production.name] = production
        if self._attached:
            for instantiation in match_production(production, self.memory):
                self.conflict_set.add(instantiation)

    def remove_production(self, name: str) -> None:
        self._productions.pop(name, None)
        for instantiation in self.conflict_set.for_rule(name):
            self.conflict_set.remove(instantiation)

    def rebuild(self) -> None:
        self.conflict_set.clear()
        for production in self._productions.values():
            for instantiation in match_production(production, self.memory):
                self.conflict_set.add(instantiation)

    # -- incremental delta handling ----------------------------------------------------

    def _on_delta(self, delta: WMDelta) -> None:
        if delta.kind == "add":
            self._on_add(delta.wme)
        else:
            self._on_remove(delta.wme)

    def _on_add(self, wme: WME) -> None:
        for production in self._productions.values():
            for index, element in enumerate(production.lhs):
                if not element.compiled().alpha(wme):
                    continue
                if element.negated:
                    self._invalidate(production, index, wme)
                else:
                    self.join_count += 1
                    for instantiation in match_with_fixed(
                        production, self.memory, index, wme
                    ):
                        self.conflict_set.add(instantiation)

    def _invalidate(self, production: Production, index: int, wme: WME) -> None:
        """Retract instantiations whose negated element now matches ``wme``."""
        match = production.lhs[index].compiled().match
        for instantiation in self.conflict_set.for_rule(production.name):
            if match(wme, instantiation.bindings) is not None:
                self.conflict_set.remove(instantiation)

    def _on_remove(self, wme: WME) -> None:
        # Conflict-set retention: drop instantiations that used the WME.
        # The conflict set's WME→instantiations mentions index makes
        # this O(affected), not a scan of every member per removal.
        for instantiation in self.conflict_set.mentioning(wme):
            self.conflict_set.remove(instantiation)
        # Removing a blocker of a negated element can create matches;
        # recompute the affected rules (TREAT's conservative case).
        for production in self._productions.values():
            if any(
                ce.negated and ce.compiled().alpha(wme)
                for ce in production.lhs
            ):
                self.join_count += 1
                current = set(match_production(production, self.memory))
                for stale in (
                    set(self.conflict_set.for_rule(production.name)) - current
                ):
                    self.conflict_set.remove(stale)
                for fresh in current:
                    self.conflict_set.add(fresh)
