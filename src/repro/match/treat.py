"""The TREAT matcher [MIRA84].

TREAT keeps *alpha* memories and the *conflict set* across cycles but —
unlike Rete — stores no intermediate join results (beta memories).  On
each working-memory delta it:

* **add(w)**: for every production and every positive condition element
  whose constant tests accept ``w``, enumerates the instantiations that
  use ``w`` in that position (joining the other positions against the
  live store) and adds them; and for every *negated* element accepting
  ``w``, retracts the instantiations ``w`` now invalidates.
* **remove(w)**: retracts the instantiations that mention ``w``
  (conflict-set retention makes this a filter, no re-join needed); for
  productions with a negated element accepting ``w``, conservatively
  recomputes the rule, since removing a blocker can create matches.

The TREAT-vs-Rete trade (state kept vs join work redone) is measured by
``benchmarks/bench_match_algorithms.py``.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.compile import TokenPlan, build_token_plan
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.match.naive import match_production
from repro.wm.element import WME
from repro.wm.memory import WMDelta, WorkingMemory


def match_with_fixed(
    production: Production,
    memory: WorkingMemory,
    fixed_index: int,
    fixed_wme: WME,
    plan: TokenPlan | None = None,
) -> Iterator[Instantiation]:
    """Instantiations of ``production`` using ``fixed_wme`` at LHS
    position ``fixed_index`` (0-based, must be a positive element)."""
    if plan is None:
        plan = build_token_plan(production)
    yield from _extend_fixed(
        plan, memory, 0, (), plan.empty_token(), fixed_index, fixed_wme
    )


def _extend_fixed(
    plan: TokenPlan,
    memory: WorkingMemory,
    index: int,
    matched: tuple[WME, ...],
    token,
    fixed_index: int,
    fixed_wme: WME,
) -> Iterator[Instantiation]:
    if index == len(plan.steps):
        yield plan.instantiate(matched, token)
        return
    step = plan.steps[index]
    match = step.match
    if step.negated:
        for wme in memory.select(step.relation):
            if match(wme, token) is not None:
                return
        yield from _extend_fixed(
            plan, memory, index + 1, matched, step.carry(token),
            fixed_index, fixed_wme,
        )
        return
    if index == fixed_index:
        candidates = [fixed_wme]
    else:
        candidates = memory.select(
            step.relation, step.probe_equalities(token)
        )
    for wme in candidates:
        extended = match(wme, token)
        if extended is not None:
            yield from _extend_fixed(
                plan, memory, index + 1, matched + (wme,), extended,
                fixed_index, fixed_wme,
            )


class TreatMatcher(BaseMatcher):
    """Conflict-set-retaining matcher implementing :class:`Matcher`."""

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        #: Join enumerations performed, exposed for benchmarks.
        self.join_count = 0

    def add_production(self, production: Production) -> None:
        plan = self._register(production)
        if self._attached:
            for instantiation in match_production(
                production, self.memory, plan
            ):
                self.conflict_set.add(instantiation)

    def remove_production(self, name: str) -> None:
        self._unregister(name)
        for instantiation in self.conflict_set.for_rule(name):
            self.conflict_set.remove(instantiation)

    def rebuild(self) -> None:
        self.conflict_set.clear()
        for name, production in self._productions.items():
            for instantiation in match_production(
                production, self.memory, self._plans[name]
            ):
                self.conflict_set.add(instantiation)

    # -- incremental delta handling ----------------------------------------------------

    def _on_delta(self, delta: WMDelta) -> None:
        if delta.kind == "add":
            self._on_add(delta.wme)
        else:
            self._on_remove(delta.wme)

    def _on_add(self, wme: WME) -> None:
        for name, production in self._productions.items():
            plan = self._plans[name]
            for index, step in enumerate(plan.steps):
                if not step.alpha(wme):
                    continue
                if step.negated:
                    self._invalidate(production, plan, index, wme)
                else:
                    self.join_count += 1
                    for instantiation in match_with_fixed(
                        production, self.memory, index, wme, plan
                    ):
                        self.conflict_set.add(instantiation)

    def _invalidate(
        self, production: Production, plan: TokenPlan, index: int, wme: WME
    ) -> None:
        """Retract instantiations whose negated element now matches ``wme``.

        The probe evaluates against the *full* instantiation bindings
        (variables bound after the negated element are visible here, unlike
        during written-order matching), so it uses the step's full-width
        ``full_match`` and the instantiation's token — which the slotted
        path hands back without rebuilding a bindings dict per probe.
        """
        match = plan.steps[index].full_match
        token_of = plan.token_of
        for instantiation in self.conflict_set.for_rule(production.name):
            if match(wme, token_of(instantiation)) is not None:
                self.conflict_set.remove(instantiation)

    def _on_remove(self, wme: WME) -> None:
        # Conflict-set retention: drop instantiations that used the WME.
        # The conflict set's WME→instantiations mentions index makes
        # this O(affected), not a scan of every member per removal.
        for instantiation in self.conflict_set.mentioning(wme):
            self.conflict_set.remove(instantiation)
        # Removing a blocker of a negated element can create matches;
        # recompute the affected rules (TREAT's conservative case).
        for name, production in self._productions.items():
            plan = self._plans[name]
            if any(
                step.negated and step.alpha(wme) for step in plan.steps
            ):
                self.join_count += 1
                current = set(
                    match_production(production, self.memory, plan)
                )
                for stale in (
                    set(self.conflict_set.for_rule(production.name)) - current
                ):
                    self.conflict_set.remove(stale)
                for fresh in current:
                    self.conflict_set.add(fresh)
