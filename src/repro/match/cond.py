"""The cond-relations matcher ([SELL88]/[RASC88]).

The paper (Section 2): "Some recent work on database production systems
[SELL88, RASC88] has focused on the match phase, and *cond relations*
are proposed instead of the Rete network, as the database matching
algorithm."

The idea: keep the match state *in the database* as materialized
relations rather than in a pointer network.  Per distinct constant
pattern we maintain an **alpha relation** (the WMEs passing the
pattern, i.e. a materialized selection view); per production, its
instantiations are the relational **join** of its positive alpha
relations (with the variable tests as join predicates) anti-joined
against the negated ones.  A working-memory delta dirties exactly the
productions whose alpha relations changed; their cond relations are
recomputed set-at-a-time.

Cost profile: cheaper than naive (joins run over pre-filtered alpha
relations, and only dirty productions recompute) but without Rete's
intermediate join state — a middle point the match-algorithms benchmark
exposes.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.ast import ConditionElement
from repro.lang.compile import TokenPlan
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.wm.element import Timetag, WME
from repro.wm.memory import WMDelta, WorkingMemory


class AlphaRelation:
    """A materialized selection view: WMEs passing one constant pattern."""

    def __init__(self, pattern: ConditionElement) -> None:
        self.pattern = pattern
        self.rows: dict[Timetag, WME] = {}
        # Bind the compiled alpha closure once; every insert probes it.
        self.accepts = pattern.compiled().alpha

    def insert(self, wme: WME) -> bool:
        if self.accepts(wme):
            self.rows[wme.timetag] = wme
            return True
        return False

    def delete(self, wme: WME) -> bool:
        return self.rows.pop(wme.timetag, None) is not None

    def __iter__(self) -> Iterator[WME]:
        return iter(list(self.rows.values()))

    def __len__(self) -> int:
        return len(self.rows)


class CondRelationMatcher(BaseMatcher):
    """Database-style matcher: materialized alpha relations + set joins.

    Exposes ``recompute_count`` (productions recomputed) and
    ``join_count`` (join passes) for the benchmarks.
    """

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        self._alphas: dict[tuple, AlphaRelation] = {}
        self._production_alphas: dict[str, list[AlphaRelation]] = {}
        self.recompute_count = 0
        self.join_count = 0

    # -- production management ---------------------------------------------------------

    def add_production(self, production: Production) -> None:
        self._register(production)
        alphas: list[AlphaRelation] = []
        for element in production.lhs:
            key = element.alpha_key()
            alpha = self._alphas.get(key)
            if alpha is None:
                alpha = AlphaRelation(element)
                self._alphas[key] = alpha
                if self._attached:
                    for wme in self.memory.elements(element.relation):
                        alpha.insert(wme)
            alphas.append(alpha)
        self._production_alphas[production.name] = alphas
        if self._attached:
            self._recompute(production)

    def remove_production(self, name: str) -> None:
        self._unregister(name)
        self._production_alphas.pop(name, None)
        for instantiation in self.conflict_set.for_rule(name):
            self.conflict_set.remove(instantiation)

    # -- delta handling ----------------------------------------------------------------------

    def rebuild(self) -> None:
        for alpha in self._alphas.values():
            alpha.rows.clear()
        for wme in self.memory:
            for alpha in self._alphas.values():
                alpha.insert(wme)
        for production in self._productions.values():
            self._recompute(production)

    def _on_delta(self, delta: WMDelta) -> None:
        dirty_keys: set[tuple] = set()
        for key, alpha in self._alphas.items():
            changed = (
                alpha.insert(delta.wme)
                if delta.kind == "add"
                else alpha.delete(delta.wme)
            )
            if changed:
                dirty_keys.add(key)
        if not dirty_keys:
            return
        for name, alphas in self._production_alphas.items():
            if any(a.pattern.alpha_key() in dirty_keys for a in alphas):
                self._recompute(self._productions[name])

    # -- set-oriented evaluation --------------------------------------------------------------

    def _recompute(self, production: Production) -> None:
        """Re-derive one production's cond relation from its alphas."""
        self.recompute_count += 1
        alphas = self._production_alphas[production.name]
        current = set(self._join(production, alphas))
        for stale in (
            set(self.conflict_set.for_rule(production.name)) - current
        ):
            self.conflict_set.remove(stale)
        for fresh in current:
            self.conflict_set.add(fresh)

    def _join(
        self, production: Production, alphas: list[AlphaRelation]
    ) -> Iterator[Instantiation]:
        """Join the alpha relations along the LHS (anti-join negations)."""
        self.join_count += 1
        plan = self._plans[production.name]
        yield from self._extend(plan, alphas, 0, (), plan.empty_token())

    def _extend(
        self,
        plan: TokenPlan,
        alphas: list[AlphaRelation],
        index: int,
        matched: tuple[WME, ...],
        token,
    ) -> Iterator[Instantiation]:
        if index == len(plan.steps):
            yield plan.instantiate(matched, token)
            return
        step = plan.steps[index]
        alpha = alphas[index]
        # The alpha relation already filtered the constant tests, so
        # the join probes run the beta closure alone.
        beta = step.beta
        if step.negated:
            for wme in alpha:
                if beta(wme, token) is not None:
                    return
            yield from self._extend(
                plan, alphas, index + 1, matched, step.carry(token)
            )
            return
        for wme in alpha:
            extended = beta(wme, token)
            if extended is not None:
                yield from self._extend(
                    plan,
                    alphas,
                    index + 1,
                    matched + (wme,),
                    extended,
                )
