"""Multi-process match substrate: worker loop, wire format, framing.

The paper's intra-phase match parallelism (Sections 2 and 5) promises
real speedup on multiple *processors* — but CPython's GIL serializes
the :class:`~repro.match.partitioned.PartitionedMatcher` thread
backend, so its Figure 5.x speedup shapes were only ever demonstrated
on virtual (DES) clocks.  This module is the escape hatch: a
persistent pool of **worker processes**, each owning one rule shard
and a full replica of working memory, kept consistent by streaming
the same WM deltas the thread backend already replays.

Design (share-nothing, rule-partitioned — the rule class the CHR
parallelism survey and "Parallelisable Existential Rules" identify as
safely process-parallel):

* **Replication, not sharing** — each worker holds its own
  :class:`~repro.wm.memory.WorkingMemory` replica and a private inner
  matcher (naive/Rete/TREAT/cond) subscribed to it.  The parent
  streams :class:`~repro.wm.memory.WMDelta` batches; workers apply
  them, match incrementally, and return **conflict-set deltas**
  (instantiation adds/removes), never full conflict sets.
* **Compact wire format** — instantiations cross the boundary as
  ``(rule_name, wme_triples, bindings_items)`` tuples; the parent
  reconstructs against its own canonical
  :class:`~repro.lang.production.Production` objects, so the shared
  conflict set stays bit-identical to the serial oracle.  Compiled
  state (closures, token plans, cached hashes) never crosses: every
  class on the wire has a ``__reduce__`` that strips derived state,
  and workers rebuild plans from the AST on their side
  (``tests/match/test_procpool.py`` pins this).
* **Chunked pickle framing** — messages are length-prefixed pickles
  split into bounded chunks over ``multiprocessing`` pipes, so a huge
  warmup snapshot can't hit platform ``send_bytes`` limits, and the
  parent can count IPC bytes exactly (the ``procpool.bytes`` /
  ``procpool.roundtrips`` counters and per-flush span annotations).
* **Crash containment** — a worker that dies mid-batch surfaces as
  :class:`~repro.errors.MatchError` in the parent (no hang: EOF and
  a poll timeout both trip it); the pool tears down cleanly and the
  partitioned matcher restarts it from a fresh snapshot on next use.

The pool is deliberately *not* a ``concurrent.futures`` executor:
workers are stateful (replica + matcher), so requests must be routed
to the shard that owns the rule, and replies must be collected in
shard order for the deterministic merge.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from typing import Iterable, Sequence

from repro.errors import MatchError
from repro.lang.production import Production
from repro.match.instantiation import Instantiation
from repro.wm.element import WME
from repro.wm.memory import WMDelta, WorkingMemory

#: Frame chunk bound.  ``Connection.send_bytes`` rejects payloads
#: around the signed-32-bit mark on some platforms; staying far below
#: keeps framing portable and bounds peak pipe-buffer pressure.
CHUNK_BYTES = 16 << 20

#: Header layout: total payload length, chunk count.
_HEADER = struct.Struct("<QI")

#: Default seconds the parent waits on a worker reply before declaring
#: it dead.  Generous — match batches are milliseconds; only a truly
#: wedged or killed worker ever trips it.
DEFAULT_TIMEOUT = 120.0


def default_context() -> str:
    """The multiprocessing start method to use.

    ``fork`` when the platform offers it (fast warmup — the worker
    inherits loaded modules), else ``spawn``.  Overridable via the
    ``REPRO_PROCPOOL_CONTEXT`` environment variable; either way the
    protocol is spawn-safe — productions and snapshots are shipped
    explicitly, never inherited.
    """
    configured = os.environ.get("REPRO_PROCPOOL_CONTEXT")
    if configured:
        return configured
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
#
# Everything on the wire is plain tuples of scalars — no live WMEs, no
# Production ASTs in the steady state (productions ship once, at pool
# start / add_production, via their closure-free ``__reduce__``).


def encode_wme(wme: WME) -> tuple:
    """``(relation, items, timetag)`` — the WME's defining fields."""
    return (wme.relation, wme.items, wme.timetag)


def decode_wme(payload: tuple) -> WME:
    relation, items, timetag = payload
    return WME(relation, items, timetag)


def encode_delta(delta: WMDelta) -> tuple:
    return (delta.kind, delta.wme.relation, delta.wme.items,
            delta.wme.timetag)


def decode_delta(payload: tuple) -> WMDelta:
    kind, relation, items, timetag = payload
    return WMDelta(kind, WME(relation, items, timetag))


def encode_instantiation(instantiation: Instantiation) -> tuple:
    """``(rule_name, wme_triples, bindings_items)``.

    ``bindings_items`` materializes lazily from the slot token here,
    on the worker side — the slot index itself never crosses.
    """
    return (
        instantiation.production.name,
        tuple(encode_wme(w) for w in instantiation.wmes),
        instantiation.bindings_items,
    )


def decode_instantiation(
    payload: tuple, productions: dict[str, Production]
) -> Instantiation:
    """Rebuild against the parent's canonical production objects."""
    rule_name, wme_payloads, bindings_items = payload
    return Instantiation(
        productions[rule_name],
        tuple(decode_wme(w) for w in wme_payloads),
        bindings_items,
    )


# ---------------------------------------------------------------------------
# Chunked pickle framing
# ---------------------------------------------------------------------------


def send_message(conn, obj: object) -> int:
    """Frame ``obj`` onto ``conn``; returns payload bytes (sans header)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    total = len(data)
    chunks = max(1, -(-total // CHUNK_BYTES))
    conn.send_bytes(_HEADER.pack(total, chunks))
    for i in range(chunks):
        conn.send_bytes(data[i * CHUNK_BYTES:(i + 1) * CHUNK_BYTES])
    return total


def recv_message(conn, timeout: float | None = None) -> tuple[object, int]:
    """Read one framed message; returns ``(object, payload_bytes)``.

    Raises :class:`EOFError` when the peer is gone and
    :class:`TimeoutError` when ``timeout`` elapses with no header —
    the pool maps both to a dead worker.
    """
    if timeout is not None and not conn.poll(timeout):
        raise TimeoutError(f"no reply within {timeout}s")
    header = conn.recv_bytes()
    total, chunks = _HEADER.unpack(header)
    if chunks == 1:
        data = conn.recv_bytes()
    else:
        parts = [conn.recv_bytes() for _ in range(chunks)]
        data = b"".join(parts)
    if len(data) != total:
        raise MatchError(
            f"framing error: expected {total} payload bytes, "
            f"got {len(data)}"
        )
    return pickle.loads(data), total


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------


def _build_inner_matcher(inner_name: str, memory: WorkingMemory):
    # Imported here so ``spawn`` workers resolve the registry inside
    # their own interpreter, and to avoid a cycle with partitioned.py.
    from repro.match.partitioned import INNER_MATCHERS

    return INNER_MATCHERS[inner_name](memory)


def _take_encoded_delta(matcher) -> tuple[tuple, tuple]:
    """The inner matcher's conflict-set delta, encoded and sorted.

    Sorting here (recency-desc, then rule name — mirroring the
    partitioned merge key) makes worker replies deterministic, so a
    wire capture is stable across runs.
    """
    delta = matcher.conflict_set.take_delta()

    def key(instantiation):
        return (
            tuple(-t for t in instantiation.recency_key()),
            instantiation.rule_name,
        )

    added = tuple(
        encode_instantiation(i) for i in sorted(delta.added, key=key)
    )
    removed = tuple(
        encode_instantiation(i) for i in sorted(delta.removed, key=key)
    )
    return added, removed


def worker_main(conn, inner_name: str) -> None:
    """One shard's worker: replica store + private inner matcher.

    Commands (request → reply):

    * ``("reset", productions, wme_triples)`` → ``("ok", seconds,
      members, ())`` — rebuild replica and matcher from scratch; the
      reply's "delta" is the full initial membership as adds.
    * ``("replay", delta_payloads)`` → ``("ok", seconds, added,
      removed)`` — apply one batch, match incrementally.
    * ``("add_production", production)`` / ``("remove_production",
      name)`` → ``("ok", seconds, added, removed)``.
    * ``("ping",)`` → ``("ok", 0.0, (), ())`` — liveness probe.
    * ``("close",)`` — exit the loop (no reply).

    Any exception is reported as ``("error", repr, traceback_text)``
    and the loop continues — a malformed request must not take the
    replica down with it.
    """
    memory = WorkingMemory()
    matcher = _build_inner_matcher(inner_name, memory)
    matcher.attach()
    while True:
        try:
            message, _ = recv_message(conn)
        except (EOFError, OSError):
            break
        command = message[0]
        if command == "close":
            break
        try:
            started = time.perf_counter()
            if command == "reset":
                _, productions, wme_triples = message
                memory = WorkingMemory()
                matcher = _build_inner_matcher(inner_name, memory)
                matcher.add_productions(productions)
                matcher.attach()
                for payload in wme_triples:
                    memory.add(decode_wme(payload))
                matcher.conflict_set.take_delta()
                members = tuple(
                    encode_instantiation(i)
                    for i in matcher.conflict_set
                )
                reply = (
                    "ok", time.perf_counter() - started, members, (),
                )
            elif command == "replay":
                _, delta_payloads = message
                for payload in delta_payloads:
                    memory.apply(decode_delta(payload))
                seconds = time.perf_counter() - started
                added, removed = _take_encoded_delta(matcher)
                reply = ("ok", seconds, added, removed)
            elif command == "add_production":
                _, production = message
                matcher.add_production(production)
                seconds = time.perf_counter() - started
                added, removed = _take_encoded_delta(matcher)
                reply = ("ok", seconds, added, removed)
            elif command == "remove_production":
                _, name = message
                matcher.remove_production(name)
                seconds = time.perf_counter() - started
                added, removed = _take_encoded_delta(matcher)
                reply = ("ok", seconds, added, removed)
            elif command == "ping":
                reply = ("ok", 0.0, (), ())
            else:
                reply = ("error", f"unknown command {command!r}", "")
        except Exception as exc:  # noqa: BLE001 - reported to parent
            import traceback

            reply = ("error", repr(exc), traceback.format_exc())
        try:
            send_message(conn, reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()


# ---------------------------------------------------------------------------
# The parent-side pool
# ---------------------------------------------------------------------------


class ShardReply:
    """One worker's decoded reply to a routed command."""

    __slots__ = ("seconds", "added", "removed", "bytes_in")

    def __init__(self, seconds, added, removed, bytes_in) -> None:
        self.seconds = seconds
        self.added = added
        self.removed = removed
        self.bytes_in = bytes_in


class ProcessPool:
    """A persistent worker-process pool, one worker per rule shard.

    Lifecycle: construct, :meth:`start` with per-shard production
    lists and a WM snapshot, then :meth:`replay` batches /
    :meth:`add_production` / :meth:`remove_production`, and finally
    :meth:`shutdown`.  All methods raise :class:`MatchError` (after
    tearing the pool down) when a worker has died — the caller
    restarts by constructing a fresh pool.

    Attributes
    ----------
    roundtrips, bytes_out, bytes_in:
        Cumulative IPC accounting (message payload bytes, both
        directions), feeding the ``procpool.*`` counters and the
        per-flush span annotations.
    """

    def __init__(
        self,
        shards: int,
        inner_name: str,
        context: str | None = None,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        if shards < 1:
            raise MatchError(f"need >= 1 worker, got {shards}")
        import multiprocessing

        self.shards = shards
        self.inner_name = inner_name
        self.timeout = timeout
        self._ctx = multiprocessing.get_context(
            context if context is not None else default_context()
        )
        self._processes: list = []
        self._conns: list = []
        self._alive = False
        self.roundtrips = 0
        self.bytes_out = 0
        self.bytes_in = 0
        #: IPC accounting for the most recent fan-out (one "roundtrip"
        #: = one command fanned to every worker and all replies read).
        self.last_bytes_out = 0
        self.last_bytes_in = 0

    # -- lifecycle -----------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        return self._alive and all(
            p.is_alive() for p in self._processes
        )

    def start(
        self,
        assignments: Sequence[Sequence[Production]],
        snapshot: Iterable[WME],
    ) -> list[ShardReply]:
        """Spawn workers and seed each with its shard + the snapshot.

        Returns per-shard replies whose ``added`` carries the full
        initial conflict-set membership (encoded), in shard order.
        """
        if len(assignments) != self.shards:
            raise MatchError(
                f"expected {self.shards} shard assignments, "
                f"got {len(assignments)}"
            )
        if self._alive:
            self.shutdown()
        self._processes = []
        self._conns = []
        for index in range(self.shards):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=worker_main,
                args=(child_conn, self.inner_name),
                name=f"match-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)
        self._alive = True
        wme_triples = tuple(encode_wme(w) for w in snapshot)
        return self._fan_out(
            [
                ("reset", tuple(assignments[i]), wme_triples)
                for i in range(self.shards)
            ]
        )

    def shutdown(self) -> None:
        """Stop every worker; idempotent, never raises."""
        for conn in self._conns:
            try:
                send_message(conn, ("close",))
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - last resort
                    process.kill()
                    process.join(timeout=2.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._processes = []
        self._conns = []
        self._alive = False

    # -- commands ------------------------------------------------------------------------

    def replay(self, deltas: Sequence[WMDelta]) -> list[ShardReply]:
        """Stream one delta batch to every worker; replies in shard order."""
        payloads = tuple(encode_delta(d) for d in deltas)
        return self._fan_out(
            [("replay", payloads)] * self.shards
        )

    def add_production(
        self, shard: int, production: Production
    ) -> ShardReply:
        return self._route(shard, ("add_production", production))

    def remove_production(self, shard: int, name: str) -> ShardReply:
        return self._route(shard, ("remove_production", name))

    def ping(self) -> None:
        """Round-trip every worker (warmup / liveness check)."""
        self._fan_out([("ping",)] * self.shards)

    # -- plumbing ------------------------------------------------------------------------

    def _fan_out(self, messages: Sequence[tuple]) -> list[ShardReply]:
        """Send one message per worker, then collect every reply.

        Sends complete before any receive, so workers run
        concurrently; replies are read in shard order — the order the
        deterministic merge folds them in.
        """
        self._require_alive()
        self.last_bytes_out = 0
        self.last_bytes_in = 0
        for index, message in enumerate(messages):
            sent = self._send(index, message)
            self.bytes_out += sent
            self.last_bytes_out += sent
        replies = [self._recv(index) for index in range(self.shards)]
        self.roundtrips += 1
        return replies

    def _route(self, shard: int, message: tuple) -> ShardReply:
        self._require_alive()
        self.last_bytes_out = 0
        self.last_bytes_in = 0
        sent = self._send(shard, message)
        self.bytes_out += sent
        self.last_bytes_out += sent
        reply = self._recv(shard)
        self.roundtrips += 1
        return reply

    def _require_alive(self) -> None:
        if not self._alive:
            raise MatchError("process pool is not running")

    def _send(self, index: int, message: tuple) -> int:
        try:
            return send_message(self._conns[index], message)
        except (BrokenPipeError, OSError) as exc:
            self._die(index, exc)

    def _recv(self, index: int) -> ShardReply:
        try:
            reply, nbytes = recv_message(
                self._conns[index], timeout=self.timeout
            )
        except (EOFError, OSError, TimeoutError) as exc:
            self._die(index, exc)
        self.bytes_in += nbytes
        self.last_bytes_in += nbytes
        if reply[0] != "ok":
            _, error, trace = reply
            self.shutdown()
            raise MatchError(
                f"match worker {index} failed: {error}\n{trace}"
            )
        _, seconds, added, removed = reply
        return ShardReply(seconds, added, removed, nbytes)

    def _die(self, index: int, exc: Exception):
        """A worker is gone: tear the whole pool down, raise cleanly."""
        exitcode = None
        if index < len(self._processes):
            exitcode = self._processes[index].exitcode
        self.shutdown()
        raise MatchError(
            f"match worker {index} died mid-batch "
            f"(exitcode={exitcode}): {exc!r}; pool shut down — "
            f"it restarts from a fresh snapshot on next use"
        ) from exc

    def stats(self) -> dict[str, object]:
        return {
            "workers": self.shards,
            "alive": self.alive,
            "context": self._ctx.get_start_method(),
            "roundtrips": self.roundtrips,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
        }
