"""Instantiations: a production paired with the WMEs that satisfy it.

The conflict set contains *instantiations*, not bare productions: the
same rule can be active several times against different data.  An
instantiation records the matched WMEs (one per positive condition
element, in LHS order) and the variable bindings the match produced.

Instantiations are value objects — equality is (production name,
matched timetags) — so the conflict set can diff cheaply across cycles
and the refraction rule ("don't fire the same instantiation twice") is
a set-membership test.

Bindings are stored in whichever form the matcher produced them: the
dict layout passes sorted ``(name, value)`` pairs up front, the slotted
layout passes the raw slot vector plus the production's
:class:`~repro.lang.compile.VariableIndex` and ``bindings_items``
materializes lazily on first access.  Identity, hashing, and ordering
never touch bindings, so a conflict-set entry that is never fired never
pays for materializing them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.lang.production import Production
from repro.wm.element import Scalar, WME

if TYPE_CHECKING:
    from repro.lang.compile import SlotToken, VariableIndex


class Instantiation:
    """One satisfied LHS.

    Parameters
    ----------
    production:
        The matched rule.
    wmes:
        The WMEs matched by the *positive* condition elements, in LHS
        order (negated elements match absence, so contribute no WME).
    bindings_items:
        Variable bindings established by the match, as a sorted tuple
        of pairs (hashable form).  Prefer :meth:`build` /
        :meth:`from_slots` over constructing directly.
    """

    __slots__ = (
        "production",
        "wmes",
        "_bindings_items",
        "_slot_token",
        "_slot_index",
        "_bindings",
        "_timetags",
        "_identity",
        "_hash",
        "_recency_key",
        "_mea_key",
    )

    def __init__(
        self,
        production: Production,
        wmes: tuple[WME, ...],
        bindings_items: tuple[tuple[str, Scalar], ...] = (),
    ) -> None:
        self.production = production
        self.wmes = wmes
        self._bindings_items = tuple(bindings_items)
        self._slot_token = None
        self._slot_index = None
        self._bindings = None
        self._init_keys()

    def _init_keys(self) -> None:
        # Identity, hash, and the LEX/MEA ordering keys are immutable
        # functions of (production, wmes); compute them once.
        timetags = tuple(w.timetag for w in self.wmes)
        identity = (self.production.name, timetags)
        recency = tuple(sorted(timetags, reverse=True))
        self._timetags = timetags
        self._identity = identity
        self._hash = hash(identity)
        self._recency_key = recency
        # -1, not 0: timetags are non-negative and a freshly recovered
        # store legitimately starts at timetag 0, so 0 as the no-WMEs
        # sentinel would tie an all-negated instantiation with one
        # whose goal element matched timetag 0.
        self._mea_key = (timetags[0] if timetags else -1, *recency)

    @staticmethod
    def build(
        production: Production,
        wmes: tuple[WME, ...],
        bindings: Mapping[str, Scalar],
    ) -> "Instantiation":
        return Instantiation(
            production, wmes, tuple(sorted(bindings.items()))
        )

    @classmethod
    def from_slots(
        cls,
        production: Production,
        wmes: tuple[WME, ...],
        token: "SlotToken",
        index: "VariableIndex",
    ) -> "Instantiation":
        """Build from a full-width slot token without materializing the
        sorted pairs — they are derived lazily on first access."""
        inst = cls.__new__(cls)
        inst.production = production
        inst.wmes = wmes
        inst._bindings_items = None
        inst._slot_token = token
        inst._slot_index = index
        inst._bindings = None
        inst._init_keys()
        return inst

    @property
    def bindings_items(self) -> tuple[tuple[str, Scalar], ...]:
        """The bindings as a sorted tuple of pairs (lazy, cached)."""
        items = self._bindings_items
        if items is None:
            items = self._slot_index.bindings_items(self._slot_token)
            self._bindings_items = items
        return items

    @property
    def bindings(self) -> dict[str, Scalar]:
        """The variable bindings as a dict (cached — treat as frozen).

        TREAT's retraction re-match reads this once per surviving
        instantiation per delta; rebuilding the dict each access made
        retraction allocation-bound.  Callers that mutate (the RHS
        ``bind`` action) copy first.
        """
        cached = self._bindings
        if cached is None:
            cached = dict(self.bindings_items)
            self._bindings = cached
        return cached

    def slot_token(self, index: "VariableIndex") -> "SlotToken":
        """The bindings as a full-width token of ``index``'s layout.

        Free when the instantiation was built by the slotted path with
        the same index; otherwise rebuilt (and cached) from the pairs.
        """
        token = self._slot_token
        if token is not None and self._slot_index is index:
            return token
        token = index.token_from_items(self.bindings_items)
        if self._slot_token is None:
            self._slot_token = token
            self._slot_index = index
        return token

    @property
    def rule_name(self) -> str:
        """The name of the matched production."""
        return self.production.name

    def timetags(self) -> tuple[int, ...]:
        """Timetags of the matched WMEs, in LHS order (cached)."""
        return self._timetags

    def recency_key(self) -> tuple[int, ...]:
        """Timetags sorted descending — the LEX recency ordering.

        LEX compares instantiations by their sorted-descending timetag
        vectors, lexicographically; larger means more recent, i.e.
        preferred.  Cached at construction: strategy comparisons and
        the partitioned merge call this per candidate per cycle.
        """
        return self._recency_key

    def mea_key(self) -> tuple[int, ...]:
        """MEA ordering key: first-element recency, then LEX.

        MEA gives absolute priority to the recency of the WME matching
        the *first* condition element (the "means-ends" goal element),
        breaking ties with LEX.  Cached at construction; ``-1`` marks
        the no-positive-WMEs case (real timetags are non-negative).
        """
        return self._mea_key

    def mentions(self, wme: WME) -> bool:
        """True when ``wme`` is one of the matched elements."""
        return wme.timetag in self._timetags

    def identity(self) -> tuple[str, tuple[int, ...]]:
        """Equality/hashing identity: rule name + matched timetags."""
        return self._identity

    def __reduce__(self):
        # Materialize the pairs so pickles carry plain data, never the
        # slot index (whose plan closures don't pickle).
        return (
            Instantiation,
            (self.production, self.wmes, self.bindings_items),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instantiation):
            return NotImplemented
        return self._identity == other._identity

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Instantiation(production={self.production.name!r}, "
            f"timetags={self._timetags!r})"
        )

    def __str__(self) -> str:
        tags = ",".join(str(t) for t in self.timetags())
        return f"{self.production.name}[{tags}]"
