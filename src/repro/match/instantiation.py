"""Instantiations: a production paired with the WMEs that satisfy it.

The conflict set contains *instantiations*, not bare productions: the
same rule can be active several times against different data.  An
instantiation records the matched WMEs (one per positive condition
element, in LHS order) and the variable bindings the match produced.

Instantiations are value objects — equality is (production name,
matched timetags) — so the conflict set can diff cheaply across cycles
and the refraction rule ("don't fire the same instantiation twice") is
a set-membership test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.lang.production import Production
from repro.wm.element import Scalar, WME


@dataclass(frozen=True)
class Instantiation:
    """One satisfied LHS.

    Parameters
    ----------
    production:
        The matched rule.
    wmes:
        The WMEs matched by the *positive* condition elements, in LHS
        order (negated elements match absence, so contribute no WME).
    bindings:
        Variable bindings established by the match, stored as a sorted
        tuple of pairs for hashability.
    """

    production: Production
    wmes: tuple[WME, ...]
    bindings_items: tuple[tuple[str, Scalar], ...] = field(default=())

    def __post_init__(self) -> None:
        # Identity, hash, and the LEX/MEA ordering keys are immutable
        # functions of the fields, but were rebuilt (and re-sorted) on
        # every conflict-set lookup and strategy comparison.  Compute
        # them once here; ``object.__setattr__`` sidesteps the frozen
        # guard and non-field attributes stay out of dataclass
        # semantics.
        timetags = tuple(w.timetag for w in self.wmes)
        identity = (self.production.name, timetags)
        recency = tuple(sorted(timetags, reverse=True))
        object.__setattr__(self, "_timetags", timetags)
        object.__setattr__(self, "_identity", identity)
        object.__setattr__(self, "_hash", hash(identity))
        object.__setattr__(self, "_recency_key", recency)
        object.__setattr__(
            self, "_mea_key", (timetags[0] if timetags else 0, *recency)
        )

    @staticmethod
    def build(
        production: Production,
        wmes: tuple[WME, ...],
        bindings: Mapping[str, Scalar],
    ) -> "Instantiation":
        return Instantiation(
            production, wmes, tuple(sorted(bindings.items()))
        )

    @property
    def bindings(self) -> dict[str, Scalar]:
        """The variable bindings as a fresh dict."""
        return dict(self.bindings_items)

    @property
    def rule_name(self) -> str:
        """The name of the matched production."""
        return self.production.name

    def timetags(self) -> tuple[int, ...]:
        """Timetags of the matched WMEs, in LHS order (cached)."""
        return self._timetags

    def recency_key(self) -> tuple[int, ...]:
        """Timetags sorted descending — the LEX recency ordering.

        LEX compares instantiations by their sorted-descending timetag
        vectors, lexicographically; larger means more recent, i.e.
        preferred.  Cached at construction: strategy comparisons and
        the partitioned merge call this per candidate per cycle.
        """
        return self._recency_key

    def mea_key(self) -> tuple[int, ...]:
        """MEA ordering key: first-element recency, then LEX.

        MEA gives absolute priority to the recency of the WME matching
        the *first* condition element (the "means-ends" goal element),
        breaking ties with LEX.  Cached at construction.
        """
        return self._mea_key

    def mentions(self, wme: WME) -> bool:
        """True when ``wme`` is one of the matched elements."""
        return wme.timetag in self._timetags

    def identity(self) -> tuple[str, tuple[int, ...]]:
        """Equality/hashing identity: rule name + matched timetags."""
        return self._identity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instantiation):
            return NotImplemented
        return self._identity == other._identity

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        tags = ",".join(str(t) for t in self.timetags())
        return f"{self.production.name}[{tags}]"
