"""The conflict set (the paper's *set of active productions*, ``PA``).

Matchers deposit instantiation adds/removes here.  The set also keeps a
per-cycle delta so the engine can observe exactly which instantiations
a firing activated or deactivated — the concrete realization of the
paper's add sets :math:`A_i^a` and delete sets :math:`A_i^d`
(Section 3.3): "the commit of P_i adds (subtracts) the set A_i^a
(A_i^d) to (from) the conflict set PA".

Refraction (OPS5: an instantiation that has fired must not fire again)
is supported via :meth:`ConflictSet.mark_fired`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.match.instantiation import Instantiation


@dataclass(frozen=True)
class ConflictSetDelta:
    """Instantiations added and removed since the delta was opened."""

    added: frozenset[Instantiation]
    removed: frozenset[Instantiation]

    def is_empty(self) -> bool:
        return not self.added and not self.removed


class ConflictSet:
    """A mutable set of instantiations with delta tracking."""

    def __init__(self) -> None:
        self._members: dict[Instantiation, Instantiation] = {}
        self._fired: set[Instantiation] = set()
        self._added: set[Instantiation] = set()
        self._removed: set[Instantiation] = set()

    # -- mutation (called by matchers) ---------------------------------------------

    def add(self, instantiation: Instantiation) -> bool:
        """Insert; returns False when already present."""
        if instantiation in self._members:
            return False
        self._members[instantiation] = instantiation
        if instantiation in self._removed:
            self._removed.discard(instantiation)
        else:
            self._added.add(instantiation)
        return True

    def remove(self, instantiation: Instantiation) -> bool:
        """Delete; returns False when absent.  Clears refraction state."""
        if instantiation not in self._members:
            return False
        del self._members[instantiation]
        self._fired.discard(instantiation)
        if instantiation in self._added:
            self._added.discard(instantiation)
        else:
            self._removed.add(instantiation)
        return True

    def clear(self) -> None:
        """Remove everything (used when a matcher rebuilds from scratch)."""
        for instantiation in list(self._members):
            self.remove(instantiation)

    # -- refraction -------------------------------------------------------------------

    def mark_fired(self, instantiation: Instantiation) -> None:
        """Record that ``instantiation`` has fired (refraction)."""
        self._fired.add(instantiation)

    def has_fired(self, instantiation: Instantiation) -> bool:
        """True when the instantiation fired and still lingers in the set."""
        return instantiation in self._fired

    def eligible(self) -> list[Instantiation]:
        """Members that have not fired — the candidates for *select*."""
        return [m for m in self._members if m not in self._fired]

    # -- delta tracking ------------------------------------------------------------------

    def take_delta(self) -> ConflictSetDelta:
        """Return and reset the accumulated delta.

        The returned delta is exactly (A^a, A^d) of the firings since
        the previous call.
        """
        delta = ConflictSetDelta(
            frozenset(self._added), frozenset(self._removed)
        )
        self._added.clear()
        self._removed.clear()
        return delta

    def peek_delta(self) -> ConflictSetDelta:
        """The accumulated delta, without resetting it."""
        return ConflictSetDelta(
            frozenset(self._added), frozenset(self._removed)
        )

    # -- queries --------------------------------------------------------------------------

    def __contains__(self, instantiation: object) -> bool:
        return instantiation in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Instantiation]:
        return iter(list(self._members))

    def members(self) -> frozenset[Instantiation]:
        """An immutable view of the current membership."""
        return frozenset(self._members)

    def rule_names(self) -> frozenset[str]:
        """Names of productions with at least one active instantiation.

        This is the paper's production-level view of ``PA`` (its
        examples track rule names, not instantiations).
        """
        return frozenset(m.production.name for m in self._members)

    def for_rule(self, name: str) -> list[Instantiation]:
        """All active instantiations of the production called ``name``."""
        return [m for m in self._members if m.production.name == name]

    def is_empty(self) -> bool:
        """Empty conflict set — the termination condition of Section 2."""
        return not self._members
