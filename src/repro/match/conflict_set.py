"""The conflict set (the paper's *set of active productions*, ``PA``).

Matchers deposit instantiation adds/removes here.  The set also keeps a
per-cycle delta so the engine can observe exactly which instantiations
a firing activated or deactivated — the concrete realization of the
paper's add sets :math:`A_i^a` and delete sets :math:`A_i^d`
(Section 3.3): "the commit of P_i adds (subtracts) the set A_i^a
(A_i^d) to (from) the conflict set PA".

Two secondary indexes are maintained alongside the membership map, kept
in sync by :meth:`ConflictSet.add`/:meth:`ConflictSet.remove`:

* rule name → instantiations, backing :meth:`for_rule` and
  :meth:`rule_names` (called on per-delta paths by the TREAT matcher's
  negation handling and by ``remove_production``);
* WME timetag → instantiations that mention it, backing
  :meth:`mentioning` (the TREAT ``remove(w)`` retraction path), so a
  WME removal never scans the whole set.

Refraction semantics (pinned here deliberately — OPS5): *an
instantiation that has fired never fires again*.  Refraction is keyed
on instantiation **identity** (rule name + matched timetags), and the
fired mark **survives retraction**: an instantiation retracted and
re-derived with the *same* timetags within one wave (matcher churn,
negation flicker, transactional rollback) does not regain eligibility
and cannot fire twice.  Genuine re-derivations are unaffected, because
working-memory ``modify``/``make`` assign fresh timetags, producing a
*distinct* instantiation that has never fired.  The fired memory is
bounded by the number of firings in a run and is dropped only by
:meth:`forget_fired` (used by tests) — never implicitly by
:meth:`remove` or :meth:`clear`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.match.instantiation import Instantiation
from repro.wm.element import Timetag, WME


@dataclass(frozen=True)
class ConflictSetDelta:
    """Instantiations added and removed since the delta was opened."""

    added: frozenset[Instantiation]
    removed: frozenset[Instantiation]

    def is_empty(self) -> bool:
        return not self.added and not self.removed


class ConflictSet:
    """A mutable set of instantiations with delta tracking."""

    def __init__(self) -> None:
        self._members: dict[Instantiation, Instantiation] = {}
        self._fired: set[Instantiation] = set()
        self._added: set[Instantiation] = set()
        self._removed: set[Instantiation] = set()
        # Secondary indexes (insertion-ordered via dict-as-set so the
        # derived views are deterministic).
        self._by_rule: dict[str, dict[Instantiation, None]] = {}
        self._by_wme: dict[Timetag, dict[Instantiation, None]] = {}

    # -- mutation (called by matchers) ---------------------------------------------

    def add(self, instantiation: Instantiation) -> bool:
        """Insert; returns False when already present."""
        if instantiation in self._members:
            return False
        self._members[instantiation] = instantiation
        self._by_rule.setdefault(instantiation.production.name, {})[
            instantiation
        ] = None
        for wme in instantiation.wmes:
            self._by_wme.setdefault(wme.timetag, {})[instantiation] = None
        if instantiation in self._removed:
            self._removed.discard(instantiation)
        else:
            self._added.add(instantiation)
        return True

    def remove(self, instantiation: Instantiation) -> bool:
        """Delete; returns False when absent.

        Refraction state is *preserved* (see the module docstring): a
        subsequent re-add of the identical instantiation remains
        ineligible.
        """
        if instantiation not in self._members:
            return False
        del self._members[instantiation]
        rule_bucket = self._by_rule.get(instantiation.production.name)
        if rule_bucket is not None:
            rule_bucket.pop(instantiation, None)
            if not rule_bucket:
                del self._by_rule[instantiation.production.name]
        for wme in instantiation.wmes:
            wme_bucket = self._by_wme.get(wme.timetag)
            if wme_bucket is not None:
                wme_bucket.pop(instantiation, None)
                if not wme_bucket:
                    del self._by_wme[wme.timetag]
        if instantiation in self._added:
            self._added.discard(instantiation)
        else:
            self._removed.add(instantiation)
        return True

    def clear(self) -> None:
        """Remove everything (used when a matcher rebuilds from scratch).

        Fired marks survive, so a rebuild cannot resurrect eligibility.
        """
        for instantiation in list(self._members):
            self.remove(instantiation)

    # -- refraction -------------------------------------------------------------------

    def mark_fired(self, instantiation: Instantiation) -> None:
        """Record that ``instantiation`` has fired (refraction)."""
        self._fired.add(instantiation)

    def has_fired(self, instantiation: Instantiation) -> bool:
        """True when the instantiation has ever fired.

        Persists across retraction: a fired instantiation that leaves
        and re-enters the set (same rule, same timetags) still reports
        True and stays ineligible.
        """
        return instantiation in self._fired

    def forget_fired(self, instantiation: Instantiation) -> None:
        """Drop the fired mark, restoring eligibility (test hook)."""
        self._fired.discard(instantiation)

    def eligible(self) -> list[Instantiation]:
        """Members that have not fired — the candidates for *select*."""
        return [m for m in self._members if m not in self._fired]

    # -- delta tracking ------------------------------------------------------------------

    def take_delta(self) -> ConflictSetDelta:
        """Return and reset the accumulated delta.

        The returned delta is exactly (A^a, A^d) of the firings since
        the previous call.
        """
        delta = ConflictSetDelta(
            frozenset(self._added), frozenset(self._removed)
        )
        self._added.clear()
        self._removed.clear()
        return delta

    def peek_delta(self) -> ConflictSetDelta:
        """The accumulated delta, without resetting it."""
        return ConflictSetDelta(
            frozenset(self._added), frozenset(self._removed)
        )

    # -- queries --------------------------------------------------------------------------

    def __contains__(self, instantiation: object) -> bool:
        return instantiation in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[Instantiation]:
        return iter(list(self._members))

    def members(self) -> frozenset[Instantiation]:
        """An immutable view of the current membership."""
        return frozenset(self._members)

    def rule_names(self) -> frozenset[str]:
        """Names of productions with at least one active instantiation.

        This is the paper's production-level view of ``PA`` (its
        examples track rule names, not instantiations).  Index-backed:
        O(active rules), not O(|CS|).
        """
        return frozenset(self._by_rule)

    def for_rule(self, name: str) -> list[Instantiation]:
        """All active instantiations of the production called ``name``.

        Index-backed: O(instantiations of that rule), not O(|CS|).
        """
        return list(self._by_rule.get(name, ()))

    def mentioning(self, wme: WME | Timetag) -> list[Instantiation]:
        """All active instantiations whose match used ``wme``.

        Index-backed: O(instantiations mentioning the WME), not
        O(|CS|) — this is what keeps TREAT's ``remove(w)`` retraction
        a filter instead of a full conflict-set scan.
        """
        timetag = wme.timetag if isinstance(wme, WME) else wme
        return list(self._by_wme.get(timetag, ()))

    def is_empty(self) -> bool:
        """Empty conflict set — the termination condition of Section 2."""
        return not self._members
