"""The naive from-scratch matcher.

Re-evaluates every production's LHS against the whole working memory
after each delta.  Quadratically slower than Rete on incremental
workloads — which is precisely the comparison
``benchmarks/bench_match_algorithms.py`` draws — but its directness
makes it the oracle the property-based tests check Rete and TREAT
against.

Negation semantics (OPS5): a negated condition element succeeds when no
WME matches it under the bindings accumulated so far; variables that
appear only inside the negated element are existentially quantified
within it.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.compile import TokenPlan, build_token_plan
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.wm.element import WME
from repro.wm.memory import WMDelta, WorkingMemory


def match_production(
    production: Production,
    memory: WorkingMemory,
    plan: TokenPlan | None = None,
) -> Iterator[Instantiation]:
    """Enumerate every instantiation of ``production`` against ``memory``.

    Pure function — the heart of the oracle.  Processes condition
    elements in written order, branching on positive elements and
    pruning on negated ones.  ``plan`` carries the compiled per-element
    steps and the token layout (slotted tuples by default, binding
    dicts under :func:`repro.lang.compile.dict_tokens` /
    :func:`~repro.lang.compile.interpreted_conditions`); omitted, the
    production's cached plan for the active mode is used.
    """
    if plan is None:
        plan = build_token_plan(production)
    yield from _extend(plan, memory, 0, (), plan.empty_token())


def _extend(
    plan: TokenPlan,
    memory: WorkingMemory,
    index: int,
    matched: tuple[WME, ...],
    token,
) -> Iterator[Instantiation]:
    if index == len(plan.steps):
        yield plan.instantiate(matched, token)
        return
    step = plan.steps[index]
    if step.negated:
        if _exists_match(step, memory, token):
            return
        yield from _extend(
            plan, memory, index + 1, matched, step.carry(token)
        )
        return
    match = step.match
    for wme in _candidates(step, memory, token):
        extended = match(wme, token)
        if extended is not None:
            yield from _extend(
                plan, memory, index + 1, matched + (wme,), extended
            )


def _exists_match(step, memory: WorkingMemory, token) -> bool:
    """Existential check for negated elements.

    The extended token (carrying the negation's local bindings) is
    discarded — locals are quantified within the element, so they never
    escape into persisted tokens.
    """
    match = step.match
    for wme in _candidates(step, memory, token):
        if match(wme, token) is not None:
            return True
    return False


def _candidates(step, memory: WorkingMemory, token) -> list[WME]:
    """Index-assisted candidate selection for one condition element.

    Uses constant equality tests, plus variable tests whose variable is
    already bound (they are equalities at this point), to narrow the
    scan via the store's attribute index.  The step precomputes the
    constant pairs and the (attribute, slot) probe items.
    """
    return memory.select(step.relation, step.probe_equalities(token))


class NaiveMatcher(BaseMatcher):
    """From-scratch matcher implementing the :class:`Matcher` protocol."""

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        #: Count of full recomputations, exposed for benchmarks.
        self.recompute_count = 0

    def add_production(self, production: Production) -> None:
        self._register(production)
        if self._attached:
            self._refresh_rule(production)

    def remove_production(self, name: str) -> None:
        self._unregister(name)
        for instantiation in self.conflict_set.for_rule(name):
            self.conflict_set.remove(instantiation)

    def rebuild(self) -> None:
        self.recompute_count += 1
        current: set[Instantiation] = set()
        for name, production in self._productions.items():
            current.update(
                match_production(production, self.memory, self._plans[name])
            )
        for stale in self.conflict_set.members() - current:
            self.conflict_set.remove(stale)
        for fresh in current:
            self.conflict_set.add(fresh)

    def _refresh_rule(self, production: Production) -> None:
        current = set(
            match_production(
                production, self.memory, self._plans[production.name]
            )
        )
        for stale in set(self.conflict_set.for_rule(production.name)) - current:
            self.conflict_set.remove(stale)
        for fresh in current:
            self.conflict_set.add(fresh)

    def _on_delta(self, delta: WMDelta) -> None:
        # From-scratch: any delta invalidates everything.  (A real
        # system would at least restrict to productions mentioning the
        # delta's relation; we keep the oracle maximally simple.)
        self.rebuild()
