"""The naive from-scratch matcher.

Re-evaluates every production's LHS against the whole working memory
after each delta.  Quadratically slower than Rete on incremental
workloads — which is precisely the comparison
``benchmarks/bench_match_algorithms.py`` draws — but its directness
makes it the oracle the property-based tests check Rete and TREAT
against.

Negation semantics (OPS5): a negated condition element succeeds when no
WME matches it under the bindings accumulated so far; variables that
appear only inside the negated element are existentially quantified
within it.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.lang.ast import ConditionElement
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.instantiation import Instantiation
from repro.wm.element import Scalar, WME
from repro.wm.memory import WMDelta, WorkingMemory


def match_production(
    production: Production, memory: WorkingMemory
) -> Iterator[Instantiation]:
    """Enumerate every instantiation of ``production`` against ``memory``.

    Pure function — the heart of the oracle.  Processes condition
    elements in written order, branching on positive elements and
    pruning on negated ones.
    """
    yield from _extend(production, memory, 0, (), {})


def _extend(
    production: Production,
    memory: WorkingMemory,
    index: int,
    matched: tuple[WME, ...],
    bindings: Mapping[str, Scalar],
) -> Iterator[Instantiation]:
    if index == len(production.lhs):
        yield Instantiation.build(production, matched, bindings)
        return
    element = production.lhs[index]
    if element.negated:
        if _exists_match(element, memory, bindings):
            return
        yield from _extend(production, memory, index + 1, matched, bindings)
        return
    match = element.compiled().match
    for wme in _candidates(element, memory, bindings):
        extended = match(wme, bindings)
        if extended is not None:
            yield from _extend(
                production, memory, index + 1, matched + (wme,), extended
            )


def _exists_match(
    element: ConditionElement,
    memory: WorkingMemory,
    bindings: Mapping[str, Scalar],
) -> bool:
    """Existential check for negated elements."""
    match = element.compiled().match
    for wme in _candidates(element, memory, bindings):
        if match(wme, bindings) is not None:
            return True
    return False


def _candidates(
    element: ConditionElement,
    memory: WorkingMemory,
    bindings: Mapping[str, Scalar],
) -> list[WME]:
    """Index-assisted candidate selection for one condition element.

    Uses constant equality tests, plus variable tests whose variable is
    already bound (they are equalities at this point), to narrow the
    scan via the store's attribute index.  The ``(attribute, value)``
    pairs come precomputed from the element's compiled form.
    """
    compiled = element.compiled()
    equalities = list(compiled.constant_equalities)
    for attribute, variable in compiled.variable_items:
        if variable in bindings:
            equalities.append((attribute, bindings[variable]))
    return memory.select(element.relation, equalities)


class NaiveMatcher(BaseMatcher):
    """From-scratch matcher implementing the :class:`Matcher` protocol."""

    def __init__(self, memory: WorkingMemory) -> None:
        super().__init__(memory)
        #: Count of full recomputations, exposed for benchmarks.
        self.recompute_count = 0

    def add_production(self, production: Production) -> None:
        self._productions[production.name] = production
        if self._attached:
            self._refresh_rule(production)

    def remove_production(self, name: str) -> None:
        self._productions.pop(name, None)
        for instantiation in self.conflict_set.for_rule(name):
            self.conflict_set.remove(instantiation)

    def rebuild(self) -> None:
        self.recompute_count += 1
        current: set[Instantiation] = set()
        for production in self._productions.values():
            current.update(match_production(production, self.memory))
        for stale in self.conflict_set.members() - current:
            self.conflict_set.remove(stale)
        for fresh in current:
            self.conflict_set.add(fresh)

    def _refresh_rule(self, production: Production) -> None:
        current = set(match_production(production, self.memory))
        for stale in set(self.conflict_set.for_rule(production.name)) - current:
            self.conflict_set.remove(stale)
        for fresh in current:
            self.conflict_set.add(fresh)

    def _on_delta(self, delta: WMDelta) -> None:
        # From-scratch: any delta invalidates everything.  (A real
        # system would at least restrict to productions mentioning the
        # delta's relation; we keep the oracle maximally simple.)
        self.rebuild()
