"""Match-phase substrate.

The match phase "matches the productions against the database to
determine the satisfied LHS's — the set of active productions (conflict
set)" (Section 2).  Three matchers are provided:

* :class:`~repro.match.naive.NaiveMatcher` — from-scratch evaluation
  each cycle; slow but obviously correct, used as the test oracle.
* :class:`~repro.match.rete.network.ReteMatcher` — the Rete network
  [FORG82]: incremental, stores partial-match state (beta memories),
  shares alpha nodes across productions.
* :class:`~repro.match.treat.TreatMatcher` — TREAT [MIRA84]: keeps
  alpha memories and the conflict set, recomputes joins per delta.
* :class:`~repro.match.cond.CondRelationMatcher` — cond relations
  [SELL88]/[RASC88]: match state as materialized database relations,
  recomputed set-at-a-time per dirty production.
* :class:`~repro.match.partitioned.PartitionedMatcher` — Section 2's
  intra-phase parallelism: productions sharded across K passive inner
  matchers (any of the above), batched WM deltas behind a barrier,
  deterministic conflict-set merge; thread, serial, virtual-time
  (DES) and multi-process (:mod:`~repro.match.procpool` — worker
  processes over replicated WM, no GIL) substrates.

All five expose the same protocol (:class:`~repro.match.base.Matcher`)
and are interchangeable in the engine.
"""

from repro.match.base import Matcher
from repro.match.instantiation import Instantiation
from repro.match.conflict_set import ConflictSet, ConflictSetDelta
from repro.match.naive import NaiveMatcher
from repro.match.treat import TreatMatcher
from repro.match.cond import CondRelationMatcher
from repro.match.partitioned import (
    PartitionedMatcher,
    parse_partitioned_spec,
)
from repro.match.rete.network import ReteMatcher
from repro.match.strategies import (
    FifoStrategy,
    LexStrategy,
    MeaStrategy,
    PriorityStrategy,
    RandomStrategy,
    Strategy,
    make_strategy,
)

__all__ = [
    "Matcher",
    "Instantiation",
    "ConflictSet",
    "ConflictSetDelta",
    "NaiveMatcher",
    "ReteMatcher",
    "TreatMatcher",
    "CondRelationMatcher",
    "PartitionedMatcher",
    "parse_partitioned_spec",
    "Strategy",
    "LexStrategy",
    "MeaStrategy",
    "PriorityStrategy",
    "FifoStrategy",
    "RandomStrategy",
    "make_strategy",
]
