"""Partitioned parallel match — Section 2's intra-phase parallelism,
executable.

"Execution of each phase in a parallel manner" with match as the
bottleneck [FORG82]: the standard software realization shards
*productions* across ``K`` matcher instances, each matching its share
of the rules against the same working-memory delta stream.  This
module turns the repo's analytic model of that design
(:mod:`repro.analysis.match_parallel`, LPT makespans over
per-production costs) into a working matcher.

:class:`PartitionedMatcher` implements the :class:`~repro.match.base.
Matcher` protocol and is interchangeable with the monolithic matchers
(``build_matcher("partitioned:rete:4", wm)``, CLI ``--matcher
partitioned:rete:4``).  Architecture:

* **Sharding** — every registered production is assigned to one of
  ``K`` inner matchers (any of naive/Rete/TREAT/cond), by round-robin,
  stable hash, or LPT over a per-production cost model.  Inner
  matchers run *passively*: only the partitioned matcher subscribes to
  the store; shards receive deltas via :meth:`~repro.match.base.
  BaseMatcher.feed`.
* **Delta batching** — by default every WM delta is flushed to all
  shards immediately (batch size 1), keeping the shared conflict set
  consistent after each mutation, which the engines rely on
  mid-wave.  The :meth:`batch` context manager defers matching to one
  barrier: deltas published inside the block are buffered and replayed
  together, amortizing the fan-out/merge cost.  Working memory is
  read-only during match, so shards need no locking beyond the batch
  barrier.
* **Deterministic merge** — after the barrier, each shard's private
  conflict-set delta is folded into the shared :class:`~repro.match.
  conflict_set.ConflictSet` in shard-id order, removals before adds,
  each sorted by recency (then rule name).  Shards own disjoint rule
  sets, so merges never conflict and the shared set equals the
  monolithic matcher's set exactly — ``ES_M ⊆ ES_single`` is
  preserved because the engine sees the same conflict set it would
  have seen single-threaded (``tests/match/test_partitioned_matcher
  .py`` asserts equality property-style).
* **Substrates** — ``backend="thread"`` matches shards concurrently on
  a :class:`~concurrent.futures.ThreadPoolExecutor` (correctness under
  real concurrency; CPython's GIL means wall-clock speedup is not the
  point).  ``backend="process"`` escapes the GIL: each shard lives in
  a persistent worker *process* (:mod:`repro.match.procpool`) holding
  a full working-memory replica; the parent streams the same delta
  batches and folds back the conflict-set deltas the workers report,
  so match runs on real cores while the merged set stays bit-identical
  to the serial oracle.  ``backend="des"`` charges each shard its
  per-production match cost on the discrete-event simulator's virtual
  clock, so ``benchmarks/bench_intraphase_match.py`` can validate the
  analytic ``lpt_makespan``/``speedup_ceiling`` curves against this
  executable system.  ``backend="serial"`` is the in-process
  reference.

Observability (the PR-1 ``obs`` layer): per-shard match latency
histogram (``match.shard_seconds``), batch size (``match.batch_size``)
and merge time (``match.merge_seconds``), plus ``match.shard`` /
``match.batch`` trace events — all guarded by ``obs.enabled``.  With
span recording on, every flush additionally emits a ``match.flush``
span (parented under the engine's current scope) with per-shard
``match.shard`` child spans on the wall clock, or shard charges as
fields on the DES/virtual-clock paths.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import repro.obs as obs_module
from repro.errors import MatchError
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.cond import CondRelationMatcher
from repro.match.conflict_set import ConflictSetDelta
from repro.match.instantiation import Instantiation
from repro.match.naive import NaiveMatcher
from repro.match.procpool import (
    DEFAULT_TIMEOUT as PROCPOOL_TIMEOUT,
    ProcessPool,
    ShardReply,
    decode_wme,
)
from repro.match.rete.network import ReteMatcher
from repro.match.treat import TreatMatcher
from repro.sim.engine import Simulator
from repro.wm.memory import WMDelta, WorkingMemory

#: Inner matcher registry (mirrors the engine's name → class map
#: without importing the engine layer).
INNER_MATCHERS: dict[str, type[BaseMatcher]] = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
}

BACKENDS = ("thread", "serial", "des", "process")
ASSIGNMENTS = ("round-robin", "hash", "lpt")
DEFAULT_SHARDS = 4

#: Per-production match cost: a callable or a name → cost mapping.
CostModel = Callable[[Production], float] | Mapping[str, float]


def parse_partitioned_spec(spec: str) -> tuple[str, int, str]:
    """Parse ``partitioned[:inner[:shards[:backend]]]``.

    >>> parse_partitioned_spec("partitioned:rete:4")
    ('rete', 4, 'thread')
    """
    parts = spec.split(":")
    if parts[0] != "partitioned" or len(parts) > 4:
        raise MatchError(
            f"bad partitioned matcher spec {spec!r}; expected "
            "partitioned[:inner[:shards[:backend]]]"
        )
    inner = parts[1] if len(parts) > 1 and parts[1] else "rete"
    if inner not in INNER_MATCHERS:
        raise MatchError(
            f"unknown inner matcher {inner!r} in {spec!r}; expected one "
            f"of {sorted(INNER_MATCHERS)}"
        )
    shards = DEFAULT_SHARDS
    if len(parts) > 2 and parts[2]:
        try:
            shards = int(parts[2])
        except ValueError:
            raise MatchError(
                f"bad shard count {parts[2]!r} in {spec!r}"
            ) from None
    if shards < 1:
        raise MatchError(f"need >= 1 shard, got {shards}")
    backend = parts[3] if len(parts) > 3 and parts[3] else "thread"
    if backend not in BACKENDS:
        raise MatchError(
            f"unknown backend {backend!r} in {spec!r}; expected one of "
            f"{BACKENDS}"
        )
    return inner, shards, backend


@dataclass
class _Shard:
    """One partition: a passive inner matcher plus its LPT load."""

    index: int
    matcher: BaseMatcher
    load: float = 0.0

    def rule_names(self) -> list[str]:
        return sorted(self.matcher.productions)


def _merge_key(instantiation: Instantiation) -> tuple:
    """Recency order (most recent first), rule name as tiebreak."""
    return (
        tuple(-t for t in instantiation.recency_key()),
        instantiation.rule_name,
    )


class _StagedDelta:
    """Decoded worker conflict-set deltas, queued for the next merge.

    Quacks like a :class:`~repro.match.conflict_set.ConflictSet` for
    the one method :meth:`PartitionedMatcher._merge` calls —
    ``take_delta()`` — so process shards fold into the shared set
    through exactly the same code path as in-process shards.
    """

    __slots__ = ("_added", "_removed")

    def __init__(self) -> None:
        self._added: list[Instantiation] = []
        self._removed: list[Instantiation] = []

    def stage(
        self,
        added: Iterable[Instantiation],
        removed: Iterable[Instantiation],
    ) -> None:
        self._added.extend(added)
        self._removed.extend(removed)

    def clear(self) -> None:
        self._added.clear()
        self._removed.clear()

    def take_delta(self) -> ConflictSetDelta:
        delta = ConflictSetDelta(
            frozenset(self._added), frozenset(self._removed)
        )
        self.clear()
        return delta


class _RemoteShard:
    """Parent-side stand-in for a worker-owned inner matcher.

    Keeps the shard's production assignment and stages the decoded
    conflict-set deltas its worker reports, exposing exactly the
    surface the backend-agnostic partitioned paths touch
    (``productions``, ``conflict_set.take_delta()``, production
    add/remove).  Matching itself happens inside the worker process
    (:mod:`repro.match.procpool`); the parent never builds
    Rete/TREAT state for process shards.
    """

    is_attached = True

    def __init__(self, owner: "PartitionedMatcher", index: int) -> None:
        self._owner = owner
        self.index = index
        self.productions: dict[str, Production] = {}
        self.conflict_set = _StagedDelta()

    # -- production routing ------------------------------------------
    #
    # While the pool runs, changes go to the live worker and its
    # reported delta is staged; otherwise the new assignment simply
    # rides along in the snapshot at the next pool (re)start.

    def add_production(self, production: Production) -> None:
        self.productions[production.name] = production
        pool = self._owner._live_procpool()
        if pool is not None:
            self.stage_reply(pool.add_production(self.index, production))
            self._owner._note_procpool(pool)

    def remove_production(self, name: str) -> None:
        pool = self._owner._live_procpool()
        if pool is not None and name in self.productions:
            self.stage_reply(pool.remove_production(self.index, name))
            self._owner._note_procpool(pool)
        self.productions.pop(name, None)

    # -- wire decoding -----------------------------------------------

    def stage_reply(self, reply: ShardReply) -> None:
        self.conflict_set.stage(
            [self._decode(p) for p in reply.added],
            [self._decode(p) for p in reply.removed],
        )

    def _decode(self, payload: tuple) -> Instantiation:
        rule_name, wme_payloads, bindings_items = payload
        # Resolve against the parent's canonical registry so the
        # shared set holds the same Production objects the serial
        # matcher would.  Removals of a just-dropped rule fall back to
        # the shard's last-known copy — identity is (name, timetags),
        # so the stale object still removes the right member.
        production = self._owner._productions.get(rule_name)
        if production is None:
            production = self.productions[rule_name]
        return Instantiation(
            production,
            tuple(decode_wme(w) for w in wme_payloads),
            bindings_items,
        )

    # -- lifecycle surface for the backend-agnostic paths ------------

    def attach_passive(self) -> None:
        return None

    def rebuild(self) -> None:
        return None

    def feed(self, delta: WMDelta) -> None:
        raise MatchError(
            "remote shards receive deltas through the process pool, "
            "not feed()"
        )


class PartitionedMatcher(BaseMatcher):
    """Rule-sharded parallel matcher implementing :class:`Matcher`.

    Parameters
    ----------
    memory:
        The shared working memory (read-only during match).
    shards:
        Number of partitions ``K`` (the paper's ``Np`` for the match
        phase).
    inner:
        Inner matcher: a name from :data:`INNER_MATCHERS` or a
        ``WorkingMemory -> BaseMatcher`` factory.
    backend:
        ``"thread"`` (default; ThreadPoolExecutor barrier),
        ``"serial"`` (in-process reference), ``"des"``
        (virtual-time, cost-charged) or ``"process"`` (persistent
        worker-process pool with per-worker WM replicas — real
        multi-core match; requires a *named* inner matcher so workers
        can rebuild it, and compiled closures never cross the
        boundary).
    assign:
        Production→shard policy: ``"round-robin"`` (default),
        ``"hash"`` (stable on rule name) or ``"lpt"`` (greedy
        least-loaded under ``cost_model`` — with a full
        :meth:`add_productions` this is exactly LPT scheduling and
        realizes :func:`repro.analysis.match_parallel.lpt_makespan`).
    cost_model:
        Per-production match cost (callable or name→cost mapping);
        used by ``assign="lpt"`` and charged by the DES backend.
        Defaults to uniform 1.0.
    observer:
        Observability sink; defaults to the module-level observer.
    simulator:
        Virtual clock for the DES backend (a fresh
        :class:`~repro.sim.engine.Simulator` when omitted).
    """

    def __init__(
        self,
        memory: WorkingMemory,
        shards: int = DEFAULT_SHARDS,
        inner: str | Callable[[WorkingMemory], BaseMatcher] = "rete",
        backend: str = "thread",
        assign: str = "round-robin",
        cost_model: CostModel | None = None,
        observer=None,
        simulator: Simulator | None = None,
        procpool_timeout: float = PROCPOOL_TIMEOUT,
    ) -> None:
        super().__init__(memory)
        if shards < 1:
            raise MatchError(f"need >= 1 shard, got {shards}")
        if backend not in BACKENDS:
            raise MatchError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if assign not in ASSIGNMENTS:
            raise MatchError(
                f"unknown assignment {assign!r}; expected one of "
                f"{ASSIGNMENTS}"
            )
        if isinstance(inner, str):
            if inner not in INNER_MATCHERS:
                raise MatchError(
                    f"unknown inner matcher {inner!r}; expected one of "
                    f"{sorted(INNER_MATCHERS)}"
                )
            factory = INNER_MATCHERS[inner]
            self.inner_name = inner
        else:
            if backend == "process":
                raise MatchError(
                    "process backend needs a named inner matcher (one "
                    f"of {sorted(INNER_MATCHERS)}); a custom factory "
                    "cannot be rebuilt inside worker processes"
                )
            factory = inner
            self.inner_name = getattr(inner, "__name__", "custom")
        self.backend = backend
        self.assign = assign
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self._cost_model = cost_model
        if backend == "process":
            self._shards = [
                _Shard(i, _RemoteShard(self, i)) for i in range(shards)
            ]
        else:
            self._shards = [
                _Shard(i, factory(memory)) for i in range(shards)
            ]
        self._rule_shard: dict[str, int] = {}
        self._registered = 0
        self._batch_depth = 0
        self._buffer: list[WMDelta] = []
        self._pool: ThreadPoolExecutor | None = None
        self._procpool: ProcessPool | None = None
        self.procpool_timeout = procpool_timeout
        if backend == "des":
            self.simulator = (
                simulator if simulator is not None else Simulator()
            )
        else:
            self.simulator = simulator
        #: Virtual busy time summed over shards (DES backend) — the
        #: sequential match time the parallel makespan is compared to.
        self.virtual_busy = 0.0
        #: Completed flushes and total deltas fed through them.
        self.flush_count = 0
        self.delta_count = 0

    # -- partitioning --------------------------------------------------------------------

    def _cost(self, production: Production) -> float:
        model = self._cost_model
        if model is None:
            return 1.0
        if callable(model):
            return float(model(production))
        return float(model.get(production.name, 1.0))

    def _pick_shard(self, production: Production) -> _Shard:
        if self.assign == "hash":
            digest = zlib.crc32(production.name.encode("utf-8"))
            return self._shards[digest % len(self._shards)]
        if self.assign == "lpt":
            return min(self._shards, key=lambda s: (s.load, s.index))
        return self._shards[self._registered % len(self._shards)]

    def add_productions(self, productions: Iterable[Production]) -> None:
        productions = list(productions)
        if self.assign == "lpt":
            # Sorting by descending cost makes the greedy least-loaded
            # placement exactly LPT list scheduling.
            productions.sort(key=lambda p: (-self._cost(p), p.name))
        for production in productions:
            self.add_production(production)

    def add_production(self, production: Production) -> None:
        if production.name in self._rule_shard:
            self.remove_production(production.name)
        # Validate and plan before picking a shard — the inner matcher
        # re-registers, but the outer guard keeps one token layout
        # across all shards and rejects unvalidated productions even
        # when a shard's inner matcher is a custom factory.
        self._register(production)
        shard = self._pick_shard(production)
        self._rule_shard[production.name] = shard.index
        shard.load += self._cost(production)
        self._registered += 1
        shard.matcher.add_production(production)
        self._merge()

    def remove_production(self, name: str) -> None:
        index = self._rule_shard.pop(name, None)
        production = self._productions.get(name)
        self._unregister(name)
        if index is None:
            return
        shard = self._shards[index]
        if production is not None:
            shard.load -= self._cost(production)
        shard.matcher.remove_production(name)
        self._merge()

    def shard_of(self, name: str) -> int | None:
        """The shard index owning production ``name`` (None if absent)."""
        return self._rule_shard.get(name)

    # -- lifecycle -----------------------------------------------------------------------

    def rebuild(self) -> None:
        if self.backend == "process":
            # Warmup/restart: spawn (or respawn) the worker pool from
            # the current memory snapshot and reconcile the shared set
            # against each worker's reported membership.
            self._start_procpool()
            self._merge()
            return
        for shard in self._shards:
            if shard.matcher.is_attached:
                shard.matcher.rebuild()
            else:
                shard.matcher.attach_passive()
        self._merge()

    def detach(self) -> None:
        super().detach()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._procpool is not None:
            self._procpool.shutdown()
            self._procpool = None

    # -- delta batching ------------------------------------------------------------------

    def _on_delta(self, delta: WMDelta) -> None:
        if self._batch_depth > 0:
            self._buffer.append(delta)
        else:
            self._flush([delta])

    @contextmanager
    def batch(self) -> Iterator["PartitionedMatcher"]:
        """Defer matching to one barrier.

        Deltas published inside the block are buffered and replayed to
        every shard together on exit.  The shared conflict set is
        stale *inside* the block — use only where nothing consults it
        mid-batch (bulk loads, benchmarks).
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                buffered, self._buffer = self._buffer, []
                self._flush(buffered)

    def _flush(self, deltas: Sequence[WMDelta]) -> None:
        if not deltas:
            return
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        shards = self._shards
        flush_span = None
        flush_start = 0.0
        wall_start = time.perf_counter() if obs.enabled else 0.0
        if spans is not None:
            # Parent under the innermost scoped span — the engine's
            # phase.match while candidates are gathered, or its cycle
            # span when a mid-RHS delta triggers an immediate flush.
            flush_start = spans.clock()
            flush_span = spans.start(
                "match.flush", parent=spans.current(), ts=flush_start,
                deltas=len(deltas), backend=self.backend,
            )
        if self.backend == "thread" and len(shards) > 1:
            pool = self._ensure_pool()
            durations = list(
                pool.map(lambda s: self._replay(s, deltas), shards)
            )
        elif self.backend == "des":
            durations = self._des_replay(deltas)
        elif self.backend == "process":
            durations = self._process_replay(deltas)
        else:
            durations = [self._replay(shard, deltas) for shard in shards]
        merge_start = time.perf_counter()
        self._merge()
        merge_seconds = time.perf_counter() - merge_start
        self.flush_count += 1
        self.delta_count += len(deltas)
        if flush_span is not None:
            self._flush_spans(
                spans, flush_span, flush_start, durations, merge_seconds
            )
        if obs.enabled:
            for shard, seconds in zip(shards, durations):
                obs.shard_match(shard.index, seconds, len(deltas))
            obs.match_batch(len(deltas), len(shards), merge_seconds)
            obs.match_flush(
                len(shards), time.perf_counter() - wall_start
            )

    def _flush_spans(
        self, spans, flush_span, flush_start: float,
        durations: Sequence[float], merge_seconds: float,
    ) -> None:
        """Child spans (or annotations) for one flush's shard work.

        Shard durations are wall-clock (``perf_counter``) except on
        the DES backend, where they are virtual charges.  Per-shard
        child spans are emitted only when the recorder itself runs on
        ``perf_counter`` — under an injected (virtual) clock the
        durations would mix timelines, so they stay as fields.  The
        process backend also annotates instead of spanning: its
        durations are worker-reported self-times on *other* processes'
        clocks (they overlap in parent time), so — like DES — the
        critical-path attribution consumes the ``shard_seconds``
        annotation, plus the flush's IPC cost.
        """
        wall_clock = spans.clock is time.perf_counter
        if self.backend in ("des", "process") or not wall_clock:
            flush_span.annotate(
                shard_seconds=[round(d, 9) for d in durations]
            )
            pool = self._procpool
            if self.backend == "process" and pool is not None:
                flush_span.annotate(
                    ipc_bytes_out=pool.last_bytes_out,
                    ipc_bytes_in=pool.last_bytes_in,
                )
        else:
            concurrent_shards = (
                self.backend == "thread" and len(self._shards) > 1
            )
            offset = flush_start
            for shard, seconds in zip(self._shards, durations):
                start = flush_start if concurrent_shards else offset
                spans.record(
                    "match.shard", start=start, end=start + seconds,
                    parent=flush_span, shard=shard.index,
                )
                offset += seconds
        flush_span.finish(merge_seconds=merge_seconds)

    def _replay(self, shard: _Shard, deltas: Sequence[WMDelta]) -> float:
        start = time.perf_counter()
        feed = shard.matcher.feed
        for delta in deltas:
            feed(delta)
        return time.perf_counter() - start

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards),
                thread_name_prefix="match-shard",
            )
        return self._pool

    # -- process substrate ---------------------------------------------------------------

    def _live_procpool(self) -> ProcessPool | None:
        pool = self._procpool
        if pool is not None and pool.alive:
            return pool
        return None

    def _start_procpool(self) -> list[float]:
        """(Re)start the worker pool from the current memory snapshot.

        Returns per-shard reset seconds.  Reconciliation: every
        shared-set member of a shard's rules is staged for removal and
        the worker's fresh full membership staged as adds — the merge
        applies removals before adds and the conflict set cancels a
        remove-then-re-add, so the net delta is exactly the difference
        and fired marks survive for persisting members.
        """
        if self._procpool is not None:
            self._procpool.shutdown()
        pool = ProcessPool(
            len(self._shards),
            self.inner_name,
            timeout=self.procpool_timeout,
        )
        assignments = [
            tuple(shard.matcher.productions.values())
            for shard in self._shards
        ]
        replies = pool.start(assignments, list(self.memory))
        self._procpool = pool
        for shard, reply in zip(self._shards, replies):
            stub = shard.matcher
            stub.conflict_set.clear()
            removed = [
                instantiation
                for name in stub.productions
                for instantiation in self.conflict_set.for_rule(name)
            ]
            stub.conflict_set.stage(
                [stub._decode(p) for p in reply.added], removed
            )
        self._note_procpool(pool)
        return [reply.seconds for reply in replies]

    def _process_replay(self, deltas: Sequence[WMDelta]) -> list[float]:
        """Fan one batch to the worker pool (shards match concurrently
        in separate interpreters — no GIL in the way).

        When the pool is down (first flush after attach without a
        rebuild, or after a worker crash), it (re)starts from the
        *current* memory snapshot instead: the store publishes deltas
        post-application, so the snapshot already contains this batch
        and replaying it on top would double-apply.
        """
        pool = self._live_procpool()
        if pool is None:
            return self._start_procpool()
        replies = pool.replay(deltas)
        for shard, reply in zip(self._shards, replies):
            shard.matcher.stage_reply(reply)
        self._note_procpool(pool)
        return [reply.seconds for reply in replies]

    def _note_procpool(self, pool: ProcessPool) -> None:
        if self.obs.enabled:
            self.obs.procpool_roundtrip(
                pool.last_bytes_out, pool.last_bytes_in
            )

    # -- DES substrate -------------------------------------------------------------------

    def _des_replay(self, deltas: Sequence[WMDelta]) -> list[float]:
        """Replay on the virtual clock, charging per-production costs.

        Each shard's batch charge is ``|batch| × Σ cost(p)`` over its
        productions; all shards start at the barrier and the simulator
        advances to the latest completion, so ``simulator.now``
        accumulates the parallel match makespan — the executable
        counterpart of :func:`repro.analysis.match_parallel.
        lpt_makespan`.
        """
        sim = self.simulator
        start = sim.now
        charges: list[float] = []
        for shard in self._shards:
            charge = len(deltas) * sum(
                self._cost(p) for p in shard.matcher.productions.values()
            )
            charges.append(charge)

            def complete(_sim: Simulator, shard: _Shard = shard) -> None:
                self._replay(shard, deltas)

            sim.at(start + charge, complete)
        sim.run()
        self.virtual_busy += sum(charges)
        return charges

    @property
    def virtual_makespan(self) -> float:
        """Virtual parallel match time accumulated by the DES backend."""
        return self.simulator.now if self.simulator is not None else 0.0

    def virtual_speedup(self) -> float:
        """Sequential over parallel virtual match time (DES backend)."""
        makespan = self.virtual_makespan
        if makespan == 0:
            return 1.0
        return self.virtual_busy / makespan

    # -- merge ---------------------------------------------------------------------------

    def _merge(self) -> None:
        """Fold per-shard conflict-set deltas into the shared set.

        Deterministic: shard-id order, removals before adds, each in
        recency order.  Shards own disjoint rule sets, so the merged
        membership equals the union of shard memberships and matches
        the monolithic matcher exactly.
        """
        for shard in self._shards:
            delta = shard.matcher.conflict_set.take_delta()
            if delta.is_empty():
                continue
            for instantiation in sorted(delta.removed, key=_merge_key):
                self.conflict_set.remove(instantiation)
            for instantiation in sorted(delta.added, key=_merge_key):
                self.conflict_set.add(instantiation)

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Shard layout and flush statistics (benchmarks, debugging)."""
        return {
            "shards": len(self._shards),
            "inner": self.inner_name,
            "backend": self.backend,
            "assign": self.assign,
            "layout": {
                shard.index: shard.rule_names() for shard in self._shards
            },
            "loads": [shard.load for shard in self._shards],
            "flushes": self.flush_count,
            "deltas": self.delta_count,
            "virtual_busy": self.virtual_busy,
            "virtual_makespan": self.virtual_makespan,
            **(
                {"procpool": self._procpool.stats()}
                if self._procpool is not None
                else {}
            ),
        }
