"""Partitioned parallel match — Section 2's intra-phase parallelism,
executable.

"Execution of each phase in a parallel manner" with match as the
bottleneck [FORG82]: the standard software realization shards
*productions* across ``K`` matcher instances, each matching its share
of the rules against the same working-memory delta stream.  This
module turns the repo's analytic model of that design
(:mod:`repro.analysis.match_parallel`, LPT makespans over
per-production costs) into a working matcher.

:class:`PartitionedMatcher` implements the :class:`~repro.match.base.
Matcher` protocol and is interchangeable with the monolithic matchers
(``build_matcher("partitioned:rete:4", wm)``, CLI ``--matcher
partitioned:rete:4``).  Architecture:

* **Sharding** — every registered production is assigned to one of
  ``K`` inner matchers (any of naive/Rete/TREAT/cond), by round-robin,
  stable hash, or LPT over a per-production cost model.  Inner
  matchers run *passively*: only the partitioned matcher subscribes to
  the store; shards receive deltas via :meth:`~repro.match.base.
  BaseMatcher.feed`.
* **Delta batching** — by default every WM delta is flushed to all
  shards immediately (batch size 1), keeping the shared conflict set
  consistent after each mutation, which the engines rely on
  mid-wave.  The :meth:`batch` context manager defers matching to one
  barrier: deltas published inside the block are buffered and replayed
  together, amortizing the fan-out/merge cost.  Working memory is
  read-only during match, so shards need no locking beyond the batch
  barrier.
* **Deterministic merge** — after the barrier, each shard's private
  conflict-set delta is folded into the shared :class:`~repro.match.
  conflict_set.ConflictSet` in shard-id order, removals before adds,
  each sorted by recency (then rule name).  Shards own disjoint rule
  sets, so merges never conflict and the shared set equals the
  monolithic matcher's set exactly — ``ES_M ⊆ ES_single`` is
  preserved because the engine sees the same conflict set it would
  have seen single-threaded (``tests/match/test_partitioned_matcher
  .py`` asserts equality property-style).
* **Substrates** — ``backend="thread"`` matches shards concurrently on
  a :class:`~concurrent.futures.ThreadPoolExecutor` (correctness under
  real concurrency; CPython's GIL means wall-clock speedup is not the
  point).  ``backend="des"`` charges each shard its per-production
  match cost on the discrete-event simulator's virtual clock, so
  ``benchmarks/bench_intraphase_match.py`` can validate the analytic
  ``lpt_makespan``/``speedup_ceiling`` curves against this executable
  system.  ``backend="serial"`` is the in-process reference.

Observability (the PR-1 ``obs`` layer): per-shard match latency
histogram (``match.shard_seconds``), batch size (``match.batch_size``)
and merge time (``match.merge_seconds``), plus ``match.shard`` /
``match.batch`` trace events — all guarded by ``obs.enabled``.  With
span recording on, every flush additionally emits a ``match.flush``
span (parented under the engine's current scope) with per-shard
``match.shard`` child spans on the wall clock, or shard charges as
fields on the DES/virtual-clock paths.
"""

from __future__ import annotations

import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import repro.obs as obs_module
from repro.errors import MatchError
from repro.lang.production import Production
from repro.match.base import BaseMatcher
from repro.match.cond import CondRelationMatcher
from repro.match.instantiation import Instantiation
from repro.match.naive import NaiveMatcher
from repro.match.rete.network import ReteMatcher
from repro.match.treat import TreatMatcher
from repro.sim.engine import Simulator
from repro.wm.memory import WMDelta, WorkingMemory

#: Inner matcher registry (mirrors the engine's name → class map
#: without importing the engine layer).
INNER_MATCHERS: dict[str, type[BaseMatcher]] = {
    "naive": NaiveMatcher,
    "rete": ReteMatcher,
    "treat": TreatMatcher,
    "cond": CondRelationMatcher,
}

BACKENDS = ("thread", "serial", "des")
ASSIGNMENTS = ("round-robin", "hash", "lpt")
DEFAULT_SHARDS = 4

#: Per-production match cost: a callable or a name → cost mapping.
CostModel = Callable[[Production], float] | Mapping[str, float]


def parse_partitioned_spec(spec: str) -> tuple[str, int, str]:
    """Parse ``partitioned[:inner[:shards[:backend]]]``.

    >>> parse_partitioned_spec("partitioned:rete:4")
    ('rete', 4, 'thread')
    """
    parts = spec.split(":")
    if parts[0] != "partitioned" or len(parts) > 4:
        raise MatchError(
            f"bad partitioned matcher spec {spec!r}; expected "
            "partitioned[:inner[:shards[:backend]]]"
        )
    inner = parts[1] if len(parts) > 1 and parts[1] else "rete"
    if inner not in INNER_MATCHERS:
        raise MatchError(
            f"unknown inner matcher {inner!r} in {spec!r}; expected one "
            f"of {sorted(INNER_MATCHERS)}"
        )
    shards = DEFAULT_SHARDS
    if len(parts) > 2 and parts[2]:
        try:
            shards = int(parts[2])
        except ValueError:
            raise MatchError(
                f"bad shard count {parts[2]!r} in {spec!r}"
            ) from None
    if shards < 1:
        raise MatchError(f"need >= 1 shard, got {shards}")
    backend = parts[3] if len(parts) > 3 and parts[3] else "thread"
    if backend not in BACKENDS:
        raise MatchError(
            f"unknown backend {backend!r} in {spec!r}; expected one of "
            f"{BACKENDS}"
        )
    return inner, shards, backend


@dataclass
class _Shard:
    """One partition: a passive inner matcher plus its LPT load."""

    index: int
    matcher: BaseMatcher
    load: float = 0.0

    def rule_names(self) -> list[str]:
        return sorted(self.matcher.productions)


def _merge_key(instantiation: Instantiation) -> tuple:
    """Recency order (most recent first), rule name as tiebreak."""
    return (
        tuple(-t for t in instantiation.recency_key()),
        instantiation.rule_name,
    )


class PartitionedMatcher(BaseMatcher):
    """Rule-sharded parallel matcher implementing :class:`Matcher`.

    Parameters
    ----------
    memory:
        The shared working memory (read-only during match).
    shards:
        Number of partitions ``K`` (the paper's ``Np`` for the match
        phase).
    inner:
        Inner matcher: a name from :data:`INNER_MATCHERS` or a
        ``WorkingMemory -> BaseMatcher`` factory.
    backend:
        ``"thread"`` (default; ThreadPoolExecutor barrier),
        ``"serial"`` (in-process reference) or ``"des"``
        (virtual-time, cost-charged).
    assign:
        Production→shard policy: ``"round-robin"`` (default),
        ``"hash"`` (stable on rule name) or ``"lpt"`` (greedy
        least-loaded under ``cost_model`` — with a full
        :meth:`add_productions` this is exactly LPT scheduling and
        realizes :func:`repro.analysis.match_parallel.lpt_makespan`).
    cost_model:
        Per-production match cost (callable or name→cost mapping);
        used by ``assign="lpt"`` and charged by the DES backend.
        Defaults to uniform 1.0.
    observer:
        Observability sink; defaults to the module-level observer.
    simulator:
        Virtual clock for the DES backend (a fresh
        :class:`~repro.sim.engine.Simulator` when omitted).
    """

    def __init__(
        self,
        memory: WorkingMemory,
        shards: int = DEFAULT_SHARDS,
        inner: str | Callable[[WorkingMemory], BaseMatcher] = "rete",
        backend: str = "thread",
        assign: str = "round-robin",
        cost_model: CostModel | None = None,
        observer=None,
        simulator: Simulator | None = None,
    ) -> None:
        super().__init__(memory)
        if shards < 1:
            raise MatchError(f"need >= 1 shard, got {shards}")
        if backend not in BACKENDS:
            raise MatchError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if assign not in ASSIGNMENTS:
            raise MatchError(
                f"unknown assignment {assign!r}; expected one of "
                f"{ASSIGNMENTS}"
            )
        if isinstance(inner, str):
            if inner not in INNER_MATCHERS:
                raise MatchError(
                    f"unknown inner matcher {inner!r}; expected one of "
                    f"{sorted(INNER_MATCHERS)}"
                )
            factory = INNER_MATCHERS[inner]
            self.inner_name = inner
        else:
            factory = inner
            self.inner_name = getattr(inner, "__name__", "custom")
        self.backend = backend
        self.assign = assign
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self._cost_model = cost_model
        self._shards = [_Shard(i, factory(memory)) for i in range(shards)]
        self._rule_shard: dict[str, int] = {}
        self._registered = 0
        self._batch_depth = 0
        self._buffer: list[WMDelta] = []
        self._pool: ThreadPoolExecutor | None = None
        if backend == "des":
            self.simulator = (
                simulator if simulator is not None else Simulator()
            )
        else:
            self.simulator = simulator
        #: Virtual busy time summed over shards (DES backend) — the
        #: sequential match time the parallel makespan is compared to.
        self.virtual_busy = 0.0
        #: Completed flushes and total deltas fed through them.
        self.flush_count = 0
        self.delta_count = 0

    # -- partitioning --------------------------------------------------------------------

    def _cost(self, production: Production) -> float:
        model = self._cost_model
        if model is None:
            return 1.0
        if callable(model):
            return float(model(production))
        return float(model.get(production.name, 1.0))

    def _pick_shard(self, production: Production) -> _Shard:
        if self.assign == "hash":
            digest = zlib.crc32(production.name.encode("utf-8"))
            return self._shards[digest % len(self._shards)]
        if self.assign == "lpt":
            return min(self._shards, key=lambda s: (s.load, s.index))
        return self._shards[self._registered % len(self._shards)]

    def add_productions(self, productions: Iterable[Production]) -> None:
        productions = list(productions)
        if self.assign == "lpt":
            # Sorting by descending cost makes the greedy least-loaded
            # placement exactly LPT list scheduling.
            productions.sort(key=lambda p: (-self._cost(p), p.name))
        for production in productions:
            self.add_production(production)

    def add_production(self, production: Production) -> None:
        if production.name in self._rule_shard:
            self.remove_production(production.name)
        # Validate and plan before picking a shard — the inner matcher
        # re-registers, but the outer guard keeps one token layout
        # across all shards and rejects unvalidated productions even
        # when a shard's inner matcher is a custom factory.
        self._register(production)
        shard = self._pick_shard(production)
        self._rule_shard[production.name] = shard.index
        shard.load += self._cost(production)
        self._registered += 1
        shard.matcher.add_production(production)
        self._merge()

    def remove_production(self, name: str) -> None:
        index = self._rule_shard.pop(name, None)
        production = self._productions.get(name)
        self._unregister(name)
        if index is None:
            return
        shard = self._shards[index]
        if production is not None:
            shard.load -= self._cost(production)
        shard.matcher.remove_production(name)
        self._merge()

    def shard_of(self, name: str) -> int | None:
        """The shard index owning production ``name`` (None if absent)."""
        return self._rule_shard.get(name)

    # -- lifecycle -----------------------------------------------------------------------

    def rebuild(self) -> None:
        for shard in self._shards:
            if shard.matcher.is_attached:
                shard.matcher.rebuild()
            else:
                shard.matcher.attach_passive()
        self._merge()

    def detach(self) -> None:
        super().detach()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # -- delta batching ------------------------------------------------------------------

    def _on_delta(self, delta: WMDelta) -> None:
        if self._batch_depth > 0:
            self._buffer.append(delta)
        else:
            self._flush([delta])

    @contextmanager
    def batch(self) -> Iterator["PartitionedMatcher"]:
        """Defer matching to one barrier.

        Deltas published inside the block are buffered and replayed to
        every shard together on exit.  The shared conflict set is
        stale *inside* the block — use only where nothing consults it
        mid-batch (bulk loads, benchmarks).
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                buffered, self._buffer = self._buffer, []
                self._flush(buffered)

    def _flush(self, deltas: Sequence[WMDelta]) -> None:
        if not deltas:
            return
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        shards = self._shards
        flush_span = None
        flush_start = 0.0
        wall_start = time.perf_counter() if obs.enabled else 0.0
        if spans is not None:
            # Parent under the innermost scoped span — the engine's
            # phase.match while candidates are gathered, or its cycle
            # span when a mid-RHS delta triggers an immediate flush.
            flush_start = spans.clock()
            flush_span = spans.start(
                "match.flush", parent=spans.current(), ts=flush_start,
                deltas=len(deltas), backend=self.backend,
            )
        if self.backend == "thread" and len(shards) > 1:
            pool = self._ensure_pool()
            durations = list(
                pool.map(lambda s: self._replay(s, deltas), shards)
            )
        elif self.backend == "des":
            durations = self._des_replay(deltas)
        else:
            durations = [self._replay(shard, deltas) for shard in shards]
        merge_start = time.perf_counter()
        self._merge()
        merge_seconds = time.perf_counter() - merge_start
        self.flush_count += 1
        self.delta_count += len(deltas)
        if flush_span is not None:
            self._flush_spans(
                spans, flush_span, flush_start, durations, merge_seconds
            )
        if obs.enabled:
            for shard, seconds in zip(shards, durations):
                obs.shard_match(shard.index, seconds, len(deltas))
            obs.match_batch(len(deltas), len(shards), merge_seconds)
            obs.match_flush(
                len(shards), time.perf_counter() - wall_start
            )

    def _flush_spans(
        self, spans, flush_span, flush_start: float,
        durations: Sequence[float], merge_seconds: float,
    ) -> None:
        """Child spans (or annotations) for one flush's shard work.

        Shard durations are wall-clock (``perf_counter``) except on
        the DES backend, where they are virtual charges.  Per-shard
        child spans are emitted only when the recorder itself runs on
        ``perf_counter`` — under an injected (virtual) clock the
        durations would mix timelines, so they stay as fields.
        """
        wall_clock = spans.clock is time.perf_counter
        if self.backend == "des" or not wall_clock:
            flush_span.annotate(
                shard_seconds=[round(d, 9) for d in durations]
            )
        else:
            concurrent_shards = (
                self.backend == "thread" and len(self._shards) > 1
            )
            offset = flush_start
            for shard, seconds in zip(self._shards, durations):
                start = flush_start if concurrent_shards else offset
                spans.record(
                    "match.shard", start=start, end=start + seconds,
                    parent=flush_span, shard=shard.index,
                )
                offset += seconds
        flush_span.finish(merge_seconds=merge_seconds)

    def _replay(self, shard: _Shard, deltas: Sequence[WMDelta]) -> float:
        start = time.perf_counter()
        feed = shard.matcher.feed
        for delta in deltas:
            feed(delta)
        return time.perf_counter() - start

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=len(self._shards),
                thread_name_prefix="match-shard",
            )
        return self._pool

    # -- DES substrate -------------------------------------------------------------------

    def _des_replay(self, deltas: Sequence[WMDelta]) -> list[float]:
        """Replay on the virtual clock, charging per-production costs.

        Each shard's batch charge is ``|batch| × Σ cost(p)`` over its
        productions; all shards start at the barrier and the simulator
        advances to the latest completion, so ``simulator.now``
        accumulates the parallel match makespan — the executable
        counterpart of :func:`repro.analysis.match_parallel.
        lpt_makespan`.
        """
        sim = self.simulator
        start = sim.now
        charges: list[float] = []
        for shard in self._shards:
            charge = len(deltas) * sum(
                self._cost(p) for p in shard.matcher.productions.values()
            )
            charges.append(charge)

            def complete(_sim: Simulator, shard: _Shard = shard) -> None:
                self._replay(shard, deltas)

            sim.at(start + charge, complete)
        sim.run()
        self.virtual_busy += sum(charges)
        return charges

    @property
    def virtual_makespan(self) -> float:
        """Virtual parallel match time accumulated by the DES backend."""
        return self.simulator.now if self.simulator is not None else 0.0

    def virtual_speedup(self) -> float:
        """Sequential over parallel virtual match time (DES backend)."""
        makespan = self.virtual_makespan
        if makespan == 0:
            return 1.0
        return self.virtual_busy / makespan

    # -- merge ---------------------------------------------------------------------------

    def _merge(self) -> None:
        """Fold per-shard conflict-set deltas into the shared set.

        Deterministic: shard-id order, removals before adds, each in
        recency order.  Shards own disjoint rule sets, so the merged
        membership equals the union of shard memberships and matches
        the monolithic matcher exactly.
        """
        for shard in self._shards:
            delta = shard.matcher.conflict_set.take_delta()
            if delta.is_empty():
                continue
            for instantiation in sorted(delta.removed, key=_merge_key):
                self.conflict_set.remove(instantiation)
            for instantiation in sorted(delta.added, key=_merge_key):
                self.conflict_set.add(instantiation)

    # -- introspection -------------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Shard layout and flush statistics (benchmarks, debugging)."""
        return {
            "shards": len(self._shards),
            "inner": self.inner_name,
            "backend": self.backend,
            "assign": self.assign,
            "layout": {
                shard.index: shard.rule_names() for shard in self._shards
            },
            "loads": [shard.load for shard in self._shards],
            "flushes": self.flush_count,
            "deltas": self.delta_count,
            "virtual_busy": self.virtual_busy,
            "virtual_makespan": self.virtual_makespan,
        }
