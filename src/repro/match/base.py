"""The matcher protocol shared by naive, Rete and TREAT matchers."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.errors import MatchError
from repro.lang.compile import TokenPlan, build_token_plan
from repro.lang.production import Production, ensure_validated
from repro.match.conflict_set import ConflictSet
from repro.wm.memory import WorkingMemory


@runtime_checkable
class Matcher(Protocol):
    """Anything that maintains a conflict set against a working memory.

    Lifecycle: construct with the working memory, add productions, then
    call :meth:`attach`.  After attaching, the matcher keeps
    :attr:`conflict_set` consistent with the store — incrementally
    (Rete/TREAT) or by recomputation (naive) — as WM deltas arrive.
    """

    conflict_set: ConflictSet

    def add_production(self, production: Production) -> None:
        """Register a production; may immediately create instantiations."""
        ...

    def add_productions(self, productions: Iterable[Production]) -> None:
        """Register several productions."""
        ...

    def remove_production(self, name: str) -> None:
        """Unregister the production called ``name`` and retract its
        instantiations from the conflict set."""
        ...

    def attach(self) -> None:
        """Subscribe to working-memory deltas and build initial matches."""
        ...

    def detach(self) -> None:
        """Unsubscribe from working-memory deltas."""
        ...


class BaseMatcher:
    """Shared plumbing for the concrete matchers."""

    def __init__(self, memory: WorkingMemory) -> None:
        self.memory = memory
        self.conflict_set = ConflictSet()
        self._productions: dict[str, Production] = {}
        self._plans: dict[str, TokenPlan] = {}
        self._attached = False

    @property
    def productions(self) -> dict[str, Production]:
        """Registered productions by name (read-mostly view)."""
        return self._productions

    def _register(self, production: Production) -> TokenPlan:
        """Validate, build/fetch the token plan, and record both.

        Every concrete matcher routes ``add_production`` through here:

        * unvalidated productions (built without :meth:`Production.
          validate`, e.g. via ``object.__new__``) are rejected now —
          the compiled beta closures assume load-time validation, so a
          forward-referencing predicate must not reach a join;
        * all of one matcher's plans must share a token layout: Rete
          shares join nodes between productions, and a node compiled
          for slot tuples cannot probe dict tokens.
        """
        ensure_validated(production)
        plan = build_token_plan(production)
        if self._plans:
            kind = next(iter(self._plans.values())).kind
            if plan.kind != kind:
                raise MatchError(
                    f"matcher already holds {kind!r}-token plans; "
                    f"cannot register {production.name!r} with a "
                    f"{plan.kind!r} plan (exit the mode context or use "
                    f"a fresh matcher)"
                )
        self._productions[production.name] = production
        self._plans[production.name] = plan
        return plan

    def _unregister(self, name: str) -> None:
        self._productions.pop(name, None)
        self._plans.pop(name, None)

    def add_productions(self, productions: Iterable[Production]) -> None:
        for production in productions:
            self.add_production(production)

    def add_production(self, production: Production) -> None:
        raise NotImplementedError

    def remove_production(self, name: str) -> None:
        raise NotImplementedError

    @property
    def is_attached(self) -> bool:
        """Whether the matcher is live (building matches on deltas)."""
        return self._attached

    def attach(self) -> None:
        if not self._attached:
            self.memory.subscribe(self._on_delta)
            self._attached = True
            self.rebuild()

    def attach_passive(self) -> None:
        """Build matches and go live WITHOUT subscribing to the store.

        Used by driving matchers (:class:`repro.match.partitioned.
        PartitionedMatcher`) that subscribe once themselves and feed
        deltas to passive inner matchers via :meth:`feed` — e.g. as
        batched replays behind a barrier.
        """
        if not self._attached:
            self._attached = True
            self.rebuild()

    def detach(self) -> None:
        if self._attached:
            self.memory.unsubscribe(self._on_delta)
            self._attached = False

    def feed(self, delta) -> None:
        """Process one WM delta on behalf of a driving matcher."""
        self._on_delta(delta)

    @contextmanager
    def batch(self) -> Iterator["BaseMatcher"]:
        """Group WM deltas behind one match barrier (no-op by default).

        :class:`~repro.match.partitioned.PartitionedMatcher` overrides
        this to buffer deltas published inside the block and replay
        them to every shard together on exit.  The base implementation
        matches incrementally as usual, so single-threaded engine
        drive loops can wrap RHS execution in ``matcher.batch()``
        unconditionally.  Not thread-safe — only for callers that own
        the matcher's delta stream.
        """
        yield self

    def rebuild(self) -> None:
        """Recompute all matches from the current store contents."""
        raise NotImplementedError

    def _on_delta(self, delta) -> None:  # pragma: no cover - overridden
        raise NotImplementedError
