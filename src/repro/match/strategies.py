"""Conflict-resolution strategies (the *select* phase).

Section 3: strategies like OPS5's LEX and MEA "are heuristics that
strongly favor some sequences over others.  However ... they do not
rule out any execution sequence entirely."  Accordingly every strategy
here picks from the eligible instantiations but never adds or removes
any — the semantic-consistency machinery of :mod:`repro.core` is
strategy-agnostic, exactly as Section 3 requires.
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence, runtime_checkable

from repro.match.instantiation import Instantiation


@runtime_checkable
class Strategy(Protocol):
    """Picks the dominant instantiation from a non-empty candidate list."""

    name: str

    def select(
        self, candidates: Sequence[Instantiation]
    ) -> Instantiation: ...


class LexStrategy:
    """OPS5 LEX: prefer recency (descending timetag vectors), then
    specificity (number of LHS tests), then stable name order."""

    name = "lex"

    def select(self, candidates: Sequence[Instantiation]) -> Instantiation:
        return max(candidates, key=_lex_key)


class MeaStrategy:
    """OPS5 MEA: recency of the first condition element dominates,
    remaining ties resolved as in LEX."""

    name = "mea"

    def select(self, candidates: Sequence[Instantiation]) -> Instantiation:
        return max(
            candidates,
            key=lambda inst: (inst.mea_key(), _lex_key(inst)),
        )


class PriorityStrategy:
    """Highest production priority wins; ties resolved by LEX."""

    name = "priority"

    def select(self, candidates: Sequence[Instantiation]) -> Instantiation:
        return max(
            candidates,
            key=lambda inst: (inst.production.priority, _lex_key(inst)),
        )


class FifoStrategy:
    """Oldest instantiation first (ascending recency): a fair queue."""

    name = "fifo"

    def select(self, candidates: Sequence[Instantiation]) -> Instantiation:
        return min(candidates, key=lambda inst: inst.recency_key())


class RandomStrategy:
    """Uniformly random choice; seedable for reproducible runs.

    Useful for sampling the execution graph: repeated runs explore
    different valid sequences of ``ES_single``.
    """

    name = "random"

    def __init__(self, seed: int | None = None) -> None:
        self._rng = random.Random(seed)

    def select(self, candidates: Sequence[Instantiation]) -> Instantiation:
        ordered = sorted(candidates, key=_stable_key)
        return ordered[self._rng.randrange(len(ordered))]


def _specificity(instantiation: Instantiation) -> int:
    return sum(len(ce.tests) for ce in instantiation.production.lhs)


def _lex_key(instantiation: Instantiation) -> tuple:
    return (
        instantiation.recency_key(),
        _specificity(instantiation),
        # Invert name ordering into a max-compatible tiebreak: stable
        # but arbitrary; only reached for fully tied instantiations.
        tuple(-ord(c) for c in instantiation.production.name),
    )


def _stable_key(instantiation: Instantiation) -> tuple:
    return (instantiation.production.name, instantiation.timetags())


_REGISTRY = {
    "lex": LexStrategy,
    "mea": MeaStrategy,
    "priority": PriorityStrategy,
    "fifo": FifoStrategy,
    "random": RandomStrategy,
}


def make_strategy(name: str, seed: int | None = None) -> Strategy:
    """Instantiate a strategy by name.

    >>> make_strategy("lex").name
    'lex'
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    if cls is RandomStrategy:
        return RandomStrategy(seed)
    return cls()
