"""repro — a reproduction of *Parallelism in Database Production
Systems* (Srivastava, Hwang & Tan, ICDE 1990).

An OPS5-style database production system with:

* a rule DSL and programmatic builder (:mod:`repro.lang`),
* relational working memory with undo/snapshots (:mod:`repro.wm`),
* naive, Rete and TREAT matchers (:mod:`repro.match`),
* the paper's execution-semantics formalism — execution graphs,
  ``ES_single``, semantic consistency (:mod:`repro.core`),
* a conventional 2PL lock manager and the paper's novel Rc/Ra/Wa
  scheme with commit-time conflict resolution (:mod:`repro.locks`),
* single-thread, wave-parallel and real-thread engines
  (:mod:`repro.engine`),
* a deterministic multiprocessor simulator reproducing every Section 5
  figure (:mod:`repro.sim`, :mod:`repro.analysis`).

Quickstart::

    from repro import Interpreter, RuleBuilder, var, WorkingMemory

    rule = (
        RuleBuilder("ship-open-orders")
        .when("order", id=var("o"), status="open")
        .when_not("hold", order=var("o"))
        .modify(1, status="shipped")
        .build()
    )
    wm = WorkingMemory()
    wm.make("order", id=1, status="open")
    result = Interpreter([rule], wm).run()
    print(result.firing_sequence())      # ('ship-open-orders',)
"""

from repro.errors import (
    DeadlockDetected,
    EngineError,
    LockError,
    ParseError,
    ReproError,
    SchemaError,
    TransactionAborted,
    ValidationError,
)
from repro.wm import (
    Catalog,
    DurableStore,
    Query,
    RelationSchema,
    WME,
    WMSnapshot,
    WorkingMemory,
)
from repro.lang import (
    Production,
    RuleBuilder,
    parse_production,
    parse_program,
)
from repro.lang.builder import var, gt, ge, lt, le, ne
from repro.match import (
    CondRelationMatcher,
    ConflictSet,
    Instantiation,
    NaiveMatcher,
    ReteMatcher,
    TreatMatcher,
    make_strategy,
)
from repro.core import (
    AddDeleteSystem,
    ConsistencyChecker,
    ExecutionGraph,
    check_theorem_1,
    check_theorem_2,
    interferes,
    section_3_3_example,
    table_5_1,
    table_5_2,
)
from repro.locks import (
    ConservativeTwoPhaseScheme,
    LockMode,
    RcScheme,
    TwoPhaseScheme,
    table_4_1,
)
from repro.txn import History, Transaction, is_conflict_serializable
from repro.engine import (
    Interpreter,
    MultiUserEngine,
    ParallelEngine,
    PartitionedEngine,
    Session,
    ThreadedWaveExecutor,
    replay_commit_sequence,
)
from repro.lang.lint import lint_program
from repro.sim import (
    FiringSpec,
    simulate_lock_scheme,
    simulate_multithread,
    simulate_single_thread,
)
from repro.analysis import section_5_cases

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ParseError",
    "ValidationError",
    "SchemaError",
    "TransactionAborted",
    "LockError",
    "DeadlockDetected",
    "EngineError",
    # working memory
    "WME",
    "WorkingMemory",
    "WMSnapshot",
    "RelationSchema",
    "Catalog",
    "DurableStore",
    "Query",
    # language
    "Production",
    "RuleBuilder",
    "parse_production",
    "parse_program",
    "var",
    "gt",
    "ge",
    "lt",
    "le",
    "ne",
    # match
    "Instantiation",
    "ConflictSet",
    "NaiveMatcher",
    "ReteMatcher",
    "TreatMatcher",
    "CondRelationMatcher",
    "make_strategy",
    # core semantics
    "AddDeleteSystem",
    "ExecutionGraph",
    "ConsistencyChecker",
    "check_theorem_1",
    "check_theorem_2",
    "interferes",
    "section_3_3_example",
    "table_5_1",
    "table_5_2",
    # locks & transactions
    "LockMode",
    "TwoPhaseScheme",
    "ConservativeTwoPhaseScheme",
    "RcScheme",
    "table_4_1",
    "Transaction",
    "History",
    "is_conflict_serializable",
    # engines
    "Interpreter",
    "ParallelEngine",
    "ThreadedWaveExecutor",
    "MultiUserEngine",
    "Session",
    "PartitionedEngine",
    "replay_commit_sequence",
    "lint_program",
    # simulation & analysis
    "simulate_multithread",
    "simulate_single_thread",
    "simulate_lock_scheme",
    "FiringSpec",
    "section_5_cases",
]
