"""Rule-level workload programs.

Complete production-system programs used by examples, tests and
benchmarks — currently the classic *Miss Manners* seating benchmark
(:mod:`repro.workloads.manners`), the standard stress test for
production-system match performance.
"""

from repro.workloads.manners import (
    build_manners_memory,
    build_manners_rules,
    seating_order,
    validate_seating,
)

__all__ = [
    "build_manners_rules",
    "build_manners_memory",
    "seating_order",
    "validate_seating",
]
