"""Mini Miss Manners: the classic production-system match benchmark.

Miss Manners seats dinner guests so that neighbours have opposite sex
and share a hobby.  The OPS5 original is the standard stress test for
match algorithms (its joins over guests × hobbies dominate run time),
which is exactly the role it plays here: a realistic rule program whose
cost scales with guest count, used to compare the matchers.

This is the greedy variant: the generated guest list is constructed so
a chain extension never dead-ends (alternating sexes, one shared hobby
plus random extras), keeping the program backtracking-free while
preserving the heavy join structure.
"""

from __future__ import annotations

import random

from repro.lang import parse_program
from repro.lang.production import Production
from repro.wm.memory import WorkingMemory

_RULES = """
(p seed-first-seat 9
   (context ^phase "start")
   (guest ^name <g> ^sex <s>)
   -->
   (modify 1 ^phase "seat")
   (make seating ^seat 1 ^name <g>)
   (make seated ^name <g>)
   (make last ^seat 1 ^name <g> ^sex <s>))

(p extend-seating 5
   (context ^phase "seat")
   (last ^seat <n> ^name <g1> ^sex <s1>)
   (hobby ^name <g1> ^h <h>)
   (guest ^name <g2> ^sex <s2> ^sex <> <s1>)
   (hobby ^name <g2> ^h <h>)
   -(seated ^name <g2>)
   -->
   (modify 2 ^seat (<n> + 1) ^name <g2> ^sex <s2>)
   (make seating ^seat (<n> + 1) ^name <g2>)
   (make seated ^name <g2>))

(p all-seated 9
   (context ^phase "seat")
   (party ^size <n>)
   (last ^seat <n>)
   -->
   (modify 1 ^phase "done")
   (halt))
"""


def build_manners_rules() -> list[Production]:
    """The three-rule mini-manners program."""
    return parse_program(_RULES)


def build_manners_memory(
    n_guests: int,
    hobbies_per_guest: int = 3,
    n_hobbies: int = 6,
    seed: int = 0,
) -> WorkingMemory:
    """Generate a solvable guest list.

    Guests alternate sex in generation order and all share hobby
    ``"h0"`` (guaranteeing the greedy chain never dead-ends); each also
    gets ``hobbies_per_guest - 1`` random extra hobbies, which is what
    makes the join fan-out realistic.
    """
    rng = random.Random(seed)
    memory = WorkingMemory()
    memory.make("context", phase="start")
    memory.make("party", size=n_guests)
    hobby_pool = [f"h{i}" for i in range(1, n_hobbies)]
    for index in range(n_guests):
        name = f"guest{index}"
        sex = "m" if index % 2 == 0 else "f"
        memory.make("guest", name=name, sex=sex)
        memory.make("hobby", name=name, h="h0")
        extra_count = min(hobbies_per_guest - 1, len(hobby_pool))
        for hobby in rng.sample(hobby_pool, extra_count):
            memory.make("hobby", name=name, h=hobby)
    return memory


def seating_order(memory: WorkingMemory) -> list[str]:
    """Guest names in seat order from the final working memory."""
    seats = sorted(
        memory.elements("seating"), key=lambda w: w["seat"]
    )
    return [w["name"] for w in seats]


def validate_seating(memory: WorkingMemory) -> None:
    """Assert the seating solves the manners constraints.

    Raises ``AssertionError`` with a diagnostic on any violation:
    everyone seated exactly once, seats contiguous from 1, adjacent
    guests of opposite sex sharing at least one hobby.
    """
    guests = {w["name"]: w for w in memory.elements("guest")}
    hobbies: dict[str, set[str]] = {}
    for wme in memory.elements("hobby"):
        hobbies.setdefault(wme["name"], set()).add(wme["h"])
    order = seating_order(memory)
    assert len(order) == len(guests), (
        f"seated {len(order)} of {len(guests)} guests"
    )
    assert len(set(order)) == len(order), "a guest was seated twice"
    seats = sorted(w["seat"] for w in memory.elements("seating"))
    assert seats == list(range(1, len(order) + 1)), (
        f"seats not contiguous: {seats}"
    )
    for left, right in zip(order, order[1:]):
        assert guests[left]["sex"] != guests[right]["sex"], (
            f"{left} and {right} have the same sex"
        )
        shared = hobbies[left] & hobbies[right]
        assert shared, f"{left} and {right} share no hobby"
