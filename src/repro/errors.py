"""Exception hierarchy shared across the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the production system can catch one base class.  The
sub-hierarchies mirror the subsystems: working memory, rule language,
matching, locking, transactions, and the simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Working memory
# ---------------------------------------------------------------------------


class WorkingMemoryError(ReproError):
    """Base class for working-memory errors."""


class SchemaError(WorkingMemoryError):
    """A schema definition or a WME violating its schema."""


class UnknownElementError(WorkingMemoryError):
    """An operation referenced a WME timetag not present in memory."""


class StorageFailure(WorkingMemoryError):
    """A durable-store write failed (real I/O error or injected fault)."""


class DuplicateSchemaError(SchemaError):
    """A relation schema was declared twice with conflicting attributes."""


# ---------------------------------------------------------------------------
# Rule language
# ---------------------------------------------------------------------------


class LanguageError(ReproError):
    """Base class for rule-language errors."""


class ParseError(LanguageError):
    """The rule DSL text could not be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ValidationError(LanguageError):
    """A structurally valid production violates a semantic rule.

    Examples: an RHS action referencing a variable never bound on the
    LHS, or a ``modify`` action naming a negated condition element.
    """


# ---------------------------------------------------------------------------
# Matching
# ---------------------------------------------------------------------------


class MatchError(ReproError):
    """Base class for match-phase errors."""


# ---------------------------------------------------------------------------
# Transactions and locking
# ---------------------------------------------------------------------------


class TransactionError(ReproError):
    """Base class for transaction errors."""


class TransactionAborted(TransactionError):
    """Raised inside a transaction that has been aborted.

    The Rc/Ra/Wa scheme of Section 4.3 aborts Rc holders when a
    conflicting Wa holder commits first; the engine translates that
    abort into this exception so the firing unwinds cleanly.
    """

    def __init__(self, txn_id: str, reason: str = "") -> None:
        detail = f": {reason}" if reason else ""
        super().__init__(f"transaction {txn_id} aborted{detail}")
        self.txn_id = txn_id
        self.reason = reason


class LockError(ReproError):
    """Base class for lock-manager errors."""


class LockDenied(LockError):
    """A non-blocking lock request could not be granted."""


class DeadlockDetected(LockError):
    """The waits-for graph contains a cycle involving the requester."""

    def __init__(self, victim: str, cycle: tuple[str, ...]) -> None:
        super().__init__(
            f"deadlock: victim {victim}, cycle {' -> '.join(cycle)}"
        )
        self.victim = victim
        self.cycle = cycle


class LockUpgradeError(LockError):
    """An unsupported lock-mode transition was requested."""


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class InjectedFault(ReproError):
    """Base class for failures raised on purpose by the fault layer.

    Engines treat these as *survivable*: the firing is rolled back and
    re-driven (or abandoned) by the retry policy, never propagated as a
    crash of the run itself.
    """


class FiringCrashed(InjectedFault):
    """A firing thread was killed after executing its RHS but before
    its commit was recorded — the mid-flight crash scenario."""

    def __init__(self, txn_id: str, rule_name: str = "") -> None:
        rule = f" ({rule_name})" if rule_name else ""
        super().__init__(f"firing {txn_id}{rule} crashed before commit")
        self.txn_id = txn_id
        self.rule_name = rule_name


# ---------------------------------------------------------------------------
# Simulator and engine
# ---------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-simulator errors."""


class EngineError(ReproError):
    """Base class for interpreter/engine errors."""


class HaltRequested(EngineError):
    """Raised by the ``halt`` RHS action to stop the recognize-act cycle."""
