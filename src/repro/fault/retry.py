"""Bounded retry with exponential backoff and seeded jitter.

A :class:`RetryPolicy` is immutable and *pure*: :meth:`backoff` is a
function of ``(seed, key, attempt)`` only, so concurrent firing
threads need no shared RNG and a re-run with the same seed produces
the same delays — the property the chaos suite leans on.

Time is pluggable: the threaded executor sleeps for real
(:func:`time.sleep`); the deterministic engines charge delays to a
:class:`VirtualSleeper`, which just accumulates seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ReproError


@dataclass(frozen=True)
class RetryPolicy:
    """How timed-out/aborted firings are re-driven.

    Parameters
    ----------
    max_attempts:
        Total attempts per firing, including the first (so
        ``max_attempts=1`` disables retries).
    base_delay:
        Backoff before the second attempt, in seconds.
    multiplier:
        Exponential growth factor per subsequent attempt.
    max_delay:
        Backoff ceiling, in seconds.
    jitter:
        Fraction of each backoff that is randomized: the delay is
        drawn uniformly from ``[raw * (1 - jitter), raw]``.  Zero
        means fully deterministic backoff.
    seed:
        Seed for the jitter draw (per ``(key, attempt)``), so delays
        are reproducible without shared state.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Delay before attempt ``attempt + 1``, given ``attempt`` failed.

        ``attempt`` is 1-based (the first, un-delayed try is attempt 1).
        ``key`` decorrelates jitter across firings retrying in lockstep
        (pass the rule name or transaction id).
        """
        if attempt < 1:
            raise ReproError(f"attempt is 1-based, got {attempt}")
        raw = min(
            self.base_delay * self.multiplier ** (attempt - 1),
            self.max_delay,
        )
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        draw = random.Random(f"{self.seed}|{key}|{attempt}").random()
        return raw * (1.0 - self.jitter + self.jitter * draw)

    def should_retry(self, attempt: int) -> bool:
        """May another attempt follow 1-based attempt ``attempt``?"""
        return attempt < self.max_attempts


#: A policy that never retries (single attempt, no backoff).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)


class VirtualSleeper:
    """A sleeper that only accumulates: virtual time for deterministic
    engines and tests.

    >>> clock = VirtualSleeper()
    >>> clock(0.25); clock(0.5)
    >>> clock.total
    0.75
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.calls = 0

    def __call__(self, seconds: float) -> None:
        self.total += seconds
        self.calls += 1
