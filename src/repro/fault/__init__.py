"""Fault injection and retry: the robustness layer.

The paper's semantic-consistency claim (``ES_M ⊆ ES_single``,
Definitions 3.1/3.2) is demonstrated *under adversity* by injecting
failures on purpose — denied and delayed lock grants, forced mid-RHS
aborts, firings killed before commit, failed durable-store writes —
and asserting that every committed firing sequence still replays
single-threaded.

* :class:`FaultPlan` / :class:`FaultSpec` — a deterministic, seeded
  description of which faults fire where.
* :class:`FaultInjector` — the runtime that executes a plan against an
  engine (one per run; thread-safe).
* :class:`RetryPolicy` — bounded retries with exponential backoff and
  seeded jitter, used by the engines to re-drive timed-out/aborted
  firings instead of silently deferring them.
* :class:`VirtualSleeper` — virtual time for deterministic backoff.
* :mod:`repro.fault.storage_chaos` — the crash-equivalence sweep that
  crashes the durable store at every checkpoint/rotation/compaction
  window and proves recovery lands on the journalled prefix.
"""

from repro.fault.plan import (
    FAULT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    LOCK_KINDS,
)
from repro.fault.injector import FaultInjector
from repro.fault.retry import NO_RETRY, RetryPolicy, VirtualSleeper
from repro.fault.storage_chaos import (
    CrashCase,
    SweepResult,
    crash_equivalence_sweep,
    memory_signature,
    run_crash_case,
)

__all__ = [
    "FAULT_KINDS",
    "LOCK_KINDS",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "RetryPolicy",
    "NO_RETRY",
    "VirtualSleeper",
    "CrashCase",
    "SweepResult",
    "crash_equivalence_sweep",
    "memory_signature",
    "run_crash_case",
]
