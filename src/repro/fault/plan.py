"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a *pure description* of which failures should
be injected where: it is a tuple of :class:`FaultSpec` rules plus a
seed.  Turning a plan into runtime behavior is the job of
:class:`~repro.fault.injector.FaultInjector` (one injector per run, so
plans can be shared and re-run).

Determinism contract
--------------------
Given the same plan and the same *sequence of site visits*, the same
faults fire.  The deterministic engines (:class:`ParallelEngine`,
:class:`MultiUserEngine`) visit sites in a fixed order, so a seeded
chaos run there is exactly reproducible.  Under real threads the visit
order is scheduler-dependent; for deterministic threaded scenarios use
``rate=1.0`` specs narrowed by ``rule``/``mode``/``obj`` filters (and
``max_hits``), which fire independently of visit order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Literal, Sequence

from repro.errors import ReproError

#: Where a fault can be injected.
#:
#: * ``lock_delay``  — stall a lock acquisition before it is issued;
#: * ``lock_deny``   — refuse a lock acquisition outright (the firing
#:   sees an unavailable lock, exactly like a timeout);
#: * ``abort_rhs``   — force the transaction to abort mid-RHS, as a
#:   rule-(ii) victim would;
#: * ``crash_commit``— kill the firing after its RHS executed but
#:   before its commit is recorded (rollback must recover);
#: * ``storage_fail``— fail a durable-store operation (WAL write,
#:   segment rotation, checkpoint, or compaction window; narrow with
#:   ``obj=<site>``).
FaultKind = Literal[
    "lock_delay", "lock_deny", "abort_rhs", "crash_commit", "storage_fail"
]

FAULT_KINDS: tuple[str, ...] = (
    "lock_delay", "lock_deny", "abort_rhs", "crash_commit", "storage_fail"
)

#: Kinds that apply at lock-acquisition sites.
LOCK_KINDS = frozenset({"lock_delay", "lock_deny"})


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: *kind* at matching sites, with probability *rate*.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability the fault fires at each matching site visit
        (1.0 = always).
    rule:
        Only sites belonging to a firing of this production.
    obj:
        Only sites whose data-object ``repr`` contains this substring:
        the locked object for lock kinds, the storage window name
        (``"checkpoint:rename"``, ``"wal:add"``, ...) for
        ``storage_fail``.
    mode:
        Only lock sites requesting this lock mode, by name
        (``"Wa"``, ``"W"``, ...; lock kinds only).
    delay:
        Stall duration in seconds (``lock_delay`` only).
    max_hits:
        Stop firing after this many injections (``None`` = unbounded).
    """

    kind: str
    rate: float = 1.0
    rule: str | None = None
    obj: str | None = None
    mode: str | None = None
    delay: float = 0.05
    max_hits: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ReproError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.delay < 0:
            raise ReproError(f"fault delay must be >= 0, got {self.delay}")

    def matches_site(
        self, rule: str, obj: object = None, mode: str | None = None
    ) -> bool:
        """Does this spec apply to a site visit?  (Rate not consulted.)"""
        if self.rule is not None and self.rule != rule:
            return False
        if self.obj is not None and self.obj not in repr(obj):
            return False
        if self.mode is not None and self.mode != mode:
            return False
        return True


class FaultPlan:
    """An immutable, seeded schedule of faults.

    >>> plan = FaultPlan([FaultSpec("lock_deny", rate=0.5)], seed=7)
    >>> plan.seed
    7
    """

    def __init__(
        self, specs: Iterable[FaultSpec] = (), seed: int = 0
    ) -> None:
        self.specs: tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __repr__(self) -> str:
        kinds = ",".join(s.kind for s in self.specs)
        return f"FaultPlan(seed={self.seed}, specs=[{kinds}])"

    def specs_for(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    def injector(self, observer=None, sleeper=None):
        """Build a runtime :class:`FaultInjector` for one run."""
        from repro.fault.injector import FaultInjector

        return FaultInjector(self, observer=observer, sleeper=sleeper)

    # -- convenience constructors ----------------------------------------------------

    @staticmethod
    def chaos(
        seed: int,
        rate: float,
        kinds: Sequence[str] = (
            "lock_deny", "abort_rhs", "crash_commit"
        ),
        delay: float = 0.01,
    ) -> "FaultPlan":
        """A uniform plan: every listed kind fires at ``rate``."""
        return FaultPlan(
            [FaultSpec(kind, rate=rate, delay=delay) for kind in kinds],
            seed=seed,
        )

    @staticmethod
    def none() -> "FaultPlan":
        """The empty plan (injects nothing)."""
        return FaultPlan((), seed=0)
