"""The runtime half of fault injection.

A :class:`FaultInjector` binds one :class:`~repro.fault.plan.FaultPlan`
to one run: it owns the seeded RNG, the per-spec hit counters, the
sleeper used for injected delays, and the observability hookup (every
fired fault emits a ``fault.injected`` trace event and bumps the
``fault.injected.<kind>`` counter).

Engines call one hook per fault site:

* :meth:`lock_fault` at every lock acquisition (may stall the caller,
  may return ``"deny"``);
* :meth:`rhs_abort` between lock acquisition and RHS execution;
* :meth:`crash_point` after RHS execution, before the commit is
  recorded (raises :class:`~repro.errors.FiringCrashed`);
* :meth:`storage_fault` before each durable-store write (raises
  :class:`~repro.errors.StorageFailure`).

All hooks are cheap no-ops when the plan has no matching spec, and the
whole injector is thread-safe (one mutex guards RNG + counters), so
the threaded executor can share one injector across firing threads.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from typing import Callable

import repro.obs as obs_module
from repro.errors import FiringCrashed, StorageFailure
from repro.fault.plan import FaultPlan, FaultSpec
from repro.txn.transaction import Transaction


class FaultInjector:
    """Executes a :class:`FaultPlan` against a running engine.

    Parameters
    ----------
    plan:
        The fault schedule to execute.
    observer:
        Observability sink; defaults to the module-level observer.
    sleeper:
        Callable used to realize ``lock_delay`` stalls.  Defaults to
        :func:`time.sleep`; deterministic engines pass a virtual-clock
        accumulator instead.
    """

    def __init__(
        self,
        plan: FaultPlan,
        observer=None,
        sleeper: Callable[[float], None] | None = None,
    ) -> None:
        self.plan = plan
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.sleeper = sleeper if sleeper is not None else time.sleep
        self._rng = random.Random(plan.seed)
        self._mutex = threading.Lock()
        #: Injections fired so far, by kind.
        self.injected: Counter[str] = Counter()
        self._hits: Counter[int] = Counter()  # per-spec (by index)

    # -- decision core ---------------------------------------------------------------

    def _roll(
        self, kind: str, rule: str, obj: object = None,
        mode: str | None = None,
    ) -> FaultSpec | None:
        """First matching spec whose rate-roll fires, with accounting."""
        with self._mutex:
            for index, spec in enumerate(self.plan.specs):
                if spec.kind != kind:
                    continue
                if not spec.matches_site(rule, obj, mode):
                    continue
                if (
                    spec.max_hits is not None
                    and self._hits[index] >= spec.max_hits
                ):
                    continue
                if spec.rate < 1.0 and self._rng.random() >= spec.rate:
                    continue
                self._hits[index] += 1
                self.injected[kind] += 1
                return spec
        return None

    def _emit(self, kind: str, txn_id: str, site: str, detail: str = ""):
        if self.obs.enabled:
            self.obs.fault_injected(kind, txn_id, site, detail)

    # -- fault sites -----------------------------------------------------------------

    def lock_fault(
        self, txn: Transaction, obj: object, mode: str
    ) -> str | None:
        """Fault site: one lock acquisition.

        Performs an injected stall inline (via the sleeper) and/or
        returns ``"deny"`` when the acquisition should be refused;
        returns ``None`` when the site is untouched.
        """
        rule = txn.rule_name
        spec = self._roll("lock_delay", rule, obj, mode)
        if spec is not None:
            self._emit(
                "lock_delay", txn.txn_id, f"{mode}({obj!r})",
                detail=f"delay={spec.delay}",
            )
            self.sleeper(spec.delay)
        if self._roll("lock_deny", rule, obj, mode) is not None:
            self._emit("lock_deny", txn.txn_id, f"{mode}({obj!r})")
            return "deny"
        return None

    def rhs_abort(self, txn: Transaction) -> bool:
        """Fault site: mid-RHS.  True when the firing must abort."""
        if self._roll("abort_rhs", txn.rule_name) is None:
            return False
        self._emit("abort_rhs", txn.txn_id, "rhs")
        return True

    def crash_point(self, txn: Transaction) -> None:
        """Fault site: post-RHS, pre-commit.  Raises to kill the firing."""
        if self._roll("crash_commit", txn.rule_name) is None:
            return
        self._emit("crash_commit", txn.txn_id, "pre-commit")
        raise FiringCrashed(txn.txn_id, txn.rule_name)

    def storage_fault(self, site: str = "wal") -> None:
        """Fault site: one durable-store operation.  Raises on injection.

        ``site`` names the window (``"wal:add"``,
        ``"checkpoint:rename"``, ``"compact:truncate"``, ...; see
        :data:`repro.wm.storage.STORAGE_FAULT_SITES`) and doubles as
        the spec's ``obj`` filter, so a plan can crash one specific
        window: ``FaultSpec("storage_fail", obj="checkpoint:rename")``.
        """
        if self._roll("storage_fail", rule="", obj=site) is None:
            return
        self._emit("storage_fail", "-", site)
        raise StorageFailure(f"injected storage failure at {site}")

    # -- accounting ------------------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def summary(self) -> dict[str, int]:
        """Injection counts by kind (stable key order)."""
        return {kind: self.injected[kind] for kind in sorted(self.injected)}
