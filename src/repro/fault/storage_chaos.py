"""Crash-equivalence sweep for the durable store.

Hellerstein's determination/provenance framing (PAPERS.md): recovery
must land on *one admissible outcome*.  For a write-ahead log that
outcome is exact — the **journalled prefix**: every delta the store
acknowledged, nothing more, nothing less.  This module proves it by
brute force: a seeded random operation sequence runs against a
:class:`~repro.wm.storage.DurableStore` with tiny segments (so
rotation, checkpointing and compaction all happen), while a fault plan
crashes exactly one storage window
(:data:`~repro.wm.storage.STORAGE_FAULT_SITES`); the run stops at the
crash (the simulated process death), the directory is recovered, and
the recovered memory must be bit-identical — same timetags, same
values — to the reference state.

The reference is tracked with a listener subscribed *after* the store:
working memory publishes each delta to listeners in order, so when the
store's listener raises (the injected crash fires before the record is
written), the tracker never sees that delta — its last recorded state
is exactly the journalled prefix, including the remove-half of a
``modify`` that crashed between its two deltas.

Used by ``repro storage chaos`` and the property tests in
``tests/wm/test_storage_crash.py``.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import StorageFailure
from repro.fault.plan import FaultPlan, FaultSpec
from repro.wm.memory import WorkingMemory
from repro.wm.storage import DurableStore, STORAGE_FAULT_SITES


def memory_signature(memory: WorkingMemory) -> frozenset:
    """Bit-level identity of a working memory: timetags *and* values.

    Stronger than ``value_identity_set`` — recovery must reconstruct
    the exact elements (recency ordering depends on timetags), not
    just an equivalent value set.
    """
    return frozenset((w.timetag, w.identity()) for w in memory)


@dataclass
class CrashCase:
    """One (seed, site) crash-recovery experiment."""

    seed: int
    site: str
    fired: bool = False
    crashed: bool = False
    ops_applied: int = 0
    ok: bool = True
    detail: str = ""


@dataclass
class SweepResult:
    """Aggregate of a crash-equivalence sweep."""

    cases: list[CrashCase] = field(default_factory=list)

    @property
    def failures(self) -> list[CrashCase]:
        return [c for c in self.cases if not c.ok]

    @property
    def consistent(self) -> bool:
        return not self.failures

    def sites_fired(self) -> dict[str, int]:
        """How many cases actually hit each site (coverage check)."""
        fired: dict[str, int] = {site: 0 for site in STORAGE_FAULT_SITES}
        for case in self.cases:
            if case.fired:
                fired[case.site] = fired.get(case.site, 0) + 1
        return fired


def run_crash_case(
    seed: int,
    site: str,
    directory: str | Path,
    ops: int = 48,
    segment_max_records: int = 5,
    checkpoint_every: int = 9,
    compact_every: int = 13,
    durability: str = "batch",
) -> CrashCase:
    """Run one seeded op sequence, crash at ``site``, verify recovery.

    The schedule is deterministic given ``seed``: mutations are drawn
    from a seeded RNG, a checkpoint lands every ``checkpoint_every``-th
    op and a compaction every ``compact_every``-th, and the fault spec
    (``rate=1.0``, ``max_hits=1``, ``obj=site``) fires at the first
    visit of the targeted window.
    """
    case = CrashCase(seed=seed, site=site)
    rng = random.Random(seed)
    memory = WorkingMemory()
    plan = FaultPlan(
        [FaultSpec("storage_fail", rate=1.0, obj=site, max_hits=1)],
        seed=seed,
    )
    injector = plan.injector()
    store = DurableStore(
        memory,
        directory,
        injector,
        durability=durability,
        segment_max_records=segment_max_records,
    )
    states = [memory_signature(memory)]

    def track(_delta) -> None:
        states.append(memory_signature(memory))

    memory.subscribe(track)
    try:
        for index in range(ops):
            live = sorted(memory, key=lambda w: w.timetag)
            if index and index % checkpoint_every == 0:
                store.checkpoint()
            elif index and index % compact_every == 0:
                store.compact()
            else:
                roll = rng.random()
                if roll < 0.5 or not live:
                    memory.make("item", k=rng.randint(0, 4))
                elif roll < 0.75:
                    memory.remove(live[rng.randrange(len(live))])
                else:
                    memory.modify(
                        live[rng.randrange(len(live))],
                        {"k": rng.randint(0, 4)},
                    )
            case.ops_applied += 1
    except StorageFailure:
        case.crashed = True
    finally:
        memory.unsubscribe(track)
        store.close()
    case.fired = injector.total_injected > 0
    expected = states[-1]

    recovered, store2 = DurableStore.open(directory)
    got = memory_signature(recovered)
    store2.close()
    if got != expected:
        case.ok = False
        case.detail = (
            f"recovered {len(got)} elements != journalled prefix "
            f"{len(expected)} (diff {len(got ^ expected)})"
        )
        return case
    # Recovery must be idempotent: opening again lands on the same state.
    recovered2, store3 = DurableStore.open(directory)
    got2 = memory_signature(recovered2)
    store3.close()
    if got2 != expected:
        case.ok = False
        case.detail = "second recovery diverged from the first"
    return case


def crash_equivalence_sweep(
    seeds: Iterable[int] = range(4),
    sites: Sequence[str] = STORAGE_FAULT_SITES,
    root: str | Path | None = None,
    **case_kwargs,
) -> SweepResult:
    """Run :func:`run_crash_case` for every (seed, site) pair.

    Uses a temporary directory per case under ``root`` (or a fresh
    tempdir).  The sweep passes only when every case recovers the
    journalled prefix *and* every site fired in at least one case —
    a window the workload never reaches is an untested window.
    """
    result = SweepResult()
    with tempfile.TemporaryDirectory(
        dir=str(root) if root is not None else None,
        prefix="storage-chaos-",
    ) as base:
        for seed in seeds:
            for index, site in enumerate(sites):
                directory = Path(base) / f"seed{seed}-site{index}"
                result.cases.append(
                    run_crash_case(seed, site, directory, **case_kwargs)
                )
    return result
