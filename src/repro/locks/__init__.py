"""Lock-manager substrate and the paper's novel Rc/Ra/Wa scheme.

Two concurrency-control disciplines are provided, both centralized as
in Section 4.2 ("an example of such a scheme, using a centralized lock
manager"):

* :class:`~repro.locks.two_phase.TwoPhaseScheme` — standard strict 2PL
  with shared read and exclusive write locks (Figure 4.1; proved
  semantically consistent by Theorem 2).
* :class:`~repro.locks.rc_scheme.RcScheme` — the improved scheme of
  Section 4.3 with three modes: ``Rc`` (read for condition
  evaluation), ``Ra`` (read for action) and ``Wa`` (write for action).
  Its compatibility matrix (Table 4.1) *allows* the ``Rc``–``Wa``
  conflict, and restores correctness with the commit-time rule: when a
  ``Wa`` holder commits first, every production holding a conflicting
  ``Rc`` lock is aborted (or optionally revalidated).

Both are built on the same :class:`~repro.locks.manager.LockManager`
core (grant queues, upgrades, deadlock detection) — the paper's point
that the new scheme "requires minor modifications to conventional lock
managers".
"""

from repro.locks.modes import (
    LockMode,
    compatible,
    COMPATIBILITY,
    TWO_PHASE_COMPATIBILITY,
    table_4_1,
)
from repro.locks.request import LockGrant, LockRequest, RequestStatus
from repro.locks.manager import GrantOutcome, LockManager, StripedLockManager
from repro.locks.fastpath import HeldModeCache
from repro.locks.two_phase import ConservativeTwoPhaseScheme, TwoPhaseScheme
from repro.locks.rc_scheme import RcScheme
from repro.locks.deadlock import (
    DeadlockDetector,
    VictimPolicy,
    youngest_victim,
    oldest_victim,
    most_locks_victim,
    make_fewest_locks_victim,
    resolve_victim_policy,
)
from repro.locks.escalation import EscalationPolicy
from repro.locks.prevention import (
    WaitDie,
    WoundWait,
    acquire_with_prevention,
)

__all__ = [
    "LockMode",
    "compatible",
    "COMPATIBILITY",
    "TWO_PHASE_COMPATIBILITY",
    "table_4_1",
    "LockRequest",
    "LockGrant",
    "RequestStatus",
    "LockManager",
    "StripedLockManager",
    "GrantOutcome",
    "HeldModeCache",
    "TwoPhaseScheme",
    "ConservativeTwoPhaseScheme",
    "RcScheme",
    "DeadlockDetector",
    "VictimPolicy",
    "youngest_victim",
    "oldest_victim",
    "most_locks_victim",
    "make_fewest_locks_victim",
    "resolve_victim_policy",
    "EscalationPolicy",
    "WoundWait",
    "WaitDie",
    "acquire_with_prevention",
]
