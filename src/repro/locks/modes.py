"""Lock modes and the compatibility matrices.

Section 4.3 defines three lock kinds::

    Rc: Read lock for condition evaluation.
    Ra: Read lock for action execution.
    Wa: Write lock for action execution.

and Table 4.1 gives the new compatibility matrix.  Reconstructed from
the text's grant rules:

* "The lock manager will grant a Rc lock as long as no production has
  already placed a Wa lock on the same data item."
* "an Ra lock can be granted only if there is no other production
  currently holding a Wa lock"
* "a Wa lock can be granted only if there is no outstanding Ra or Wa
  lock.  Note that a Wa lock can be granted even if another production
  is holding a Rc lock on the data (allowing Rc–Wa conflict to
  exist!). This is the key to enhanced parallelism."

which yields (rows: lock requested by P_i; columns: lock held by P_j)::

            held Rc   held Ra   held Wa
    req Rc     Y         Y         N
    req Ra     Y         Y         N
    req Wa     Y         N         N

For comparison, standard 2PL (Section 4.2) uses plain ``R``/``W`` with
the classical matrix (R-R compatible, everything else not).
"""

from __future__ import annotations

import enum


class LockMode(enum.Enum):
    """All lock modes across both schemes.

    ``R``/``W`` belong to standard 2PL; ``RC``/``RA``/``WA`` to the
    improved scheme.  A single enum keeps the manager generic.
    """

    R = "R"
    W = "W"
    RC = "Rc"
    RA = "Ra"
    WA = "Wa"

    # Modes key every grant-map set and compatibility lookup; enum's
    # default ``hash(self._name_)`` is a Python-level call.  Members
    # are singletons compared by identity, so the C-level identity
    # hash is equivalent and much cheaper on the manager's hot paths.
    __hash__ = object.__hash__

    @property
    def is_read(self) -> bool:
        return self in (LockMode.R, LockMode.RC, LockMode.RA)

    @property
    def is_write(self) -> bool:
        return self in (LockMode.W, LockMode.WA)

    def __str__(self) -> str:
        return self.value


#: Table 4.1 — the improved scheme.  ``COMPATIBILITY[requested][held]``
#: is True when the requested mode can be granted alongside the held one.
COMPATIBILITY: dict[LockMode, dict[LockMode, bool]] = {
    LockMode.RC: {
        LockMode.RC: True,
        LockMode.RA: True,
        LockMode.WA: False,
    },
    LockMode.RA: {
        LockMode.RC: True,
        LockMode.RA: True,
        LockMode.WA: False,
    },
    LockMode.WA: {
        LockMode.RC: True,  # the deliberate Rc-Wa conflict: the key
        LockMode.RA: False,  # to enhanced parallelism (Section 4.3)
        LockMode.WA: False,
    },
}

#: Standard 2PL read/write matrix (Section 4.2).
TWO_PHASE_COMPATIBILITY: dict[LockMode, dict[LockMode, bool]] = {
    LockMode.R: {LockMode.R: True, LockMode.W: False},
    LockMode.W: {LockMode.R: False, LockMode.W: False},
}

_ALL_MATRICES = (COMPATIBILITY, TWO_PHASE_COMPATIBILITY)


def compatible(requested: LockMode, held: LockMode) -> bool:
    """True when ``requested`` can be granted while ``held`` is held
    by a *different* transaction.

    Modes from different schemes never meet in one manager; mixing them
    is a programming error and raises ``KeyError`` deliberately.
    """
    for matrix in _ALL_MATRICES:
        if requested in matrix:
            return matrix[requested][held]
    raise KeyError(requested)


def is_upgrade(held: LockMode, requested: LockMode) -> bool:
    """True when ``requested`` strictly strengthens ``held`` for one
    transaction (the manager then re-checks only against *others*).

    Upgrades: ``R -> W``, ``Rc -> Ra``, ``Rc -> Wa``, ``Ra -> Wa``.
    """
    upgrades = {
        (LockMode.R, LockMode.W),
        (LockMode.RC, LockMode.RA),
        (LockMode.RC, LockMode.WA),
        (LockMode.RA, LockMode.WA),
    }
    return (held, requested) in upgrades


def table_4_1() -> list[tuple[str, str, str]]:
    """Render Table 4.1 as (requested, held, Y/N) rows, paper order.

    Used by ``benchmarks/bench_table_4_1_lock_compat.py`` to print the
    matrix next to the paper's expected entries.
    """
    order = (LockMode.RC, LockMode.RA, LockMode.WA)
    rows: list[tuple[str, str, str]] = []
    for requested in order:
        for held in order:
            granted = "Y" if COMPATIBILITY[requested][held] else "N"
            rows.append((str(requested), str(held), granted))
    return rows


#: The paper's Table 4.1 entries, for the benchmark's expected column
#: (rows requested, columns held, reading order Rc, Ra, Wa).
PAPER_TABLE_4_1: tuple[str, ...] = (
    "Y", "Y", "N",  # requested Rc vs held Rc, Ra, Wa
    "Y", "Y", "N",  # requested Ra
    "Y", "N", "N",  # requested Wa  (Rc-Wa allowed!)
)
