"""The improved Rc/Ra/Wa locking scheme (Section 4.3, Figures 4.2-4.4).

The observation driving the scheme::

    (i)   LHS of a production must be executed before its RHS.
    (ii)  Data access in LHS is read only.
    (iii) Data access in RHS is read-write.

So condition-evaluation reads get their own mode, ``Rc``, which a
``Wa`` write lock is *allowed to bypass* (Table 4.1) — "the key to
enhanced parallelism".  Correctness is restored at commit time:

* rule (i): if the ``Rc`` holder P_j commits first, it commits
  untouched and the serial order is P_j P_i;
* rule (ii): if the ``Wa`` holder P_i commits first, "the lock manager
  finds all productions holding Rc lock on q and forces them to
  abort" — serial order P_i alone (P_j restarts from match).

The paper also offers an alternative to rule (ii): "reevaluate P_j's
condition to see if abort is necessary, at the expense of increased
overhead".  That is the ``revalidator`` hook; the ablation benchmark
``bench_abort_revalidation.py`` measures the trade.

Figure 4.4's circular conflict (P_i: Rc(q), Wa(r); P_j: Rc(r), Wa(q))
needs no special case: whichever commits first kills the other via
rule (ii), so exactly one survives — which the tests verify.
"""

from __future__ import annotations

from typing import Callable, Iterable

import repro.obs as obs_module
from repro.locks.fastpath import HeldModeCache
from repro.locks.manager import GrantOutcome, LockManager
from repro.locks.modes import LockMode
from repro.locks.request import LockRequest
from repro.locks.two_phase import CommitOutcome
from repro.txn.schedule import History
from repro.txn.transaction import DataObject, Transaction

#: Decides whether an Rc holder's condition still holds after the
#: committing writer's update; ``True`` means "still valid, spare it".
Revalidator = Callable[[Transaction, DataObject], bool]


class RcScheme:
    """The Rc/Ra/Wa discipline over a :class:`LockManager`.

    Parameters
    ----------
    history:
        Optional operation history for the serializability checker.
    revalidator:
        When ``None`` (the default), rule (ii) aborts every conflicting
        ``Rc`` holder.  When provided, each conflicting holder is
        spared iff the callback returns True for every conflicting
        object — the paper's re-evaluation alternative.
    audit:
        Runtime compatibility auditing (see :class:`LockManager`).
    observer:
        Observability sink (rule-(ii) aborts, commits/aborts); shared
        with the underlying manager.  Defaults to the module-level
        observer from :mod:`repro.obs`.
    """

    name = "rc"
    condition_mode = LockMode.RC
    action_read_mode = LockMode.RA
    action_write_mode = LockMode.WA

    def __init__(
        self,
        history: History | None = None,
        revalidator: Revalidator | None = None,
        audit: bool = True,
        observer=None,
        *,
        stripes: int = 1,
        stripe_fn=None,
    ) -> None:
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.manager = LockManager(
            history=history, audit=audit, observer=self.obs,
            stripes=stripes, stripe_fn=stripe_fn,
        )
        #: Memoized grants: turns the already-held probe of
        #: :meth:`try_lock_action` into a local set lookup (see
        #: :mod:`repro.locks.fastpath`).
        self._held = HeldModeCache()
        self.revalidator = revalidator
        #: Forced aborts performed by rule (ii), for benchmarks.
        self.forced_aborts = 0
        #: Rc holders spared by revalidation, for benchmarks.
        self.revalidated = 0

    # -- acquisition entry points ---------------------------------------------------------

    def lock_condition(
        self, txn: Transaction, obj: DataObject, blocking: bool = False
    ) -> LockRequest:
        """``Rc`` lock for condition evaluation.

        Granted "as long as no production has already placed a Wa lock
        on the same data item".
        """
        request = self.manager.acquire(
            txn, obj, self.condition_mode, blocking=blocking
        )
        if request.is_granted:
            self._held.note(txn, obj, self.condition_mode)
        return request

    def try_lock_condition(self, txn: Transaction, obj: DataObject) -> bool:
        if self.manager.try_acquire(txn, obj, self.condition_mode):
            self._held.note(txn, obj, self.condition_mode)
            return True
        return False

    def lock_action(
        self,
        txn: Transaction,
        reads: Iterable[DataObject] = (),
        writes: Iterable[DataObject] = (),
        blocking: bool = False,
    ) -> list[LockRequest]:
        """Acquire the RHS ``Ra``/``Wa`` locks.

        "When a production begins executing its RHS, it first obtains
        the corresponding Ra and Wa locks" — all up front, which is
        also why a production whose match begins after this point can
        never slip into the conflict set unseen (Section 4.3).
        """
        requests: list[LockRequest] = []
        todo = sorted(
            [(obj, self.action_read_mode) for obj in reads]
            + [(obj, self.action_write_mode) for obj in writes],
            key=lambda pair: (repr(pair[0]), str(pair[1])),
        )
        for obj, mode in todo:
            request = self.manager.acquire(txn, obj, mode, blocking=blocking)
            if request.is_granted:
                self._held.note(txn, obj, mode)
            requests.append(request)
        return requests

    def try_lock_action(
        self,
        txn: Transaction,
        reads: Iterable[DataObject] = (),
        writes: Iterable[DataObject] = (),
    ) -> bool:
        """Non-blocking all-or-nothing variant of :meth:`lock_action`.

        On any failure the ``Ra``/``Wa`` locks acquired *by this call*
        are released before returning False — condition-phase ``Rc``
        locks (and any modes held before the call) are untouched, so
        the caller can still retry or abort through the normal path.
        """
        todo = sorted(
            [(obj, self.action_read_mode) for obj in reads]
            + [(obj, self.action_write_mode) for obj in writes],
            key=lambda pair: (repr(pair[0]), str(pair[1])),
        )
        held = self._held
        newly_acquired: list[tuple[DataObject, LockMode]] = []
        for obj, mode in todo:
            if held.holds(txn, obj, mode):
                continue  # already held before this call: not ours to undo
            outcome = self.manager.try_acquire_held(txn, obj, mode)
            if outcome is GrantOutcome.HELD:
                held.note(txn, obj, mode)
                continue
            if outcome is GrantOutcome.GRANTED:
                held.note(txn, obj, mode)
                newly_acquired.append((obj, mode))
                continue
            for held_obj, held_mode in newly_acquired:
                self.manager.release(txn, held_obj, held_mode)
                held.discard(txn, held_obj, held_mode)
            return False
        return True

    # -- commit-time rule ---------------------------------------------------------------------

    def conflicting_rc_holders(
        self, txn: Transaction
    ) -> dict[Transaction, list[DataObject]]:
        """Rc holders conflicting with ``txn``'s Wa locks, per rule (ii).

        Maps each would-be victim to the objects on which the conflict
        exists (a victim can conflict on several objects, Figure 4.4).
        """
        # The write set is a superset of the objects currently holding
        # Wa (every Wa grant records a write), so it narrows the scan
        # to the relevant stripes; the manager re-checks actual holds.
        return self.manager.write_read_conflicts(
            txn, LockMode.WA, LockMode.RC, candidates=txn.write_set
        )

    def commit(self, txn: Transaction) -> CommitOutcome:
        """Commit ``txn`` and apply rule (ii) to conflicting Rc holders.

        The returned :class:`CommitOutcome` carries the victims; the
        *caller* (the engine) rolls back their working-memory effects
        and releases their locks via :meth:`abort` — keeping rollback
        policy out of the lock layer.

        Uses :meth:`Transaction.try_abort`, so a victim that manages to
        commit concurrently (threaded engine) is spared: rule (i) says
        whoever reaches the commit point first wins.
        """
        victims: list[Transaction] = []
        for holder, objs in self.conflicting_rc_holders(txn).items():
            if self.revalidator is not None:
                still_valid = all(
                    self.revalidator(holder, obj) for obj in objs
                )
                if still_valid:
                    self.revalidated += 1
                    if self.obs.enabled:
                        self.obs.revalidation_spared(
                            holder.txn_id, txn.txn_id
                        )
                    continue
            if holder.try_abort(
                f"Rc-Wa conflict with committing {txn.txn_id}"
            ):
                victims.append(holder)
                self.forced_aborts += 1
                if self.obs.enabled:
                    self.obs.rule_ii_abort(
                        holder.txn_id, txn.txn_id, objs
                    )
        txn.commit()
        if self.manager.history is not None:
            self.manager.history.commit(txn.txn_id)
        self.manager.release_all(txn)
        self._held.drop(txn)
        if self.obs.enabled:
            self.obs.txn_committed(txn.txn_id, self.name)
        return CommitOutcome(committed=True, victims=victims)

    def abort(self, txn: Transaction, reason: str = "") -> None:
        """Abort ``txn`` (voluntary, deadlock victim, or rule (ii))."""
        if txn.is_active:
            txn.abort(reason)
        if self.manager.history is not None:
            self.manager.history.abort(txn.txn_id)
        self.manager.release_all(txn)
        self._held.drop(txn)
        if self.obs.enabled:
            self.obs.txn_aborted(txn.txn_id, self.name, reason)

    def release_condition_locks(self, txn: Transaction) -> None:
        """Release after a false condition (Figure 4.2)."""
        self.manager.release_all(txn)
        self._held.drop(txn)
