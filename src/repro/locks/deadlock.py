"""Deadlock detection and victim selection.

Section 4.3 notes that "the non-exclusive nature of the new Rc lock
does not introduce new kinds of deadlocks.  Thus, the deadlock
prevention, avoidance, detection or resolution schemes for standard
2-phase locking can be applied to our scheme as well."  We implement
the detection-and-victim approach: build the waits-for graph from the
manager, find cycles, abort a victim chosen by a pluggable policy.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Sequence

from repro.locks.manager import LockManager
from repro.txn.transaction import Transaction

#: Given the transactions on a cycle, pick the one to abort.
VictimPolicy = Callable[[Sequence[Transaction]], Transaction]


def youngest_victim(cycle: Sequence[Transaction]) -> Transaction:
    """Abort the most recently started transaction (least work lost)."""
    return max(cycle, key=lambda t: t.start_order)


def oldest_victim(cycle: Sequence[Transaction]) -> Transaction:
    """Abort the oldest transaction (wound-wait flavored)."""
    return min(cycle, key=lambda t: t.start_order)


def make_most_locks_victim(manager: LockManager) -> VictimPolicy:
    """Abort the transaction holding the most locks (frees the most)."""

    def policy(cycle: Sequence[Transaction]) -> Transaction:
        return max(
            cycle,
            key=lambda t: (len(manager.locked_objects(t)), t.start_order),
        )

    return policy


def make_fewest_locks_victim(manager: LockManager) -> VictimPolicy:
    """Abort the transaction holding the fewest locks (least work redone).

    Ties break toward the youngest transaction, so the policy is total
    and deterministic.
    """

    def policy(cycle: Sequence[Transaction]) -> Transaction:
        return min(
            cycle,
            key=lambda t: (len(manager.locked_objects(t)), -t.start_order),
        )

    return policy


#: Alias kept for the public API listing in ``repro.locks``.
most_locks_victim = make_most_locks_victim


def resolve_victim_policy(
    name: "str | VictimPolicy", manager: LockManager
) -> VictimPolicy:
    """Victim policy by name (``youngest`` / ``oldest`` /
    ``fewest-locks`` / ``most-locks``), or pass a policy through."""
    if callable(name):
        return name
    policies = {
        "youngest": lambda: youngest_victim,
        "oldest": lambda: oldest_victim,
        "fewest-locks": lambda: make_fewest_locks_victim(manager),
        "most-locks": lambda: make_most_locks_victim(manager),
    }
    try:
        return policies[name]()
    except KeyError:
        raise ValueError(
            f"unknown victim policy {name!r}; "
            f"expected one of {sorted(policies)}"
        ) from None


class DeadlockDetector:
    """Cycle detection over a lock manager's waits-for graph."""

    def __init__(
        self,
        manager: LockManager,
        policy: VictimPolicy = youngest_victim,
    ) -> None:
        self.manager = manager
        self.policy = policy
        #: Cycles found so far, exposed for tests/benchmarks.
        self.detected: list[tuple[str, ...]] = []

    def build_graph(self) -> dict[Transaction, set[Transaction]]:
        """Materialize the waits-for graph from the manager."""
        graph: dict[Transaction, set[Transaction]] = defaultdict(set)
        for waiter, holder in self.manager.waits_for_edges():
            if waiter is not holder:
                graph[waiter].add(holder)
        return dict(graph)

    def find_cycle(self) -> list[Transaction] | None:
        """Return one waits-for cycle (as a transaction list), or None."""
        graph = self.build_graph()
        WHITE, GRAY, BLACK = 0, 1, 2
        color: dict[Transaction, int] = {t: WHITE for t in graph}
        stack: list[Transaction] = []

        def visit(node: Transaction) -> list[Transaction] | None:
            color[node] = GRAY
            stack.append(node)
            for succ in sorted(
                graph.get(node, ()), key=lambda t: t.txn_id
            ):
                state = color.get(succ, WHITE)
                if state == GRAY:
                    return stack[stack.index(succ):]
                if state == WHITE:
                    found = visit(succ)
                    if found is not None:
                        return found
            stack.pop()
            color[node] = BLACK
            return None

        for node in sorted(graph, key=lambda t: t.txn_id):
            if color.get(node, WHITE) == WHITE:
                found = visit(node)
                if found is not None:
                    return found
        return None

    def choose_victim(self) -> Transaction | None:
        """Detect one cycle and pick (but do not abort) the victim.

        Returns ``None`` when the graph is acyclic.  The caller — the
        executing scheme — performs the abort so rollback and lock
        release happen through the normal abort path.
        """
        cycle = self.find_cycle()
        if cycle is None:
            return None
        self.detected.append(tuple(t.txn_id for t in cycle))
        return self.policy(cycle)
