"""Standard strict two-phase locking (Section 4.2, Figure 4.1).

Protocol per production firing:

1. acquire **read** locks for every object referenced during condition
   evaluation ("condition evaluation does not require write locks");
2. if the condition is false, release everything and stop;
3. otherwise execute the RHS, acquiring additional read and write
   locks as needed;
4. hold *all* locks until the RHS completes (commits); a commit event
   triggers the match mechanism;
5. release everything.

Theorem 2 proves this semantically consistent.  Its "serious
performance drawback" — condition read locks block writers for the
whole (potentially long) action — is exactly what the Rc scheme fixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import repro.obs as obs_module
from repro.locks.fastpath import HeldModeCache
from repro.locks.manager import GrantOutcome, LockManager
from repro.locks.modes import LockMode
from repro.locks.request import LockRequest
from repro.txn.schedule import History
from repro.txn.transaction import DataObject, Transaction


@dataclass
class CommitOutcome:
    """Result of a scheme-level commit.

    ``victims`` lists transactions the scheme force-aborted as part of
    this commit — always empty for 2PL, possibly non-empty for the Rc
    scheme (rule (ii) of Section 4.3).
    """

    committed: bool
    victims: list[Transaction] = field(default_factory=list)


class TwoPhaseScheme:
    """Strict 2PL over a :class:`LockManager` with ``R``/``W`` modes."""

    name = "2pl"
    #: Mode used while evaluating the LHS.
    condition_mode = LockMode.R
    #: Modes used while executing the RHS.
    action_read_mode = LockMode.R
    action_write_mode = LockMode.W

    def __init__(
        self,
        history: History | None = None,
        audit: bool = True,
        observer=None,
        *,
        stripes: int = 1,
        stripe_fn=None,
    ) -> None:
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.manager = LockManager(
            history=history, audit=audit, observer=self.obs,
            stripes=stripes, stripe_fn=stripe_fn,
        )
        #: Memoized grants: turns the already-held check of
        #: :meth:`try_lock_action` into a local set lookup (see
        #: :mod:`repro.locks.fastpath`).
        self._held = HeldModeCache()

    # -- acquisition entry points --------------------------------------------------------

    def lock_condition(
        self, txn: Transaction, obj: DataObject, blocking: bool = False
    ) -> LockRequest:
        """Read lock for condition evaluation."""
        request = self.manager.acquire(
            txn, obj, self.condition_mode, blocking=blocking
        )
        if request.is_granted:
            self._held.note(txn, obj, self.condition_mode)
        return request

    def try_lock_condition(self, txn: Transaction, obj: DataObject) -> bool:
        if self.manager.try_acquire(txn, obj, self.condition_mode):
            self._held.note(txn, obj, self.condition_mode)
            return True
        return False

    def lock_action(
        self,
        txn: Transaction,
        reads: Iterable[DataObject] = (),
        writes: Iterable[DataObject] = (),
        blocking: bool = False,
    ) -> list[LockRequest]:
        """Acquire the RHS read/write locks.

        Objects are requested in sorted order, the textbook static
        deadlock-avoidance aid; the detector still covers dynamic
        interleavings in the threaded engine.
        """
        requests: list[LockRequest] = []
        todo = sorted(
            [(obj, self.action_read_mode) for obj in reads]
            + [(obj, self.action_write_mode) for obj in writes],
            key=lambda pair: (repr(pair[0]), str(pair[1])),
        )
        for obj, mode in todo:
            request = self.manager.acquire(txn, obj, mode, blocking=blocking)
            if request.is_granted:
                self._held.note(txn, obj, mode)
            requests.append(request)
        return requests

    def try_lock_action(
        self,
        txn: Transaction,
        reads: Iterable[DataObject] = (),
        writes: Iterable[DataObject] = (),
    ) -> bool:
        """All-or-nothing non-blocking action lock acquisition.

        On any failure, locks acquired by this call are NOT rolled back
        (the caller owns abort policy); returns False so the caller can
        abort or retry.

        Already-held modes are skipped via the scheme-local cache (or,
        on a cache miss, detected inside the manager's single-round-trip
        ``try_acquire_held``) instead of being redundantly re-granted.
        """
        held = self._held
        for obj in sorted(reads, key=repr):
            if held.holds(txn, obj, self.action_read_mode):
                continue
            outcome = self.manager.try_acquire_held(
                txn, obj, self.action_read_mode
            )
            if outcome is GrantOutcome.DENIED:
                return False
            held.note(txn, obj, self.action_read_mode)
        for obj in sorted(writes, key=repr):
            if held.holds(txn, obj, self.action_write_mode):
                continue
            outcome = self.manager.try_acquire_held(
                txn, obj, self.action_write_mode
            )
            if outcome is GrantOutcome.DENIED:
                return False
            held.note(txn, obj, self.action_write_mode)
        return True

    # -- lifecycle ---------------------------------------------------------------------------

    def commit(self, txn: Transaction) -> CommitOutcome:
        """Commit: mark the transaction and release everything."""
        txn.commit()
        if self.manager.history is not None:
            self.manager.history.commit(txn.txn_id)
        self.manager.release_all(txn)
        self._held.drop(txn)
        if self.obs.enabled:
            self.obs.txn_committed(txn.txn_id, self.name)
        return CommitOutcome(committed=True)

    def abort(self, txn: Transaction, reason: str = "") -> None:
        """Abort: mark the transaction and release everything."""
        txn.abort(reason)
        if self.manager.history is not None:
            self.manager.history.abort(txn.txn_id)
        self.manager.release_all(txn)
        self._held.drop(txn)
        if self.obs.enabled:
            self.obs.txn_aborted(txn.txn_id, self.name, reason)

    def release_condition_locks(self, txn: Transaction) -> None:
        """Release after a false condition (step 2 of Figure 4.1)."""
        self.manager.release_all(txn)
        self._held.drop(txn)


class ConservativeTwoPhaseScheme(TwoPhaseScheme):
    """Conservative (static/preclaiming) 2PL — deadlock *avoidance*.

    Section 4.3 notes that standard 2PL's "prevention, avoidance,
    detection or resolution schemes" all apply.  Conservative 2PL is
    the classical avoidance discipline: a transaction atomically
    acquires **every** lock it will ever need — condition reads *and*
    action writes — before doing any work.  No lock is ever requested
    while holding another, so the waits-for graph has no edges out of
    lock-holders and deadlock is impossible.

    The price is parallelism: write locks are held across the whole
    condition-evaluation phase too, which is even more conservative
    than Figure 4.1 — the lock-level benchmark quantifies the ordering
    ``c2pl ≤ 2pl ≤ rc`` in attainable concurrency.

    The class only changes the *discipline marker* (``preclaims``);
    the executing engine/simulator is responsible for requesting the
    full footprint up front, all-or-nothing via
    :meth:`try_preclaim`.
    """

    name = "c2pl"
    #: Engines/simulators check this to preclaim the full footprint.
    preclaims = True

    def try_preclaim(
        self,
        txn: Transaction,
        reads: Iterable[DataObject] = (),
        writes: Iterable[DataObject] = (),
    ) -> bool:
        """Atomically acquire the whole footprint, or nothing.

        Returns False — with every partial grant rolled back — when any
        lock is unavailable, so the caller can retry later without
        holding anything (the property that guarantees no deadlock).
        """
        acquired_any = False
        ok = True
        for obj in sorted(reads, key=repr):
            if self.manager.try_acquire(txn, obj, LockMode.R):
                acquired_any = True
                self._held.note(txn, obj, LockMode.R)
            else:
                ok = False
                break
        if ok:
            for obj in sorted(writes, key=repr):
                if self.manager.try_acquire(txn, obj, LockMode.W):
                    acquired_any = True
                    self._held.note(txn, obj, LockMode.W)
                else:
                    ok = False
                    break
        if not ok and acquired_any:
            self.manager.release_all(txn)
            self._held.drop(txn)
        return ok
