"""Lock requests and grants.

The manager keeps, per data object, the set of current grants and a
FIFO queue of waiting requests.  Requests are first-class values so the
deterministic simulator can observe and schedule them, and so the
threaded engine can block on them with a condition variable.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass, field

from repro.locks.modes import LockMode
from repro.txn.transaction import DataObject, Transaction

_request_counter = itertools.count(1)


class RequestStatus(enum.Enum):
    """Lifecycle of a lock request."""

    GRANTED = "granted"
    WAITING = "waiting"
    DENIED = "denied"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class LockGrant:
    """A held lock: (transaction, object, mode)."""

    txn: Transaction
    obj: DataObject
    mode: LockMode

    def __str__(self) -> str:
        return f"{self.txn.txn_id}:{self.mode}({self.obj!r})"


class LockRequest:
    """A pending or resolved request for one lock.

    The threaded engine calls :meth:`wait` to block until the manager
    resolves the request; the simulator never blocks and instead polls
    :attr:`status` as it advances virtual time.
    """

    def __init__(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> None:
        self.request_id = next(_request_counter)
        self.txn = txn
        self.obj = obj
        self.mode = mode
        self.status = RequestStatus.WAITING
        #: Set by the manager (observability on) when the request is
        #: queued; lets the eventual grant report its wait time.
        self.enqueued_at: float | None = None
        self._event = threading.Event()

    # -- resolution (called by the manager) -----------------------------------------

    def resolve(self, status: RequestStatus) -> None:
        self.status = status
        self._event.set()

    # -- blocking interface (threaded engine) ----------------------------------------

    def wait(self, timeout: float | None = None) -> RequestStatus:
        """Block until resolved; returns the final status.

        A ``timeout`` expiry leaves the request WAITING and returns
        that status — the caller decides whether to cancel.
        """
        self._event.wait(timeout)
        return self.status

    @property
    def is_granted(self) -> bool:
        return self.status is RequestStatus.GRANTED

    @property
    def is_waiting(self) -> bool:
        return self.status is RequestStatus.WAITING

    def __str__(self) -> str:
        return (
            f"req#{self.request_id} {self.txn.txn_id}:{self.mode}"
            f"({self.obj!r}) [{self.status.value}]"
        )
