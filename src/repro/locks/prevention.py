"""Timestamp-based deadlock prevention: wound-wait and wait-die.

Section 4.3: "the deadlock prevention, avoidance, detection or
resolution schemes for standard 2-phase locking can be applied to our
scheme as well."  :mod:`repro.locks.deadlock` supplies detection; this
module supplies the two classical *prevention* disciplines, driven by
transaction start timestamps (``Transaction.start_order``):

* **wound-wait** — an *older* requester wounds (aborts) younger lock
  holders in its way; a younger requester waits.  Preemptive; the old
  never wait behind the young.
* **wait-die** — an *older* requester waits; a younger requester dies
  (aborts itself) immediately.  Non-preemptive.

Both guarantee the waits-for graph stays acyclic (all edges point one
way in timestamp order), so no deadlock can form.  Aborted-and-
restarted transactions keep their original timestamp (the caller passes
``retry_of``), which is what makes both schemes starvation-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import TransactionAborted
from repro.locks.manager import LockManager
from repro.locks.modes import LockMode, compatible
from repro.txn.transaction import DataObject, Transaction

#: Called to abort a wounded victim (rollback + lock release).
AbortCallback = Callable[[Transaction, str], None]


class Decision(enum.Enum):
    """What a prevention policy tells the requester to do."""

    WAIT = "wait"
    DIE = "die"
    WOUND = "wound"


@dataclass(frozen=True)
class Resolution:
    """A policy decision plus the victims to wound (WOUND only)."""

    decision: Decision
    victims: tuple[Transaction, ...] = ()


class WoundWait:
    """Older requester wounds younger holders; younger requester waits."""

    name = "wound-wait"

    def resolve(
        self, requester: Transaction, holders: Sequence[Transaction]
    ) -> Resolution:
        younger = tuple(
            h for h in holders if h.start_order > requester.start_order
        )
        if len(younger) == len(holders):
            # Everyone in the way is younger: wound them all.
            return Resolution(Decision.WOUND, younger)
        return Resolution(Decision.WAIT)


class WaitDie:
    """Older requester waits; younger requester dies."""

    name = "wait-die"

    def resolve(
        self, requester: Transaction, holders: Sequence[Transaction]
    ) -> Resolution:
        if all(requester.start_order < h.start_order for h in holders):
            return Resolution(Decision.WAIT)
        return Resolution(Decision.DIE)


#: Either prevention policy.
PreventionPolicy = WoundWait | WaitDie


def blocking_holders(
    manager: LockManager,
    txn: Transaction,
    obj: DataObject,
    mode: LockMode,
) -> list[Transaction]:
    """The other transactions whose held locks block this request."""
    blockers: list[Transaction] = []
    for holder in manager.holders(obj):
        if holder is txn:
            continue
        held = manager.held_modes(holder, obj)
        if any(not compatible(mode, h) for h in held):
            blockers.append(holder)
    return blockers


def acquire_with_prevention(
    manager: LockManager,
    txn: Transaction,
    obj: DataObject,
    mode: LockMode,
    policy: PreventionPolicy,
    abort_victim: AbortCallback,
    blocking: bool = False,
    max_wounds: int = 100,
) -> bool:
    """Acquire ``mode`` on ``obj`` under a prevention policy.

    Returns True once granted.  Raises :class:`TransactionAborted` when
    the policy says DIE (the caller restarts the transaction later,
    reusing its timestamp).  On WOUND, victims are aborted through
    ``abort_victim`` and the acquisition retries.  On WAIT the request
    is queued with the manager (FIFO); with ``blocking`` the call
    parks on the request (threaded engines), otherwise it returns
    False and the request is granted later by queue processing.
    Waiting is safe under either policy: it only happens when every
    waits-for edge points one way in timestamp order, so no cycle can
    close.
    """
    for _ in range(max_wounds):
        if manager.try_acquire(txn, obj, mode):
            return True
        blockers = blocking_holders(manager, txn, obj, mode)
        if blockers:
            resolution = policy.resolve(txn, blockers)
            if resolution.decision is Decision.DIE:
                raise TransactionAborted(
                    txn.txn_id, f"{policy.name}: younger requester dies"
                )
            if resolution.decision is Decision.WOUND:
                for victim in resolution.victims:
                    abort_victim(
                        victim, f"{policy.name}: wounded by {txn.txn_id}"
                    )
                continue
        # WAIT (or blocked only by queue fairness): enqueue.
        request = manager.acquire(txn, obj, mode, blocking=blocking)
        return request.is_granted
    return False
