"""Lock escalation to relation level.

Section 4.3, last paragraph: "Like regular read and write locks, the Rc
locks can be escalated for performance reasons.  In the extreme case, a
Rc lock may lock an entire relation.  An example is when a condition is
dependent on the absence of some tuples from a relation (negative
dependence).  In this case a lock can be placed at the relation level.
Such a lock is equivalent to locking the appropriate tuple in the
'SYSTEM-CATALOG' relation."

:class:`EscalationPolicy` decides, per condition element, whether to
lock individual tuples or the whole relation (via the catalog tuple),
and performs threshold-based escalation when a transaction accumulates
too many tuple locks on one relation.
"""

from __future__ import annotations

from collections import defaultdict

from repro.lang.ast import ConditionElement
from repro.locks.modes import LockMode
from repro.txn.transaction import DataObject, Transaction
from repro.wm.element import WME, data_object_key
from repro.wm.schema import Catalog


class EscalationPolicy:
    """Chooses lock granularity for condition evaluation.

    Parameters
    ----------
    threshold:
        When a transaction holds at least this many tuple locks on one
        relation, further locks on that relation escalate to the
        relation-level catalog lock.  ``0`` disables threshold
        escalation (negative conditions still escalate — they must).
    """

    def __init__(self, threshold: int = 0) -> None:
        self.threshold = threshold
        self._tuple_counts: dict[
            tuple[str, str], int
        ] = defaultdict(int)  # (txn_id, relation) -> tuple-lock count
        #: Escalations performed, for tests/benchmarks.
        self.escalations = 0

    # -- granularity decisions -------------------------------------------------------

    def objects_for_element(
        self,
        txn: Transaction,
        element: ConditionElement,
        matched: WME | None,
    ) -> list[DataObject]:
        """Lockable objects needed to protect one condition element.

        * A *negated* element depends on tuple absence, so it must be
          protected at relation level — the catalog tuple.
        * A positive element with a matched WME locks that tuple,
          unless the threshold triggers escalation.
        * A positive element with no match (condition came out false)
          also depends on absence over the candidates scanned; we
          conservatively take the relation-level lock.
        """
        if element.negated or matched is None:
            return [Catalog.catalog_lock_key(element.relation)]
        key = (txn.txn_id, element.relation)
        if self.threshold and self._tuple_counts[key] >= self.threshold:
            self.escalations += 1
            return [Catalog.catalog_lock_key(element.relation)]
        self._tuple_counts[key] += 1
        return [data_object_key(matched)]

    def objects_for_write(self, txn: Transaction, wme: WME) -> list[DataObject]:
        """Lockable objects for an RHS write touching ``wme``.

        A write both changes the tuple and changes relation membership
        (it can flip a negative condition), so it needs the tuple lock
        *and* the relation-level catalog lock — the relation lock is
        what makes escalated Rc locks actually conflict with writers.
        """
        return [
            data_object_key(wme),
            Catalog.catalog_lock_key(wme.relation),
        ]

    def forget(self, txn: Transaction) -> None:
        """Drop per-transaction counters after commit/abort."""
        for key in [k for k in self._tuple_counts if k[0] == txn.txn_id]:
            del self._tuple_counts[key]


#: Mode a relation-level condition lock is taken in, per scheme name.
CONDITION_MODE_BY_SCHEME = {
    "2pl": LockMode.R,
    "rc": LockMode.RC,
}
