"""Per-transaction held-mode memoization for the locking schemes.

Both schemes' all-or-nothing acquisition (:meth:`try_lock_action`)
needs to know whether the transaction already holds a mode on each
object — in the seed that is a ``manager.holds`` call per object, a
full mutex round trip each.  The scheme layer is in a position to
remember its own grants: every lock a scheme hands out, and every
release, passes through the scheme's entry points, so a local cache of
``(obj, mode)`` pairs per transaction turns the already-held check
into a set lookup.

The cache is *memoization, never authority*:

* a hit means "this scheme granted the mode and has not released it" —
  trustworthy because all scheme-level release paths
  (commit/abort/release_condition_locks/rollback) evict;
* a miss means nothing — engines such as the ThreadedWaveExecutor
  acquire straight from the manager, bypassing the scheme, so callers
  must fall back to the manager (``try_acquire_held`` folds that
  fallback and the acquisition into one round trip).

False negatives are therefore harmless (one extra manager call);
false positives cannot occur while every scheme release path calls
:meth:`drop`/:meth:`discard`.
"""

from __future__ import annotations

import threading

from repro.locks.modes import LockMode
from repro.txn.transaction import DataObject, Transaction


class HeldModeCache:
    """Scheme-local map of transaction -> held ``(obj, mode)`` pairs.

    Mutations are guarded by a plain lock; the read path
    (:meth:`holds`) is deliberately unguarded — under the GIL a
    concurrent ``add`` can at worst produce a spurious miss, which
    only costs the fallback manager round trip.
    """

    __slots__ = ("_held", "_mutex")

    def __init__(self) -> None:
        self._held: dict[Transaction, set[tuple[DataObject, LockMode]]] = {}
        self._mutex = threading.Lock()

    def holds(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """True when this scheme is known to hold ``mode`` on ``obj``."""
        entry = self._held.get(txn)
        return entry is not None and (obj, mode) in entry

    def note(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> None:
        """Record a grant observed by the scheme.

        Hot path: the entry set is looked up without the mutex (only
        ``txn``'s own thread notes for it, and CPython dict reads are
        GIL-atomic); the mutex guards only first-touch insertion.
        """
        entry = self._held.get(txn)
        if entry is None:
            with self._mutex:
                entry = self._held.setdefault(txn, set())
        entry.add((obj, mode))

    def discard(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> None:
        """Forget one pair (single-lock release on a rollback path)."""
        with self._mutex:
            entry = self._held.get(txn)
            if entry is not None:
                entry.discard((obj, mode))
                if not entry:
                    del self._held[txn]

    def drop(self, txn: Transaction) -> None:
        """Forget everything for ``txn`` (commit/abort/release-all)."""
        with self._mutex:
            self._held.pop(txn, None)

    def __len__(self) -> int:
        return len(self._held)
