"""The centralized lock manager.

Implements the machinery both schemes share (Section 4.2 introduces it:
"below is an example of such a scheme, using a centralized lock
manager"): a grant table, FIFO wait queues with a no-barging policy,
lock upgrades, release-time queue processing, optional history
recording for the serializability checker, and a runtime *auditor*
asserting that no two incompatible locks are ever simultaneously held —
the safety invariant the property tests lean on.

The manager is deliberately scheme-agnostic: it enforces whatever the
compatibility function says.  The 2PL discipline and the Rc/Ra/Wa
commit-time abort rule live in :mod:`repro.locks.two_phase` and
:mod:`repro.locks.rc_scheme`.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Callable, Iterator

import repro.obs as obs_module
from repro.errors import DeadlockDetected, LockError
from repro.locks.modes import LockMode, compatible, is_upgrade
from repro.locks.request import LockRequest, RequestStatus
from repro.txn.schedule import History
from repro.txn.transaction import DataObject, Transaction


class LockManager:
    """Grant table + wait queues for any set of lock modes.

    Parameters
    ----------
    history:
        Optional :class:`~repro.txn.schedule.History`; when given,
        every grant is recorded as a read (``R``/``Rc``/``Ra``) or
        write (``W``/``Wa``) operation, feeding the serializability
        checker.
    audit:
        When true (the default), every grant re-verifies the global
        compatibility invariant and raises :class:`LockError` on
        violation.  Cheap at test scale; disable for large benchmarks.
    observer:
        Observability sink for lock events (grant/wait/deny/cancel)
        and metrics; defaults to the module-level observer from
        :mod:`repro.obs` (inert unless enabled).
    """

    def __init__(
        self,
        history: History | None = None,
        audit: bool = True,
        observer=None,
    ) -> None:
        self.history = history
        self.audit = audit
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self._mutex = threading.RLock()
        self._grants: dict[DataObject, dict[Transaction, set[LockMode]]] = (
            defaultdict(dict)
        )
        self._queues: dict[DataObject, list[LockRequest]] = defaultdict(list)
        self._txn_objects: dict[Transaction, set[DataObject]] = defaultdict(
            set
        )
        #: Total grants/waits/denials, exposed for benchmarks.
        self.stats = {"grants": 0, "waits": 0, "denials": 0, "upgrades": 0}

    # -- queries ---------------------------------------------------------------------

    def holders(
        self, obj: DataObject, mode: LockMode | None = None
    ) -> list[Transaction]:
        """Transactions holding a lock on ``obj`` (optionally filtered
        to one mode)."""
        with self._mutex:
            grants = self._grants.get(obj, {})
            if mode is None:
                return list(grants)
            return [t for t, modes in grants.items() if mode in modes]

    def held_modes(self, txn: Transaction, obj: DataObject) -> set[LockMode]:
        """Modes ``txn`` currently holds on ``obj``."""
        with self._mutex:
            return set(self._grants.get(obj, {}).get(txn, set()))

    def holds(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """True when ``txn`` holds ``mode`` on ``obj``."""
        return mode in self.held_modes(txn, obj)

    def locked_objects(self, txn: Transaction) -> frozenset[DataObject]:
        """Objects on which ``txn`` holds at least one lock."""
        with self._mutex:
            return frozenset(self._txn_objects.get(txn, set()))

    def waiting_requests(self, obj: DataObject | None = None) -> list[LockRequest]:
        """Waiting requests, globally or for one object (FIFO order)."""
        with self._mutex:
            if obj is not None:
                return [r for r in self._queues.get(obj, []) if r.is_waiting]
            out: list[LockRequest] = []
            for queue in self._queues.values():
                out.extend(r for r in queue if r.is_waiting)
            return out

    def waits_for_edges(self) -> Iterator[tuple[Transaction, Transaction]]:
        """Edges ``waiter -> holder`` of the waits-for graph.

        A waiter waits for every transaction holding an incompatible
        lock on the requested object, and for incompatible waiters
        queued ahead of it (they will be granted first under FIFO).
        """
        with self._mutex:
            for obj, queue in self._queues.items():
                waiting = [r for r in queue if r.is_waiting]
                for position, request in enumerate(waiting):
                    for holder, modes in self._grants.get(obj, {}).items():
                        if holder is request.txn:
                            continue
                        if any(
                            not compatible(request.mode, m) for m in modes
                        ):
                            yield (request.txn, holder)
                    for ahead in waiting[:position]:
                        if ahead.txn is request.txn:
                            continue
                        if not compatible(request.mode, ahead.mode):
                            yield (request.txn, ahead.txn)

    def can_grant(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Would a request for ``mode`` on ``obj`` be granted right now?

        Pure probe: no state changes, no queueing.  Used by the
        discrete-event simulator for all-or-nothing acquisition.
        """
        with self._mutex:
            grants = self._grants.get(obj, {})
            upgrading = txn in grants
            for holder, modes in grants.items():
                if holder is txn:
                    continue
                if any(not compatible(mode, held) for held in modes):
                    return False
            if not upgrading:
                for ahead in self._queues.get(obj, []):
                    if not ahead.is_waiting or ahead.txn is txn:
                        continue
                    if not compatible(mode, ahead.mode):
                        return False
            return True

    # -- acquisition --------------------------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        obj: DataObject,
        mode: LockMode,
        blocking: bool = False,
        timeout: float | None = None,
        on_block: Callable[[LockRequest], None] | None = None,
    ) -> LockRequest:
        """Request ``mode`` on ``obj`` for ``txn``.

        Grant rules (classic no-barging):

        * a request by a transaction already holding a lock on the
          object is treated as an *upgrade*: checked only against other
          holders, bypassing the queue (prevents self-deadlock);
        * otherwise the request is granted iff it is compatible with
          every other holder's modes and no incompatible request waits
          ahead of it.

        When ``blocking`` is true the call waits until granted, denied
        or ``timeout``; ``on_block`` (if given) runs once after the
        request is queued — the deadlock detector hooks in there.  A
        blocking request whose timeout expires is cancelled and counts
        as a denial in :attr:`stats`.
        """
        request = LockRequest(txn, obj, mode)
        with self._mutex:
            if self._try_grant(request):
                return request
            self._queues[obj].append(request)
            self.stats["waits"] += 1
            if self.obs.enabled:
                request.enqueued_at = self.obs.clock()
                self.obs.lock_queued(
                    txn.txn_id, obj, str(mode),
                    depth=len(self._queues[obj]),
                )
        if on_block is not None:
            on_block(request)
        if blocking:
            status = request.wait(timeout)
            if status is RequestStatus.WAITING:
                self.cancel(request)
                if request.status is RequestStatus.CANCELLED:
                    # The wait timed out (nobody granted concurrently):
                    # the caller was refused the lock, which is a
                    # denial for accounting purposes.
                    with self._mutex:
                        self.stats["denials"] += 1
                    if self.obs.enabled:
                        self.obs.lock_denied(
                            txn.txn_id, obj, str(mode), reason="timeout"
                        )
        return request

    def try_acquire(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Non-queuing attempt: grant now or report False untouched."""
        request = LockRequest(txn, obj, mode)
        with self._mutex:
            if self._try_grant(request):
                return True
            request.resolve(RequestStatus.DENIED)
            self.stats["denials"] += 1
            if self.obs.enabled:
                self.obs.lock_denied(
                    txn.txn_id, obj, str(mode), reason="busy"
                )
            return False

    def _try_grant(self, request: LockRequest) -> bool:
        """Grant ``request`` if rules allow; caller holds the mutex."""
        obj, txn, mode = request.obj, request.txn, request.mode
        grants = self._grants[obj]
        own = grants.get(txn, set())
        upgrading = bool(own)
        for holder, modes in grants.items():
            if holder is txn:
                continue
            if any(not compatible(mode, held) for held in modes):
                return False
        if not upgrading:
            for ahead in self._queues.get(obj, []):
                if not ahead.is_waiting or ahead.txn is txn:
                    continue
                if not compatible(mode, ahead.mode):
                    return False
        grants.setdefault(txn, set()).add(mode)
        self._txn_objects[txn].add(obj)
        request.resolve(RequestStatus.GRANTED)
        self.stats["grants"] += 1
        if upgrading and any(is_upgrade(h, mode) for h in own):
            self.stats["upgrades"] += 1
        if self.obs.enabled:
            waited = (
                self.obs.clock() - request.enqueued_at
                if request.enqueued_at is not None
                else 0.0
            )
            self.obs.lock_granted(
                txn.txn_id, obj, str(mode), waited=waited,
                queued=request.enqueued_at is not None,
            )
        self._record(txn, obj, mode)
        if self.audit:
            self._audit_object(obj)
        return True

    def _record(self, txn: Transaction, obj: DataObject, mode: LockMode) -> None:
        if mode.is_read:
            txn.record_read(obj)
            if self.history is not None:
                self.history.read(txn.txn_id, obj)
        else:
            txn.record_write(obj)
            if self.history is not None:
                self.history.write(txn.txn_id, obj)

    def _audit_object(self, obj: DataObject) -> None:
        grants = self._grants.get(obj, {})
        pairs = [
            (t, m) for t, modes in grants.items() for m in modes
        ]
        for i, (txn_a, mode_a) in enumerate(pairs):
            for txn_b, mode_b in pairs[i + 1:]:
                if txn_a is txn_b:
                    continue
                if not compatible(mode_a, mode_b) and not compatible(
                    mode_b, mode_a
                ):
                    raise LockError(
                        f"compatibility invariant violated on {obj!r}: "
                        f"{txn_a.txn_id}:{mode_a} with {txn_b.txn_id}:{mode_b}"
                    )

    # -- release ---------------------------------------------------------------------------

    def release(
        self, txn: Transaction, obj: DataObject, mode: LockMode | None = None
    ) -> None:
        """Release one mode (or all modes) ``txn`` holds on ``obj``."""
        with self._mutex:
            grants = self._grants.get(obj)
            if not grants or txn not in grants:
                return
            if mode is None:
                del grants[txn]
            else:
                grants[txn].discard(mode)
                if not grants[txn]:
                    del grants[txn]
            if txn not in grants:
                self._txn_objects[txn].discard(obj)
            self._process_queue(obj)

    def release_all(self, txn: Transaction) -> None:
        """Release every lock ``txn`` holds (commit/abort epilogue —
        both schemes hold all locks to the end, Figures 4.1/4.2)."""
        with self._mutex:
            for obj in list(self._txn_objects.get(txn, ())):
                grants = self._grants.get(obj)
                if grants is not None:
                    grants.pop(txn, None)
                self._process_queue(obj)
            self._txn_objects.pop(txn, None)
            self._cancel_requests_of(txn)

    def cancel(self, request: LockRequest) -> None:
        """Withdraw a waiting request (timeout or deadlock victim)."""
        with self._mutex:
            queue = self._queues.get(request.obj, [])
            if request in queue:
                queue.remove(request)
            if request.is_waiting:
                request.resolve(RequestStatus.CANCELLED)
                if self.obs.enabled:
                    self.obs.lock_cancelled(
                        request.txn.txn_id, request.obj, str(request.mode)
                    )
            self._process_queue(request.obj)

    def _cancel_requests_of(self, txn: Transaction) -> None:
        for obj, queue in self._queues.items():
            for request in list(queue):
                if request.txn is txn:
                    queue.remove(request)
                    if request.is_waiting:
                        request.resolve(RequestStatus.CANCELLED)
                        if self.obs.enabled:
                            self.obs.lock_cancelled(
                                txn.txn_id, obj, str(request.mode)
                            )
            self._process_queue(obj)

    def _process_queue(self, obj: DataObject) -> None:
        """Grant queued requests in FIFO order while compatible."""
        queue = self._queues.get(obj)
        if not queue:
            return
        still_waiting: list[LockRequest] = []
        for request in queue:
            if not request.is_waiting:
                continue
            # Temporarily empty the queue view so _try_grant's
            # no-barging check sees only requests ahead of this one.
            self._queues[obj] = still_waiting
            if not self._try_grant(request):
                still_waiting.append(request)
        self._queues[obj] = still_waiting

    # -- diagnostics ----------------------------------------------------------------------------

    def grant_table(self) -> dict[DataObject, dict[str, tuple[str, ...]]]:
        """A printable snapshot of the grant table."""
        with self._mutex:
            return {
                obj: {
                    txn.txn_id: tuple(str(m) for m in sorted(modes, key=str))
                    for txn, modes in grants.items()
                }
                for obj, grants in self._grants.items()
                if grants
            }

    def raise_deadlock(self, request: LockRequest, cycle: tuple[str, ...]) -> None:
        """Deny ``request`` as a deadlock victim and raise."""
        self.cancel(request)
        raise DeadlockDetected(request.txn.txn_id, cycle)
