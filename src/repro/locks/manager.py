"""The centralized lock manager — and its striped successor.

Implements the machinery both schemes share (Section 4.2 introduces it:
"below is an example of such a scheme, using a centralized lock
manager"): a grant table, FIFO wait queues with a no-barging policy,
lock upgrades, release-time queue processing, optional history
recording for the serializability checker, and a runtime *auditor*
asserting that no two incompatible locks are ever simultaneously held —
the safety invariant the property tests lean on.

The manager is deliberately scheme-agnostic: it enforces whatever the
compatibility function says.  The 2PL discipline and the Rc/Ra/Wa
commit-time abort rule live in :mod:`repro.locks.two_phase` and
:mod:`repro.locks.rc_scheme`.

Striping
--------
``LockManager(stripes=1)`` (the default) is the seed implementation:
one global mutex guarding the whole grant table — the literal
"centralized lock manager" of Section 4.2, kept byte-for-byte as the
semantics oracle.  ``LockManager(stripes=N)`` for ``N > 1`` returns a
:class:`StripedLockManager`: the table is sharded into N independent
stripes (``stripe_fn(obj) % N``), each owning its own mutex, grant
map, FIFO queues, per-transaction indexes and stats counters, so
uncontended acquisitions on distinct objects never touch the same
latch.  Cross-stripe reads (``waits_for_edges``, ``grant_table``,
``stats_snapshot``...) take *ordered* all-stripe snapshots, which keeps
the deadlock detector and the auditor sound.  Both variants make
identical grant/wait/deny decisions for any deterministic schedule —
the hypothesis equivalence tests pin that.
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from contextlib import contextmanager
from typing import Callable, Iterator

import repro.obs as obs_module
from repro.errors import DeadlockDetected, LockError
from repro.locks.modes import LockMode, compatible, is_upgrade

#: Read-flavored modes, precomputed for the striped fast path (saves a
#: property call per grant).
_READ_MODES = frozenset(m for m in LockMode if m.is_read)
from repro.locks.request import LockRequest, RequestStatus
from repro.txn.schedule import History
from repro.txn.transaction import DataObject, Transaction

#: Counter names aggregated by :meth:`LockManager.stats_snapshot`.
STAT_KEYS = ("grants", "waits", "denials", "upgrades")


class GrantOutcome(enum.Enum):
    """Result of :meth:`LockManager.try_acquire_held`."""

    #: The transaction already held the mode; nothing was acquired.
    HELD = "held"
    #: The mode was granted by this call.
    GRANTED = "granted"
    #: The mode is unavailable; nothing was acquired or queued.
    DENIED = "denied"


def _check_audit_pairs(obj: DataObject, grants: dict) -> None:
    """Raise :class:`LockError` when two held modes are incompatible."""
    pairs = [(t, m) for t, modes in grants.items() for m in modes]
    for i, (txn_a, mode_a) in enumerate(pairs):
        for txn_b, mode_b in pairs[i + 1:]:
            if txn_a is txn_b:
                continue
            if not compatible(mode_a, mode_b) and not compatible(
                mode_b, mode_a
            ):
                raise LockError(
                    f"compatibility invariant violated on {obj!r}: "
                    f"{txn_a.txn_id}:{mode_a} with {txn_b.txn_id}:{mode_b}"
                )


class LockManager:
    """Grant table + wait queues for any set of lock modes.

    Parameters
    ----------
    history:
        Optional :class:`~repro.txn.schedule.History`; when given,
        every grant is recorded as a read (``R``/``Rc``/``Ra``) or
        write (``W``/``Wa``) operation, feeding the serializability
        checker.
    audit:
        When true (the default), every grant re-verifies the global
        compatibility invariant and raises :class:`LockError` on
        violation.  Cheap at test scale; disable for large benchmarks.
    observer:
        Observability sink for lock events (grant/wait/deny/cancel)
        and metrics; defaults to the module-level observer from
        :mod:`repro.obs` (inert unless enabled).
    stripes:
        Lock-table stripe count.  ``1`` (default) keeps the seed
        single-mutex implementation — the semantics oracle.  ``N > 1``
        dispatches to :class:`StripedLockManager`.
    stripe_fn:
        Object-to-integer hash used for stripe placement (striped
        variant only); defaults to :func:`hash`.  Tests inject a
        custom function to force objects into chosen stripes.
    """

    #: Stripe count; 1 for the legacy single-mutex manager.
    stripes: int = 1

    def __new__(
        cls,
        history: History | None = None,
        audit: bool = True,
        observer=None,
        *,
        stripes: int = 1,
        stripe_fn: Callable[[DataObject], int] | None = None,
    ):
        if cls is LockManager and stripes > 1:
            return super().__new__(StripedLockManager)
        return super().__new__(cls)

    def __init__(
        self,
        history: History | None = None,
        audit: bool = True,
        observer=None,
        *,
        stripes: int = 1,
        stripe_fn: Callable[[DataObject], int] | None = None,
    ) -> None:
        if stripes < 1:
            raise ValueError(f"stripes must be >= 1, got {stripes}")
        self.history = history
        self.audit = audit
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self._mutex = threading.RLock()
        self._grants: dict[DataObject, dict[Transaction, set[LockMode]]] = (
            defaultdict(dict)
        )
        self._queues: dict[DataObject, list[LockRequest]] = defaultdict(list)
        self._txn_objects: dict[Transaction, set[DataObject]] = defaultdict(
            set
        )
        #: Total grants/waits/denials — the live counter dict of the
        #: seed implementation.  Deprecated for external reads: use
        #: :meth:`stats_snapshot`, which is atomic and also works on
        #: the striped variant (where ``stats`` is an aggregate view).
        self.stats = {key: 0 for key in STAT_KEYS}
        #: Queue-processing passes performed (one per object whose
        #: queue was examined) — the regression counter for the
        #: commit-cost fix; see :meth:`release_all`.
        self.queue_visits = 0

    # -- queries ---------------------------------------------------------------------

    def holders(
        self, obj: DataObject, mode: LockMode | None = None
    ) -> list[Transaction]:
        """Transactions holding a lock on ``obj`` (optionally filtered
        to one mode)."""
        with self._mutex:
            grants = self._grants.get(obj, {})
            if mode is None:
                return list(grants)
            return [t for t, modes in grants.items() if mode in modes]

    def held_modes(self, txn: Transaction, obj: DataObject) -> set[LockMode]:
        """Modes ``txn`` currently holds on ``obj``."""
        with self._mutex:
            return set(self._grants.get(obj, {}).get(txn, set()))

    def holds(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """True when ``txn`` holds ``mode`` on ``obj``."""
        return mode in self.held_modes(txn, obj)

    def locked_objects(self, txn: Transaction) -> frozenset[DataObject]:
        """Objects on which ``txn`` holds at least one lock."""
        with self._mutex:
            return frozenset(self._txn_objects.get(txn, set()))

    def waiting_requests(self, obj: DataObject | None = None) -> list[LockRequest]:
        """Waiting requests, globally or for one object (FIFO order)."""
        with self._mutex:
            if obj is not None:
                return [r for r in self._queues.get(obj, []) if r.is_waiting]
            out: list[LockRequest] = []
            for queue in self._queues.values():
                out.extend(r for r in queue if r.is_waiting)
            return out

    def waits_for_edges(self) -> Iterator[tuple[Transaction, Transaction]]:
        """Edges ``waiter -> holder`` of the waits-for graph.

        A waiter waits for every transaction holding an incompatible
        lock on the requested object, and for incompatible waiters
        queued ahead of it (they will be granted first under FIFO).
        """
        with self._mutex:
            for obj, queue in self._queues.items():
                waiting = [r for r in queue if r.is_waiting]
                for position, request in enumerate(waiting):
                    for holder, modes in self._grants.get(obj, {}).items():
                        if holder is request.txn:
                            continue
                        if any(
                            not compatible(request.mode, m) for m in modes
                        ):
                            yield (request.txn, holder)
                    for ahead in waiting[:position]:
                        if ahead.txn is request.txn:
                            continue
                        if not compatible(request.mode, ahead.mode):
                            yield (request.txn, ahead.txn)

    def write_read_conflicts(
        self,
        txn: Transaction,
        write_mode: LockMode,
        read_mode: LockMode,
        candidates: Iterable[DataObject] | None = None,
    ) -> dict[Transaction, list[DataObject]]:
        """Holders of ``read_mode`` on objects where ``txn`` holds
        ``write_mode``, as one consistent pass.

        The commit-time rule (ii) scan: equivalent to iterating
        ``locked_objects``/``holds``/``holders`` from the scheme layer,
        but in a single lock round trip instead of 2-3 per object.
        ``candidates`` narrows the scan to a superset of the objects
        ``txn`` may hold ``write_mode`` on (e.g. its write set);
        objects where it doesn't actually hold the mode are filtered
        here, so a stale superset is safe.
        """
        victims: dict[Transaction, list[DataObject]] = {}
        with self._mutex:
            if candidates is None:
                candidates = self._txn_objects.get(txn, ())
            for obj in candidates:
                grants = self._grants.get(obj, {})
                if write_mode not in grants.get(txn, ()):
                    continue
                for holder, modes in grants.items():
                    if holder is not txn and read_mode in modes:
                        victims.setdefault(holder, []).append(obj)
        return victims

    def can_grant(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Would a request for ``mode`` on ``obj`` be granted right now?

        Pure probe: no state changes, no queueing.  Used by the
        discrete-event simulator for all-or-nothing acquisition.
        """
        with self._mutex:
            grants = self._grants.get(obj, {})
            upgrading = txn in grants
            for holder, modes in grants.items():
                if holder is txn:
                    continue
                if any(not compatible(mode, held) for held in modes):
                    return False
            if not upgrading:
                for ahead in self._queues.get(obj, []):
                    if not ahead.is_waiting or ahead.txn is txn:
                        continue
                    if not compatible(mode, ahead.mode):
                        return False
            return True

    # -- acquisition --------------------------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        obj: DataObject,
        mode: LockMode,
        blocking: bool = False,
        timeout: float | None = None,
        on_block: Callable[[LockRequest], None] | None = None,
    ) -> LockRequest:
        """Request ``mode`` on ``obj`` for ``txn``.

        Grant rules (classic no-barging):

        * a request by a transaction already holding a lock on the
          object is treated as an *upgrade*: checked only against other
          holders, bypassing the queue (prevents self-deadlock);
        * otherwise the request is granted iff it is compatible with
          every other holder's modes and no incompatible request waits
          ahead of it.

        When ``blocking`` is true the call waits until granted, denied
        or ``timeout``; ``on_block`` (if given) runs once after the
        request is queued — the deadlock detector hooks in there.  A
        blocking request whose timeout expires is cancelled and counts
        as a denial in :attr:`stats`.
        """
        request = LockRequest(txn, obj, mode)
        with self._mutex:
            if self._try_grant(request):
                return request
            self._queues[obj].append(request)
            self.stats["waits"] += 1
            if self.obs.enabled:
                request.enqueued_at = self.obs.clock()
                self.obs.lock_queued(
                    txn.txn_id, obj, str(mode),
                    depth=len(self._queues[obj]),
                )
        if on_block is not None:
            on_block(request)
        if blocking:
            status = request.wait(timeout)
            if status is RequestStatus.WAITING:
                self.cancel(request)
                if request.status is RequestStatus.CANCELLED:
                    # The wait timed out (nobody granted concurrently):
                    # the caller was refused the lock, which is a
                    # denial for accounting purposes.
                    with self._mutex:
                        self.stats["denials"] += 1
                    if self.obs.enabled:
                        self.obs.lock_denied(
                            txn.txn_id, obj, str(mode), reason="timeout"
                        )
        return request

    def try_acquire(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Non-queuing attempt: grant now or report False untouched."""
        request = LockRequest(txn, obj, mode)
        with self._mutex:
            if self._try_grant(request):
                return True
            request.resolve(RequestStatus.DENIED)
            self.stats["denials"] += 1
            if self.obs.enabled:
                self.obs.lock_denied(
                    txn.txn_id, obj, str(mode), reason="busy"
                )
            return False

    def try_acquire_held(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> GrantOutcome:
        """Held-check and non-queuing grant in one mutex round trip.

        Equivalent to ``holds(...) or try_acquire(...)`` but atomic and
        with the already-held case distinguished, so scheme-level
        all-or-nothing acquisition can tell "not ours to undo" from
        "newly acquired" without a second round trip.
        """
        with self._mutex:
            if mode in self._grants.get(obj, {}).get(txn, ()):
                return GrantOutcome.HELD
            if self.try_acquire(txn, obj, mode):
                return GrantOutcome.GRANTED
            return GrantOutcome.DENIED

    def _try_grant(self, request: LockRequest) -> bool:
        """Grant ``request`` if rules allow; caller holds the mutex."""
        obj, txn, mode = request.obj, request.txn, request.mode
        grants = self._grants[obj]
        own = grants.get(txn, set())
        upgrading = bool(own)
        for holder, modes in grants.items():
            if holder is txn:
                continue
            if any(not compatible(mode, held) for held in modes):
                return False
        if not upgrading:
            for ahead in self._queues.get(obj, []):
                if not ahead.is_waiting or ahead.txn is txn:
                    continue
                if not compatible(mode, ahead.mode):
                    return False
        grants.setdefault(txn, set()).add(mode)
        self._txn_objects[txn].add(obj)
        request.resolve(RequestStatus.GRANTED)
        self.stats["grants"] += 1
        if upgrading and any(is_upgrade(h, mode) for h in own):
            self.stats["upgrades"] += 1
        if self.obs.enabled:
            waited = (
                self.obs.clock() - request.enqueued_at
                if request.enqueued_at is not None
                else 0.0
            )
            self.obs.lock_granted(
                txn.txn_id, obj, str(mode), waited=waited,
                queued=request.enqueued_at is not None,
            )
        self._record(txn, obj, mode)
        if self.audit:
            self._audit_object(obj)
        return True

    def _record(self, txn: Transaction, obj: DataObject, mode: LockMode) -> None:
        if mode.is_read:
            txn.record_read(obj)
            if self.history is not None:
                self.history.read(txn.txn_id, obj)
        else:
            txn.record_write(obj)
            if self.history is not None:
                self.history.write(txn.txn_id, obj)

    def _audit_object(self, obj: DataObject) -> None:
        _check_audit_pairs(obj, self._grants.get(obj, {}))

    # -- release ---------------------------------------------------------------------------

    def release(
        self, txn: Transaction, obj: DataObject, mode: LockMode | None = None
    ) -> None:
        """Release one mode (or all modes) ``txn`` holds on ``obj``."""
        with self._mutex:
            grants = self._grants.get(obj)
            if not grants or txn not in grants:
                return
            if mode is None:
                del grants[txn]
            else:
                grants[txn].discard(mode)
                if not grants[txn]:
                    del grants[txn]
            if txn not in grants:
                self._txn_objects[txn].discard(obj)
            self._process_queue(obj)

    def release_all(self, txn: Transaction) -> None:
        """Release every lock ``txn`` holds (commit/abort epilogue —
        both schemes hold all locks to the end, Figures 4.1/4.2).

        The seed cost profile is kept deliberately: the epilogue scans
        *every* queue in the system (via ``_cancel_requests_of``), so a
        commit is O(total objects ever queued).  The striped variant
        replaces this with per-transaction indexes — O(held + waiting)
        — which is the measured win of ``bench_lock_scaling``.
        """
        with self._mutex:
            for obj in list(self._txn_objects.get(txn, ())):
                grants = self._grants.get(obj)
                if grants is not None:
                    grants.pop(txn, None)
                self._process_queue(obj)
            self._txn_objects.pop(txn, None)
            self._cancel_requests_of(txn)

    def cancel(self, request: LockRequest) -> None:
        """Withdraw a waiting request (timeout or deadlock victim)."""
        with self._mutex:
            queue = self._queues.get(request.obj, [])
            if request in queue:
                queue.remove(request)
            if request.is_waiting:
                request.resolve(RequestStatus.CANCELLED)
                if self.obs.enabled:
                    self.obs.lock_cancelled(
                        request.txn.txn_id, request.obj, str(request.mode)
                    )
            self._process_queue(request.obj)

    def _cancel_requests_of(self, txn: Transaction) -> None:
        for obj, queue in self._queues.items():
            for request in list(queue):
                if request.txn is txn:
                    queue.remove(request)
                    if request.is_waiting:
                        request.resolve(RequestStatus.CANCELLED)
                        if self.obs.enabled:
                            self.obs.lock_cancelled(
                                txn.txn_id, obj, str(request.mode)
                            )
            self._process_queue(obj)

    def _process_queue(self, obj: DataObject) -> None:
        """Grant queued requests in FIFO order while compatible."""
        self.queue_visits += 1
        queue = self._queues.get(obj)
        if not queue:
            return
        still_waiting: list[LockRequest] = []
        for request in queue:
            if not request.is_waiting:
                continue
            # Temporarily empty the queue view so _try_grant's
            # no-barging check sees only requests ahead of this one.
            self._queues[obj] = still_waiting
            if not self._try_grant(request):
                still_waiting.append(request)
        self._queues[obj] = still_waiting

    # -- diagnostics ----------------------------------------------------------------------------

    def grant_table(self) -> dict[DataObject, dict[str, tuple[str, ...]]]:
        """A printable snapshot of the grant table."""
        with self._mutex:
            return {
                obj: {
                    txn.txn_id: tuple(str(m) for m in sorted(modes, key=str))
                    for txn, modes in grants.items()
                }
                for obj, grants in self._grants.items()
                if grants
            }

    def stats_snapshot(self) -> dict[str, int]:
        """Atomic copy of the grant/wait/denial/upgrade counters.

        The supported way to read lock statistics: on the striped
        variant the per-stripe counters are aggregated under an
        all-stripe lock, so the totals are a consistent cut.
        """
        with self._mutex:
            return dict(self.stats)

    def audit_now(self) -> None:
        """Verify the compatibility invariant for every held object.

        Raises :class:`LockError` on violation; used by tests as a
        post-run safety sweep (the per-grant auditor covers the
        incremental case).
        """
        with self._mutex:
            for obj in self._grants:
                self._audit_object(obj)

    def raise_deadlock(self, request: LockRequest, cycle: tuple[str, ...]) -> None:
        """Deny ``request`` as a deadlock victim and raise."""
        self.cancel(request)
        raise DeadlockDetected(request.txn.txn_id, cycle)


class _Stripe:
    """One shard of the striped lock table.

    Everything here is guarded by :attr:`mutex`; the stripe never
    reaches into another stripe, so uncontended acquisitions on
    objects in different stripes are latch-free with respect to each
    other.
    """

    __slots__ = (
        "mutex", "grants", "queues", "held", "pending",
        "grants_n", "waits_n", "denials_n", "upgrades_n", "queue_visits",
    )

    def __init__(self) -> None:
        self.mutex = threading.Lock()
        #: obj -> txn -> held modes
        self.grants: dict[DataObject, dict[Transaction, set[LockMode]]] = {}
        #: obj -> FIFO list of requests (waiting and resolved mixed,
        #: as in the seed; resolved entries are skipped/purged during
        #: queue processing)
        self.queues: dict[DataObject, list[LockRequest]] = {}
        #: txn -> objects it holds grants on *in this stripe* — makes
        #: release_all O(held) instead of O(table).
        self.held: dict[Transaction, set[DataObject]] = {}
        #: txn -> its waiting requests in this stripe — makes
        #: commit/abort-time request cancellation O(waiting) instead
        #: of a scan over every queue in the system.
        self.pending: dict[Transaction, set[LockRequest]] = {}
        self.grants_n = 0
        self.waits_n = 0
        self.denials_n = 0
        self.upgrades_n = 0
        self.queue_visits = 0


class StripedLockManager(LockManager):
    """Lock table sharded into N independent stripes.

    Decision-equivalent to the single-mutex :class:`LockManager` (the
    hypothesis tests enforce it) but with per-object work distributed
    over per-stripe latches and with per-transaction indexes replacing
    the seed's table scans:

    * ``release_all`` / request cancellation are O(held + waiting) per
      commit instead of O(total objects ever queued);
    * ``try_acquire`` grants without allocating a request object (the
      seed pays a ``threading.Event`` per probe);
    * empty grant/queue entries are pruned, so the table does not grow
      without bound under churn.

    Cross-stripe reads take all stripe mutexes in index order (a
    deterministic total order, so two concurrent snapshots cannot
    deadlock) — the waits-for graph and the auditor see one consistent
    cut of the whole table.
    """

    def __init__(
        self,
        history: History | None = None,
        audit: bool = True,
        observer=None,
        *,
        stripes: int = 2,
        stripe_fn: Callable[[DataObject], int] | None = None,
    ) -> None:
        if stripes < 2:
            raise ValueError(
                f"StripedLockManager needs stripes >= 2, got {stripes}"
            )
        self.history = history
        self.audit = audit
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self.stripes = stripes
        self._stripe_fn = stripe_fn if stripe_fn is not None else hash
        self._table = [_Stripe() for _ in range(stripes)]
        # txn -> stripe indexes where it has (or had) waiting requests.
        # Only touched on the queue/cancel slow path; lets release_all
        # skip stripes the transaction never waited in.
        self._pending_mutex = threading.Lock()
        self._pending_stripes: dict[Transaction, set[int]] = {}

    # -- stripe plumbing ---------------------------------------------------------------

    def _index_of(self, obj: DataObject) -> int:
        return self._stripe_fn(obj) % self.stripes

    def _stripe_of(self, obj: DataObject) -> _Stripe:
        return self._table[self._stripe_fn(obj) % self.stripes]

    @contextmanager
    def _locked_all(self):
        """All stripe mutexes, acquired in index order (deadlock-free
        by total ordering), for consistent cross-stripe snapshots."""
        for stripe in self._table:
            stripe.mutex.acquire()
        try:
            yield
        finally:
            for stripe in reversed(self._table):
                stripe.mutex.release()

    # -- queries ---------------------------------------------------------------------

    def holders(
        self, obj: DataObject, mode: LockMode | None = None
    ) -> list[Transaction]:
        stripe = self._stripe_of(obj)
        with stripe.mutex:
            grants = stripe.grants.get(obj, {})
            if mode is None:
                return list(grants)
            return [t for t, modes in grants.items() if mode in modes]

    def held_modes(self, txn: Transaction, obj: DataObject) -> set[LockMode]:
        stripe = self._stripe_of(obj)
        with stripe.mutex:
            return set(stripe.grants.get(obj, {}).get(txn, set()))

    def locked_objects(self, txn: Transaction) -> frozenset[DataObject]:
        out: set[DataObject] = set()
        for stripe in self._table:
            with stripe.mutex:
                out.update(stripe.held.get(txn, ()))
        return frozenset(out)

    def waiting_requests(self, obj: DataObject | None = None) -> list[LockRequest]:
        if obj is not None:
            stripe = self._stripe_of(obj)
            with stripe.mutex:
                return [
                    r for r in stripe.queues.get(obj, []) if r.is_waiting
                ]
        out: list[LockRequest] = []
        with self._locked_all():
            for stripe in self._table:
                for queue in stripe.queues.values():
                    out.extend(r for r in queue if r.is_waiting)
        return out

    def waits_for_edges(self) -> Iterator[tuple[Transaction, Transaction]]:
        edges: list[tuple[Transaction, Transaction]] = []
        with self._locked_all():
            for stripe in self._table:
                for obj, queue in stripe.queues.items():
                    waiting = [r for r in queue if r.is_waiting]
                    for position, request in enumerate(waiting):
                        for holder, modes in stripe.grants.get(
                            obj, {}
                        ).items():
                            if holder is request.txn:
                                continue
                            if any(
                                not compatible(request.mode, m)
                                for m in modes
                            ):
                                edges.append((request.txn, holder))
                        for ahead in waiting[:position]:
                            if ahead.txn is request.txn:
                                continue
                            if not compatible(request.mode, ahead.mode):
                                edges.append((request.txn, ahead.txn))
        return iter(edges)

    def write_read_conflicts(
        self,
        txn: Transaction,
        write_mode: LockMode,
        read_mode: LockMode,
        candidates: Iterable[DataObject] | None = None,
    ) -> dict[Transaction, list[DataObject]]:
        victims: dict[Transaction, list[DataObject]] = {}
        if candidates is not None:
            by_stripe: dict[int, list[DataObject]] = {}
            stripe_fn, count = self._stripe_fn, self.stripes
            for obj in candidates:
                by_stripe.setdefault(stripe_fn(obj) % count, []).append(obj)
            for index, objs in sorted(by_stripe.items()):
                stripe = self._table[index]
                with stripe.mutex:
                    for obj in objs:
                        grants = stripe.grants.get(obj)
                        if (
                            grants is None
                            or write_mode not in grants.get(txn, ())
                        ):
                            continue
                        for holder, modes in grants.items():
                            if holder is not txn and read_mode in modes:
                                victims.setdefault(holder, []).append(obj)
            return victims
        for stripe in self._table:
            # Unlocked pre-check: txn's own holdings only change from
            # its own (or its aborter's) thread, never concurrently
            # with a commit-time scan, and dict lookups are GIL-atomic.
            if txn not in stripe.held:
                continue
            with stripe.mutex:
                held = stripe.held.get(txn)
                if not held:
                    continue
                for obj in held:
                    grants = stripe.grants.get(obj, {})
                    if write_mode not in grants.get(txn, ()):
                        continue
                    for holder, modes in grants.items():
                        if holder is not txn and read_mode in modes:
                            victims.setdefault(holder, []).append(obj)
        return victims

    def can_grant(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        stripe = self._stripe_of(obj)
        with stripe.mutex:
            return self._can_grant_locked(stripe, txn, obj, mode)

    @staticmethod
    def _can_grant_locked(
        stripe: _Stripe, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Pure grant-rule probe; caller holds the stripe mutex."""
        grants = stripe.grants.get(obj)
        upgrading = False
        if grants:
            upgrading = txn in grants
            for holder, modes in grants.items():
                if holder is txn:
                    continue
                if any(not compatible(mode, held) for held in modes):
                    return False
        if not upgrading:
            for ahead in stripe.queues.get(obj, ()):
                if not ahead.is_waiting or ahead.txn is txn:
                    continue
                if not compatible(mode, ahead.mode):
                    return False
        return True

    # -- acquisition --------------------------------------------------------------------

    def _grant_effects_locked(
        self,
        stripe: _Stripe,
        txn: Transaction,
        obj: DataObject,
        mode: LockMode,
        enqueued_at: float | None = None,
    ) -> None:
        """Record a grant's side effects; caller holds the stripe
        mutex and has already verified the grant rules."""
        grants = stripe.grants.get(obj)
        if grants is None:
            grants = stripe.grants[obj] = {}
        own = grants.get(txn)
        if own is None:
            grants[txn] = {mode}
            held = stripe.held.get(txn)
            if held is None:
                stripe.held[txn] = {obj}
            else:
                held.add(obj)
        else:
            # Check upgrades against the modes held *before* this
            # grant (hence before the add — avoids copying the set).
            if any(is_upgrade(h, mode) for h in own):
                stripe.upgrades_n += 1
            own.add(mode)
        stripe.grants_n += 1
        if self.obs.enabled:
            waited = (
                self.obs.clock() - enqueued_at
                if enqueued_at is not None
                else 0.0
            )
            self.obs.lock_granted(
                txn.txn_id, obj, str(mode), waited=waited,
                queued=enqueued_at is not None,
            )
        self._record(txn, obj, mode)
        if self.audit:
            _check_audit_pairs(obj, grants)

    def _try_grant_locked(
        self,
        stripe: _Stripe,
        txn: Transaction,
        obj: DataObject,
        mode: LockMode,
        enqueued_at: float | None = None,
    ) -> bool:
        """Grant rules + effects without a request object; caller
        holds the stripe mutex."""
        if not self._can_grant_locked(stripe, txn, obj, mode):
            return False
        self._grant_effects_locked(stripe, txn, obj, mode, enqueued_at)
        return True

    def acquire(
        self,
        txn: Transaction,
        obj: DataObject,
        mode: LockMode,
        blocking: bool = False,
        timeout: float | None = None,
        on_block: Callable[[LockRequest], None] | None = None,
    ) -> LockRequest:
        stripe = self._stripe_of(obj)
        index = None
        request = LockRequest(txn, obj, mode)
        with stripe.mutex:
            if self._try_grant_locked(stripe, txn, obj, mode):
                request.resolve(RequestStatus.GRANTED)
                return request
            stripe.queues.setdefault(obj, []).append(request)
            pending = stripe.pending.get(txn)
            if pending is None:
                pending = stripe.pending[txn] = set()
            pending.add(request)
            index = self._index_of(obj)
            stripe.waits_n += 1
            if self.obs.enabled:
                request.enqueued_at = self.obs.clock()
                self.obs.lock_queued(
                    txn.txn_id, obj, str(mode),
                    depth=len(stripe.queues[obj]),
                )
        # Note which stripes hold waiting requests for this txn, so
        # release_all can cancel them without scanning every stripe.
        with self._pending_mutex:
            self._pending_stripes.setdefault(txn, set()).add(index)
        if on_block is not None:
            on_block(request)
        if blocking:
            status = request.wait(timeout)
            if status is RequestStatus.WAITING:
                self.cancel(request)
                if request.status is RequestStatus.CANCELLED:
                    with stripe.mutex:
                        stripe.denials_n += 1
                    if self.obs.enabled:
                        self.obs.lock_denied(
                            txn.txn_id, obj, str(mode), reason="timeout"
                        )
        return request

    def try_acquire(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> bool:
        """Non-queuing attempt — allocation-free on both outcomes.

        The seed builds a :class:`LockRequest` (with its
        ``threading.Event``) per probe; this path touches only the
        stripe's dicts, which is where the single-thread speedup of
        the scaling benchmark comes from.  The grant rules and effects
        are inlined (rather than delegated to the ``_locked`` helpers)
        because this is the hottest call in the system.
        """
        stripe = self._table[self._stripe_fn(obj) % self.stripes]
        with stripe.mutex:
            grants = stripe.grants.get(obj)
            own = grants.get(txn) if grants is not None else None
            if grants:
                for holder, modes in grants.items():
                    if holder is txn:
                        continue
                    for held in modes:
                        if not compatible(mode, held):
                            stripe.denials_n += 1
                            if self.obs.enabled:
                                self.obs.lock_denied(
                                    txn.txn_id, obj, str(mode),
                                    reason="busy",
                                )
                            return False
            if own is None:
                queue = stripe.queues.get(obj)
                if queue is not None:
                    for ahead in queue:
                        if not ahead.is_waiting or ahead.txn is txn:
                            continue
                        if not compatible(mode, ahead.mode):
                            stripe.denials_n += 1
                            if self.obs.enabled:
                                self.obs.lock_denied(
                                    txn.txn_id, obj, str(mode),
                                    reason="busy",
                                )
                            return False
                if grants is None:
                    stripe.grants[obj] = {txn: {mode}}
                else:
                    grants[txn] = {mode}
                held = stripe.held.get(txn)
                if held is None:
                    stripe.held[txn] = {obj}
                else:
                    held.add(obj)
            else:
                if any(is_upgrade(h, mode) for h in own):
                    stripe.upgrades_n += 1
                own.add(mode)
            stripe.grants_n += 1
            if self.obs.enabled:
                self.obs.lock_granted(
                    txn.txn_id, obj, str(mode), waited=0.0, queued=False
                )
            if mode in _READ_MODES:
                txn.record_read(obj)
                if self.history is not None:
                    self.history.read(txn.txn_id, obj)
            else:
                txn.record_write(obj)
                if self.history is not None:
                    self.history.write(txn.txn_id, obj)
            if self.audit:
                _check_audit_pairs(
                    obj, grants if grants is not None else stripe.grants[obj]
                )
            return True

    def try_acquire_held(
        self, txn: Transaction, obj: DataObject, mode: LockMode
    ) -> GrantOutcome:
        stripe = self._table[self._stripe_fn(obj) % self.stripes]
        grants = stripe.grants.get(obj)
        if grants is not None:
            own = grants.get(txn)
            # Sound without the mutex: only txn's own thread (or its
            # aborter, which cannot race a live call) grants or
            # releases txn's modes, and CPython dict/set reads are
            # atomic under the GIL.
            if own is not None and mode in own:
                return GrantOutcome.HELD
        if self.try_acquire(txn, obj, mode):
            return GrantOutcome.GRANTED
        return GrantOutcome.DENIED

    # -- release ---------------------------------------------------------------------------

    def release(
        self, txn: Transaction, obj: DataObject, mode: LockMode | None = None
    ) -> None:
        stripe = self._stripe_of(obj)
        with stripe.mutex:
            grants = stripe.grants.get(obj)
            if not grants or txn not in grants:
                return
            if mode is None:
                del grants[txn]
            else:
                grants[txn].discard(mode)
                if not grants[txn]:
                    del grants[txn]
            if txn not in grants:
                held = stripe.held.get(txn)
                if held is not None:
                    held.discard(obj)
                    if not held:
                        del stripe.held[txn]
            if not grants:
                del stripe.grants[obj]
            self._process_queue_locked(stripe, obj)

    def release_all(self, txn: Transaction) -> None:
        """Commit/abort epilogue in O(held + waiting + stripes).

        Every stripe is visited once and probed for the transaction in
        its held/pending indexes *under the stripe mutex*.  The
        indexes, not the transaction's read/write sets, are the
        authoritative record of what to release: a rule-(ii) force
        abort can land between a grant's bookkeeping and
        ``record_read``, leaving a granted object outside the read
        set, and a deadlock victim's waiting request can be granted by
        a concurrent release while this runs.  A stripe the
        transaction touched nothing in costs two dict probes; nothing
        else in the table is looked at — the seed's every-queue scan
        is gone.
        """
        if self._pending_stripes:
            with self._pending_mutex:
                self._pending_stripes.pop(txn, None)
        cancelled: list[LockRequest] = []
        for stripe in self._table:
            with stripe.mutex:
                held = stripe.held.pop(txn, None)
                pending = (
                    stripe.pending.pop(txn, None) if stripe.pending else None
                )
                if held is None and pending is None:
                    continue
                if pending is None and not stripe.queues:
                    # Nothing queued anywhere in this stripe: dropping
                    # the grants cannot wake anyone, so skip queue
                    # processing entirely (the common uncontended case).
                    if held:
                        stripe_grants = stripe.grants
                        for obj in held:
                            grants = stripe_grants.get(obj)
                            if grants is not None:
                                grants.pop(txn, None)
                                if not grants:
                                    del stripe_grants[obj]
                    continue
                affected: set[DataObject] = set()
                if held:
                    for obj in held:
                        grants = stripe.grants.get(obj)
                        if grants is not None:
                            grants.pop(txn, None)
                            if not grants:
                                del stripe.grants[obj]
                        affected.add(obj)
                if pending:
                    for request in pending:
                        queue = stripe.queues.get(request.obj)
                        if queue is not None and request in queue:
                            queue.remove(request)
                        if request.is_waiting:
                            request.resolve(RequestStatus.CANCELLED)
                            cancelled.append(request)
                        affected.add(request.obj)
                for obj in affected:
                    self._process_queue_locked(stripe, obj)
        if self.obs.enabled:
            for request in cancelled:
                self.obs.lock_cancelled(
                    txn.txn_id, request.obj, str(request.mode)
                )

    def cancel(self, request: LockRequest) -> None:
        stripe = self._stripe_of(request.obj)
        with stripe.mutex:
            queue = stripe.queues.get(request.obj)
            if queue is not None and request in queue:
                queue.remove(request)
            pending = stripe.pending.get(request.txn)
            if pending is not None:
                pending.discard(request)
                if not pending:
                    del stripe.pending[request.txn]
            if request.is_waiting:
                request.resolve(RequestStatus.CANCELLED)
                if self.obs.enabled:
                    self.obs.lock_cancelled(
                        request.txn.txn_id, request.obj, str(request.mode)
                    )
            self._process_queue_locked(stripe, request.obj)

    def _cancel_requests_of(self, txn: Transaction) -> None:
        """Cancel every waiting request of ``txn`` via the pending
        index — O(waiting), not a scan of every queue."""
        with self._pending_mutex:
            waited_in = self._pending_stripes.pop(txn, None)
        if not waited_in:
            return
        cancelled: list[LockRequest] = []
        for index in sorted(waited_in):
            stripe = self._table[index]
            with stripe.mutex:
                pending = stripe.pending.pop(txn, None)
                if not pending:
                    continue
                affected: set[DataObject] = set()
                for request in pending:
                    queue = stripe.queues.get(request.obj)
                    if queue is not None and request in queue:
                        queue.remove(request)
                    if request.is_waiting:
                        request.resolve(RequestStatus.CANCELLED)
                        cancelled.append(request)
                    affected.add(request.obj)
                for obj in affected:
                    self._process_queue_locked(stripe, obj)
        if self.obs.enabled:
            for request in cancelled:
                self.obs.lock_cancelled(
                    txn.txn_id, request.obj, str(request.mode)
                )

    def _process_queue_locked(self, stripe: _Stripe, obj: DataObject) -> None:
        """Grant queued requests FIFO while compatible; caller holds
        the stripe mutex.  Empty queues are pruned (the seed leaks
        them)."""
        stripe.queue_visits += 1
        queue = stripe.queues.get(obj)
        if not queue:
            if queue is not None:
                del stripe.queues[obj]
            return
        still_waiting: list[LockRequest] = []
        for request in queue:
            if not request.is_waiting:
                continue
            # Same no-barging trick as the seed: expose only the
            # requests ahead of this one while probing.
            stripe.queues[obj] = still_waiting
            if self._can_grant_locked(
                stripe, request.txn, obj, request.mode
            ):
                self._grant_effects_locked(
                    stripe, request.txn, obj, request.mode,
                    request.enqueued_at,
                )
                pending = stripe.pending.get(request.txn)
                if pending is not None:
                    pending.discard(request)
                    if not pending:
                        del stripe.pending[request.txn]
                request.resolve(RequestStatus.GRANTED)
            else:
                still_waiting.append(request)
        if still_waiting:
            stripe.queues[obj] = still_waiting
        else:
            stripe.queues.pop(obj, None)

    # -- diagnostics ----------------------------------------------------------------------------

    def grant_table(self) -> dict[DataObject, dict[str, tuple[str, ...]]]:
        table: dict[DataObject, dict[str, tuple[str, ...]]] = {}
        with self._locked_all():
            for stripe in self._table:
                for obj, grants in stripe.grants.items():
                    if grants:
                        table[obj] = {
                            txn.txn_id: tuple(
                                str(m) for m in sorted(modes, key=str)
                            )
                            for txn, modes in grants.items()
                        }
        return table

    def stats_snapshot(self) -> dict[str, int]:
        with self._locked_all():
            return {
                "grants": sum(s.grants_n for s in self._table),
                "waits": sum(s.waits_n for s in self._table),
                "denials": sum(s.denials_n for s in self._table),
                "upgrades": sum(s.upgrades_n for s in self._table),
            }

    @property
    def stats(self) -> dict[str, int]:
        """Deprecated aggregate view; use :meth:`stats_snapshot`.

        Returns a *fresh* dict on every read (mutating it has no
        effect), kept so seed-era callers reading
        ``manager.stats["grants"]`` keep working.
        """
        return self.stats_snapshot()

    def stripe_stats(self) -> list[dict[str, int]]:
        """Per-stripe counter breakdown (load-balance diagnostics)."""
        with self._locked_all():
            return [
                {
                    "grants": s.grants_n,
                    "waits": s.waits_n,
                    "denials": s.denials_n,
                    "upgrades": s.upgrades_n,
                    "queue_visits": s.queue_visits,
                }
                for s in self._table
            ]

    @property
    def queue_visits(self) -> int:
        """Total queue-processing passes across all stripes."""
        return sum(s.queue_visits for s in self._table)

    def audit_now(self) -> None:
        with self._locked_all():
            for stripe in self._table:
                for obj, grants in stripe.grants.items():
                    _check_audit_pairs(obj, grants)
