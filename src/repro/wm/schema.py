"""Relation schemas and the system catalog.

A *database* production system (the paper's setting, in contrast to
main-memory OPS5) stores working memory in relations.  This module
provides the schema layer: relation declarations with typed attributes,
a system catalog, and validation of WMEs against their declared schema.

The catalog also materializes the paper's observation at the end of
Section 4.3: a relation-level lock "is equivalent to locking the
appropriate tuple in the 'SYSTEM-CATALOG' relation".  The catalog hands
out exactly that lockable key via :meth:`Catalog.catalog_lock_key`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import DuplicateSchemaError, SchemaError
from repro.wm.element import Scalar, WME

#: Attribute type names accepted in schema declarations.
ATTRIBUTE_TYPES = ("symbol", "int", "float", "number", "bool", "any")

_PYTHON_TYPES: dict[str, tuple[type, ...]] = {
    "symbol": (str,),
    "int": (int,),
    "float": (float, int),
    "number": (int, float),
    "bool": (bool,),
}


@dataclass(frozen=True)
class AttributeDef:
    """One attribute of a relation schema.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"status"``.
    type_name:
        One of :data:`ATTRIBUTE_TYPES`.  ``"any"`` disables checking.
    required:
        When true, every WME of the relation must carry the attribute.
    """

    name: str
    type_name: str = "any"
    required: bool = False

    def __post_init__(self) -> None:
        if self.type_name not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"attribute {self.name!r}: unknown type {self.type_name!r}; "
                f"expected one of {ATTRIBUTE_TYPES}"
            )

    def accepts(self, value: Scalar) -> bool:
        """True when ``value`` is permissible for this attribute."""
        if value is None or self.type_name == "any":
            return True
        expected = _PYTHON_TYPES[self.type_name]
        if isinstance(value, bool) and bool not in expected:
            # bool is an int subclass; reject it for int/number columns
            # so schemas stay meaningful.
            return False
        return isinstance(value, expected)


@dataclass(frozen=True)
class RelationSchema:
    """Schema for one working-memory relation (OPS5: *literalize*).

    Parameters
    ----------
    name:
        Relation (class) name.
    attributes:
        Attribute definitions, keyed by name.
    key:
        Optional name of the primary-key attribute; used for tuple-level
        lock granularity and for ``modify`` identity.
    """

    name: str
    attributes: tuple[AttributeDef, ...] = ()
    key: str | None = None

    def __post_init__(self) -> None:
        names = [a.name for a in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(
                f"relation {self.name!r}: duplicate attribute names in {names}"
            )
        if self.key is not None and self.key not in names:
            raise SchemaError(
                f"relation {self.name!r}: key {self.key!r} is not an attribute"
            )

    @staticmethod
    def define(
        name: str,
        attributes: Iterable[str | AttributeDef] | Mapping[str, str] = (),
        key: str | None = None,
    ) -> "RelationSchema":
        """Convenience constructor.

        ``attributes`` may be a list of attribute names (all typed
        ``any``), a list of :class:`AttributeDef`, or a mapping of
        name to type-name:

        >>> RelationSchema.define("order", {"id": "int", "status": "symbol"},
        ...                       key="id").key
        'id'
        """
        defs: list[AttributeDef] = []
        if isinstance(attributes, Mapping):
            defs = [AttributeDef(n, t) for n, t in attributes.items()]
        else:
            for item in attributes:
                if isinstance(item, AttributeDef):
                    defs.append(item)
                else:
                    defs.append(AttributeDef(item))
        return RelationSchema(name, tuple(defs), key)

    def attribute(self, name: str) -> AttributeDef | None:
        """Return the definition for ``name``, or ``None`` if undeclared."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def validate(self, wme: WME) -> None:
        """Raise :class:`SchemaError` when ``wme`` violates this schema."""
        if wme.relation != self.name:
            raise SchemaError(
                f"WME relation {wme.relation!r} validated against schema "
                f"{self.name!r}"
            )
        declared = {a.name for a in self.attributes}
        for attr_name, value in wme.items:
            if self.attributes and attr_name not in declared:
                raise SchemaError(
                    f"relation {self.name!r} has no attribute {attr_name!r}"
                )
            definition = self.attribute(attr_name)
            if definition is not None and not definition.accepts(value):
                raise SchemaError(
                    f"relation {self.name!r}.{attr_name}: value {value!r} "
                    f"does not satisfy type {definition.type_name!r}"
                )
        for attr in self.attributes:
            if attr.required and attr.name not in wme:
                raise SchemaError(
                    f"relation {self.name!r}: required attribute "
                    f"{attr.name!r} missing from {wme}"
                )


class Catalog:
    """The system catalog: the set of declared relation schemas.

    The catalog is itself modeled as a relation (``SYSTEM-CATALOG``)
    whose tuples are the schemas, so relation-level lock escalation can
    target a concrete lockable object (Section 4.3, last paragraph).
    """

    #: Name of the distinguished catalog relation used for escalation.
    SYSTEM_RELATION = "SYSTEM-CATALOG"

    def __init__(self, schemas: Iterable[RelationSchema] = ()) -> None:
        self._schemas: dict[str, RelationSchema] = {}
        for schema in schemas:
            self.declare(schema)

    def declare(self, schema: RelationSchema) -> RelationSchema:
        """Register ``schema``; re-declaring identically is a no-op.

        Raises
        ------
        DuplicateSchemaError
            If a different schema with the same name already exists.
        """
        existing = self._schemas.get(schema.name)
        if existing is not None and existing != schema:
            raise DuplicateSchemaError(
                f"relation {schema.name!r} already declared with a "
                f"different schema"
            )
        self._schemas[schema.name] = schema
        return schema

    def get(self, name: str) -> RelationSchema | None:
        """Return the schema for ``name``, or ``None`` if undeclared."""
        return self._schemas.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._schemas

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._schemas.values())

    def __len__(self) -> int:
        return len(self._schemas)

    def validate(self, wme: WME) -> None:
        """Validate ``wme`` against its schema, if one is declared.

        Undeclared relations are allowed (schema-on-write is opt-in),
        matching OPS5 where ``literalize`` is advisory.
        """
        schema = self._schemas.get(wme.relation)
        if schema is not None:
            schema.validate(wme)

    @staticmethod
    def catalog_lock_key(relation: str) -> tuple[str, str]:
        """The lockable object representing the whole ``relation``.

        A relation-level lock (e.g. for a negative condition that
        depends on the *absence* of tuples) is "equivalent to locking
        the appropriate tuple in the 'SYSTEM-CATALOG' relation".
        """
        return (Catalog.SYSTEM_RELATION, relation)
