"""Working-memory elements (WMEs).

Section 2 of the paper: *"Items in the working memory are called
working memory elements (WMEs)."*  Following OPS5, a WME is a typed
record: a relation (class) name plus attribute/value pairs.  WMEs are
immutable; a ``modify`` is represented at the store level as a
remove-then-make that preserves identity history through timetags, the
same device OPS5 uses for recency-based conflict resolution (LEX/MEA).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

# Values allowed inside a WME.  Keeping the domain small keeps equality,
# hashing and the DSL printer simple; it matches OPS5's symbol/number
# value domain.
Scalar = str | int | float | bool | None

Timetag = int

_timetag_counter = itertools.count(1)


def next_timetag() -> Timetag:
    """Return a fresh, process-unique, monotonically increasing timetag.

    Timetags order WMEs by creation recency.  The LEX and MEA conflict
    resolution strategies (Section 3: "heuristics that strongly favor
    some sequences over others") compare instantiations by the timetags
    of the WMEs they matched.
    """
    return next(_timetag_counter)


def ensure_timetag_floor(minimum: Timetag) -> None:
    """Advance the timetag counter past ``minimum``.

    Called when loading persisted working memory so that freshly
    created elements never collide with (or sort below) reloaded ones.
    """
    global _timetag_counter
    current = next(_timetag_counter)
    start = max(current, minimum + 1)
    _timetag_counter = itertools.count(start)


@dataclass(frozen=True)
class WME:
    """An immutable working-memory element.

    Parameters
    ----------
    relation:
        The class (relation) name, e.g. ``"order"``.
    values:
        Attribute/value mapping.  Stored as a sorted tuple of pairs so
        the element is hashable and its identity is value-based.
    timetag:
        Creation timetag.  Two WMEs with equal relation and values but
        different timetags are *different* elements; working memory is
        a bag keyed by timetag, exactly as in OPS5.
    """

    relation: str
    items: tuple[tuple[str, Scalar], ...]
    timetag: Timetag = field(default=0)

    @staticmethod
    def make(
        relation: str,
        values: Mapping[str, Scalar] | None = None,
        timetag: Timetag | None = None,
        **kwargs: Scalar,
    ) -> "WME":
        """Build a WME from a mapping and/or keyword attribute values.

        >>> w = WME.make("order", {"id": 1}, status="open")
        >>> w["status"]
        'open'
        """
        merged: dict[str, Scalar] = dict(values or {})
        merged.update(kwargs)
        tag = next_timetag() if timetag is None else timetag
        return WME(relation, tuple(sorted(merged.items())), tag)

    # -- mapping-style access ------------------------------------------------

    def __getitem__(self, attribute: str) -> Scalar:
        for name, value in self.items:
            if name == attribute:
                return value
        raise KeyError(attribute)

    def get(self, attribute: str, default: Scalar = None) -> Scalar:
        for name, value in self.items:
            if name == attribute:
                return value
        return default

    def __contains__(self, attribute: object) -> bool:
        return any(name == attribute for name, _ in self.items)

    def attributes(self) -> Iterator[str]:
        """Iterate over the attribute names, in sorted order."""
        return (name for name, _ in self.items)

    def as_dict(self) -> dict[str, Scalar]:
        """Return the attribute/value pairs as a fresh ``dict``."""
        return dict(self.items)

    def mapping(self) -> dict[str, Scalar]:
        """The attribute/value pairs as a cached ``dict``.

        The compiled condition closures look attributes up by hash
        instead of scanning ``items``; the dict is built once per
        element and shared, so callers must not mutate it.  (The
        first-call race under threads is benign: both sides build the
        same dict.)
        """
        try:
            return self._mapping
        except AttributeError:
            mapping = dict(self.items)
            object.__setattr__(self, "_mapping", mapping)
            return mapping

    def __reduce__(self):
        # The cached mapping is derived state; pickle only the fields.
        return (WME, (self.relation, self.items, self.timetag))

    # -- derivation ----------------------------------------------------------

    def replaced(self, changes: Mapping[str, Scalar]) -> "WME":
        """Return a new WME with ``changes`` applied and a fresh timetag.

        This is the value-level half of OPS5's ``modify``: the store
        pairs it with a removal of the old element.
        """
        merged = self.as_dict()
        merged.update(changes)
        return WME.make(self.relation, merged)

    def same_value(self, other: "WME") -> bool:
        """True when relation and attribute values match, ignoring timetags."""
        return self.relation == other.relation and self.items == other.items

    # -- presentation ---------------------------------------------------------

    def __str__(self) -> str:
        inner = " ".join(f"^{name} {value!r}" for name, value in self.items)
        return f"({self.relation} {inner}) @{self.timetag}"

    def identity(self) -> tuple[str, tuple[tuple[str, Scalar], ...]]:
        """The value identity of the element (relation + values, no timetag)."""
        return (self.relation, self.items)


def data_object_key(wme: WME) -> tuple[str, Any]:
    """The lockable *data object* a WME belongs to.

    Section 4 locks "data objects" in working memory.  We lock at the
    granularity of the WME's value identity when it carries a ``key``
    or ``id`` attribute (tuple-level locking) and otherwise at its full
    value identity.  Relation-level escalation is handled separately by
    :mod:`repro.locks.escalation`.
    """
    for candidate in ("key", "id"):
        if candidate in wme:
            return (wme.relation, wme[candidate])
    return (wme.relation, wme.items)
