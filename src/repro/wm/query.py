"""A small relational query layer over working memory.

Section 2 of the paper notes that in a *database* production system
"the execution phase will be a full-fledged database query and is
likely to be time consuming."  This module gives working memory that
database face: a composable select/project/join/aggregate pipeline,
index-accelerated where possible, used by RHS helpers, examples and
benchmarks.

Queries are immutable builders; nothing executes until a terminal
method (:meth:`Query.rows`, :meth:`Query.count`, ...) runs, and each
execution sees the live store.

>>> from repro.wm import WorkingMemory
>>> wm = WorkingMemory()
>>> _ = wm.make("order", id=1, region="eu", total=100)
>>> _ = wm.make("order", id=2, region="us", total=250)
>>> Query.from_(wm, "order").where(region="us").values("total")
[250]
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import WorkingMemoryError
from repro.wm.element import Scalar, WME
from repro.wm.memory import WorkingMemory

#: A query result row.
Row = dict[str, Scalar]

#: Aggregate functions usable in :meth:`Query.aggregate`.
_AGGREGATES: dict[str, Callable[[list], Scalar]] = {
    "count": len,
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "avg": lambda values: sum(values) / len(values),
}


@dataclass(frozen=True)
class _Join:
    relation: str
    left_attr: str
    right_attr: str
    prefix: str


@dataclass(frozen=True)
class Query:
    """An immutable, composable query over one (joined) relation chain."""

    memory: WorkingMemory
    relation: str
    equalities: tuple[tuple[str, Scalar], ...] = ()
    predicates: tuple[Callable[[Row], bool], ...] = ()
    joins: tuple[_Join, ...] = ()
    projection: tuple[str, ...] = ()
    ordering: tuple[str, ...] = ()
    descending: bool = False
    limit_count: int | None = None

    # -- construction ---------------------------------------------------------------

    @staticmethod
    def from_(memory: WorkingMemory, relation: str) -> "Query":
        """Start a query over ``relation``."""
        return Query(memory, relation)

    def where(self, **equalities: Scalar) -> "Query":
        """Add equality selections (index-accelerated on the base)."""
        return replace(
            self,
            equalities=self.equalities + tuple(sorted(equalities.items())),
        )

    def filter(self, predicate: Callable[[Row], bool]) -> "Query":
        """Add an arbitrary row predicate (applied after joins)."""
        return replace(self, predicates=self.predicates + (predicate,))

    def join(
        self,
        relation: str,
        left_attr: str,
        right_attr: str | None = None,
        prefix: str | None = None,
    ) -> "Query":
        """Equi-join with ``relation`` on ``left_attr == right_attr``.

        Joined attributes are merged into the row under
        ``{prefix}{attr}``; the prefix defaults to ``"{relation}."``
        so collisions are never silent.
        """
        return replace(
            self,
            joins=self.joins
            + (
                _Join(
                    relation,
                    left_attr,
                    right_attr if right_attr is not None else left_attr,
                    prefix if prefix is not None else f"{relation}.",
                ),
            ),
        )

    def project(self, *attributes: str) -> "Query":
        """Keep only the named attributes in result rows."""
        return replace(self, projection=tuple(attributes))

    def order_by(self, *attributes: str, descending: bool = False) -> "Query":
        """Sort rows by the named attributes."""
        return replace(
            self, ordering=tuple(attributes), descending=descending
        )

    def limit(self, count: int) -> "Query":
        """Keep at most ``count`` rows (after ordering)."""
        if count < 0:
            raise WorkingMemoryError(f"negative limit {count}")
        return replace(self, limit_count=count)

    # -- execution ------------------------------------------------------------------

    def _base_rows(self) -> Iterator[Row]:
        for wme in self.memory.select(self.relation, self.equalities):
            yield wme.as_dict()

    def _joined_rows(self) -> Iterator[Row]:
        rows: Iterable[Row] = self._base_rows()
        for join in self.joins:
            # Hash join: build on the (smaller) joined relation.
            build: dict[Scalar, list[WME]] = {}
            for wme in self.memory.elements(join.relation):
                build.setdefault(wme.get(join.right_attr), []).append(wme)
            probed: list[Row] = []
            for row in rows:
                key = row.get(join.left_attr)
                for match in build.get(key, []):
                    merged = dict(row)
                    for name, value in match.items:
                        merged[f"{join.prefix}{name}"] = value
                    probed.append(merged)
            rows = probed
        return iter(rows)

    def _execute(self) -> list[Row]:
        rows = [
            row
            for row in self._joined_rows()
            if all(predicate(row) for predicate in self.predicates)
        ]
        if self.ordering:
            rows.sort(
                key=lambda row: tuple(
                    _sort_key(row.get(attr)) for attr in self.ordering
                ),
                reverse=self.descending,
            )
        if self.limit_count is not None:
            rows = rows[: self.limit_count]
        if self.projection:
            rows = [
                {attr: row.get(attr) for attr in self.projection}
                for row in rows
            ]
        return rows

    # -- terminal operations -------------------------------------------------------------

    def rows(self) -> list[Row]:
        """Execute and return result rows as dicts."""
        return self._execute()

    def values(self, attribute: str) -> list[Scalar]:
        """Execute and return one attribute's values."""
        return [row.get(attribute) for row in self._execute()]

    def first(self) -> Row | None:
        """The first result row, or ``None``."""
        rows = self.limit(1)._execute() if self.limit_count is None else self._execute()
        return rows[0] if rows else None

    def count(self) -> int:
        """Number of result rows."""
        return len(self._execute())

    def exists(self) -> bool:
        """True when at least one row matches."""
        return self.first() is not None

    def aggregate(self, **specs: tuple[str, str]) -> Row:
        """Whole-result aggregates.

        Each keyword maps an output name to ``(function, attribute)``
        with function one of count/sum/min/max/avg:

        >>> # Query.aggregate(total=("sum", "qty"), n=("count", "id"))
        """
        rows = self._execute()
        out: Row = {}
        for name, (function, attribute) in specs.items():
            if function not in _AGGREGATES:
                raise WorkingMemoryError(
                    f"unknown aggregate {function!r}; "
                    f"expected one of {sorted(_AGGREGATES)}"
                )
            values = [
                row[attribute]
                for row in rows
                if row.get(attribute) is not None
            ]
            if not values and function not in ("count", "sum"):
                out[name] = None
            else:
                out[name] = _AGGREGATES[function](values)
        return out

    def group_by(
        self, attribute: str, **specs: tuple[str, str]
    ) -> dict[Scalar, Row]:
        """Grouped aggregates, keyed by the grouping attribute's value."""
        groups: dict[Scalar, list[Row]] = {}
        for row in self._execute():
            groups.setdefault(row.get(attribute), []).append(row)
        out: dict[Scalar, Row] = {}
        for key, members in groups.items():
            aggregated: Row = {}
            for name, (function, attr) in specs.items():
                if function not in _AGGREGATES:
                    raise WorkingMemoryError(
                        f"unknown aggregate {function!r}"
                    )
                values = [
                    row[attr] for row in members if row.get(attr) is not None
                ]
                if not values and function not in ("count", "sum"):
                    aggregated[name] = None
                else:
                    aggregated[name] = _AGGREGATES[function](values)
            out[key] = aggregated
        return out


def _sort_key(value: Scalar) -> tuple:
    """Total order over mixed scalar types (None < bool < num < str)."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, value)
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))
