"""The working-memory store.

:class:`WorkingMemory` holds the live set of WMEs and implements the
three RHS operations of the paper's model (Section 2): *create*,
*modify* and *delete* ("which respectively add to, modify, and remove
items from the database").

Change propagation is delta-based: every mutation produces a
:class:`WMDelta` that is pushed to registered listeners.  The Rete and
TREAT matchers subscribe to these deltas for incremental matching; the
undo log subscribes to support transactional abort.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import UnknownElementError
from repro.wm.element import Scalar, Timetag, WME
from repro.wm.index import AttributeIndex
from repro.wm.schema import Catalog

#: Signature of a working-memory change listener.
DeltaListener = Callable[["WMDelta"], None]


@dataclass(frozen=True)
class WMDelta:
    """One atomic change to working memory.

    ``kind`` is ``"add"`` or ``"remove"``.  A ``modify`` is published
    as a remove of the old element followed by an add of the new one,
    the standard OPS5/Rete decomposition.
    """

    kind: str
    wme: WME

    def inverted(self) -> "WMDelta":
        """The delta that undoes this one."""
        return WMDelta("remove" if self.kind == "add" else "add", self.wme)


class WorkingMemory:
    """The mutable store of working-memory elements.

    Parameters
    ----------
    catalog:
        Optional system catalog; when provided, every inserted WME is
        validated against its declared schema.
    thread_safe:
        When true, mutations take an internal lock.  The real-threads
        parallel engine (:mod:`repro.engine.threaded`) enables this;
        the deterministic simulator does not need it.
    """

    def __init__(
        self,
        catalog: Catalog | None = None,
        thread_safe: bool = False,
    ) -> None:
        self.catalog = catalog if catalog is not None else Catalog()
        self._elements: dict[Timetag, WME] = {}
        self._index = AttributeIndex()
        self._listeners: list[DeltaListener] = []
        self._mutex = threading.RLock() if thread_safe else None

    # -- listeners ------------------------------------------------------------

    def subscribe(self, listener: DeltaListener) -> None:
        """Register ``listener`` to be called after each delta."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: DeltaListener) -> None:
        """Remove a previously registered listener."""
        self._listeners.remove(listener)

    def _publish(self, delta: WMDelta) -> None:
        for listener in self._listeners:
            listener(delta)

    # -- mutation -------------------------------------------------------------

    def add(self, wme: WME) -> WME:
        """Insert ``wme``; validates against the catalog and indexes it."""
        with self._maybe_locked():
            self.catalog.validate(wme)
            if wme.timetag in self._elements:
                raise UnknownElementError(
                    f"timetag {wme.timetag} already present"
                )
            self._elements[wme.timetag] = wme
            self._index.add(wme)
            self._publish(WMDelta("add", wme))
            return wme

    def make(
        self,
        relation: str,
        values: Mapping[str, Scalar] | None = None,
        **kwargs: Scalar,
    ) -> WME:
        """Create and insert a fresh WME (the RHS ``create`` operation)."""
        return self.add(WME.make(relation, values, **kwargs))

    def remove(self, target: WME | Timetag) -> WME:
        """Remove an element (the RHS ``delete`` operation).

        Accepts either a WME or its timetag; raises
        :class:`UnknownElementError` when absent.
        """
        with self._maybe_locked():
            timetag = target.timetag if isinstance(target, WME) else target
            wme = self._elements.pop(timetag, None)
            if wme is None:
                raise UnknownElementError(f"no element with timetag {timetag}")
            self._index.remove(wme)
            self._publish(WMDelta("remove", wme))
            return wme

    def modify(
        self,
        target: WME | Timetag,
        changes: Mapping[str, Scalar],
    ) -> WME:
        """Replace attribute values of an element (the RHS ``modify``).

        Implemented, as in OPS5, as remove-old + add-new: the new
        element gets a fresh timetag so recency ordering observes the
        modification.
        """
        with self._maybe_locked():
            timetag = target.timetag if isinstance(target, WME) else target
            old = self._elements.get(timetag)
            if old is None:
                raise UnknownElementError(f"no element with timetag {timetag}")
            new = old.replaced(changes)
            self.remove(old)
            self.add(new)
            return new

    def apply(self, delta: WMDelta) -> None:
        """Apply a raw delta; used by the undo log to roll back."""
        if delta.kind == "add":
            self.add(delta.wme)
        else:
            self.remove(delta.wme)

    def clear(self) -> None:
        """Remove every element, publishing a delta per removal."""
        for timetag in list(self._elements):
            self.remove(timetag)

    # -- queries --------------------------------------------------------------

    def get(self, timetag: Timetag) -> WME | None:
        """Return the live element with ``timetag``, or ``None``."""
        return self._elements.get(timetag)

    def __contains__(self, target: object) -> bool:
        if isinstance(target, WME):
            return target.timetag in self._elements
        return target in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[WME]:
        return iter(list(self._elements.values()))

    def elements(self, relation: str | None = None) -> list[WME]:
        """All live elements, optionally restricted to one relation."""
        if relation is None:
            return list(self._elements.values())
        return [
            self._elements[t]
            for t in sorted(self._index.relation(relation))
            if t in self._elements
        ]

    def select(
        self,
        relation: str,
        equalities: Iterable[tuple[str, Scalar]] = (),
    ) -> list[WME]:
        """Index-backed conjunctive selection over one relation.

        >>> wm = WorkingMemory()
        >>> _ = wm.make("order", id=1, status="open")
        >>> _ = wm.make("order", id=2, status="closed")
        >>> [w["id"] for w in wm.select("order", [("status", "open")])]
        [1]
        """
        tags = self._index.lookup(relation, equalities)
        return [self._elements[t] for t in sorted(tags) if t in self._elements]

    def count(self, relation: str) -> int:
        """Number of live elements of ``relation``."""
        return self._index.cardinality(relation)

    def value_identity_set(self) -> frozenset[tuple]:
        """The set of value identities of live elements (timetag-free).

        Two working memories with equal value-identity sets are
        equivalent database states in the sense of Section 3's state
        space — this is the equality the semantic-consistency checker
        uses.
        """
        return frozenset(w.identity() for w in self._elements.values())

    # -- locking helper ---------------------------------------------------------

    def locked(self):
        """Context manager holding the store's mutation lock.

        A no-op context for non-thread-safe memories.  External
        components that must observe an atomic (state, event-order)
        pair — e.g. the durable store capturing a checkpoint — take
        this lock *first* and their own lock second, mirroring the
        mutation path (which holds this lock across delta publication),
        so the two lock orders can never deadlock.
        """
        return self._maybe_locked()

    def _maybe_locked(self):
        if self._mutex is not None:
            return self._mutex
        return _NullContext()


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None
