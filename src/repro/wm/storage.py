"""Durable working memory: write-ahead log + checkpoints.

The paper's opening motivation (Section 1): "expert system users are
asking for knowledge sharing and knowledge *persistence*, features
found currently in databases."  This module supplies the persistence
half: a :class:`DurableStore` journals every working-memory delta to an
append-only JSON-lines log and periodically checkpoints the full
contents, so a database production system survives restarts and
recovers by *checkpoint + log replay* — the classical recipe.

Format
------
``checkpoint.jsonl`` — one serialized WME per line, plus a header line
carrying the checkpoint's log sequence number (LSN).
``wal.jsonl`` — one ``{"lsn": n, "kind": "add"|"remove", "wme": ...}``
record per delta since the checkpoint.

Both files are human-readable; recovery tolerates a torn final log line
(partial write during a crash), discarding it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO

from repro.errors import WorkingMemoryError
from repro.wm.element import WME, ensure_timetag_floor
from repro.wm.memory import WMDelta, WorkingMemory
from repro.wm.schema import Catalog

_CHECKPOINT = "checkpoint.jsonl"
_WAL = "wal.jsonl"


def serialize_wme(wme: WME) -> dict:
    """JSON-safe representation of a WME (timetag-preserving)."""
    return {
        "relation": wme.relation,
        "items": [[name, value] for name, value in wme.items],
        "timetag": wme.timetag,
    }


def deserialize_wme(payload: dict) -> WME:
    """Rebuild a WME from :func:`serialize_wme` output."""
    try:
        return WME(
            payload["relation"],
            tuple((name, value) for name, value in payload["items"]),
            payload["timetag"],
        )
    except (KeyError, TypeError) as exc:
        raise WorkingMemoryError(f"corrupt WME record: {payload!r}") from exc


class DurableStore:
    """Attaches persistence to a :class:`WorkingMemory`.

    Usage::

        wm = WorkingMemory()
        store = DurableStore(wm, "plant-state")   # journals from now on
        ... mutate wm ...
        store.checkpoint()                         # compact the log
        store.close()

        wm2, store2 = DurableStore.open("plant-state")   # recover
    """

    def __init__(
        self,
        memory: WorkingMemory,
        directory: str | Path,
        fault_injector=None,
    ) -> None:
        self.memory = memory
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lsn = 0
        self._wal: IO[str] | None = None
        #: Optional :class:`repro.fault.FaultInjector`; its
        #: ``storage_fail`` faults raise :class:`StorageFailure` before
        #: the WAL record is written, simulating a failed device write.
        self.fault = fault_injector
        self._open_wal()
        self.memory.subscribe(self._on_delta)
        self._attached = True

    # -- journalling -------------------------------------------------------------

    @property
    def lsn(self) -> int:
        """The last log sequence number written."""
        return self._lsn

    def _open_wal(self) -> None:
        self._wal = open(self.directory / _WAL, "a", encoding="utf-8")

    def _on_delta(self, delta: WMDelta) -> None:
        if self._wal is None:
            raise WorkingMemoryError("durable store is closed")
        if self.fault is not None:
            # Fails *before* the LSN advances or the record is
            # written: the WAL stays well-formed and recovery sees a
            # store that simply never journalled this delta.
            self.fault.storage_fault(site=f"wal:{delta.kind}")
        self._lsn += 1
        record = {
            "lsn": self._lsn,
            "kind": delta.kind,
            "wme": serialize_wme(delta.wme),
        }
        self._wal.write(json.dumps(record) + "\n")
        self._wal.flush()
        os.fsync(self._wal.fileno())

    # -- checkpointing -------------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a full snapshot and truncate the log.

        Returns the number of elements checkpointed.  Atomicity:
        the snapshot is written to a temp file and renamed over the old
        checkpoint before the log is truncated, so a crash at any point
        leaves a recoverable (checkpoint, log) pair.
        """
        elements = sorted(self.memory, key=lambda w: w.timetag)
        temp_path = self.directory / (_CHECKPOINT + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps({"checkpoint_lsn": self._lsn}) + "\n")
            for wme in elements:
                handle.write(json.dumps(serialize_wme(wme)) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.directory / _CHECKPOINT)
        # Truncate the WAL: records up to _lsn are now in the snapshot.
        if self._wal is not None:
            self._wal.close()
        with open(self.directory / _WAL, "w", encoding="utf-8") as handle:
            handle.flush()
        self._open_wal()
        return len(elements)

    def close(self) -> None:
        """Stop journalling and close the log file."""
        if self._attached:
            self.memory.unsubscribe(self._on_delta)
            self._attached = False
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- recovery --------------------------------------------------------------------

    @staticmethod
    def open(
        directory: str | Path,
        catalog: Catalog | None = None,
        thread_safe: bool = False,
    ) -> tuple[WorkingMemory, "DurableStore"]:
        """Recover a working memory from ``directory``.

        Loads the checkpoint (if any), replays the WAL (skipping
        records already covered by the checkpoint and tolerating a torn
        final line), advances the global timetag counter past every
        reloaded element, and returns a fresh journalling store.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        memory = WorkingMemory(catalog=catalog, thread_safe=thread_safe)
        checkpoint_lsn = 0
        max_timetag = 0

        checkpoint_path = directory / _CHECKPOINT
        if checkpoint_path.exists():
            with open(checkpoint_path, encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                checkpoint_lsn = int(header.get("checkpoint_lsn", 0))
                for line in handle:
                    wme = deserialize_wme(json.loads(line))
                    memory.add(wme)
                    max_timetag = max(max_timetag, wme.timetag)

        wal_path = directory / _WAL
        replayed_lsn = checkpoint_lsn
        if wal_path.exists():
            with open(wal_path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn final record from a crash
                    if record["lsn"] <= checkpoint_lsn:
                        continue
                    wme = deserialize_wme(record["wme"])
                    if record["kind"] == "add":
                        memory.add(wme)
                    else:
                        memory.remove(wme.timetag)
                    max_timetag = max(max_timetag, wme.timetag)
                    replayed_lsn = record["lsn"]

        ensure_timetag_floor(max_timetag)
        store = DurableStore.__new__(DurableStore)
        store.memory = memory
        store.directory = directory
        store._lsn = replayed_lsn
        store._wal = None
        store.fault = None
        store._open_wal()
        memory.subscribe(store._on_delta)
        store._attached = True
        return memory, store
