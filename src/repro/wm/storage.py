"""Durable working memory: a segmented WAL + checkpoint storage subsystem.

The paper's opening motivation (Section 1): "expert system users are
asking for knowledge sharing and knowledge *persistence*, features
found currently in databases."  This module supplies the persistence
half as a small storage engine: a :class:`DurableStore` journals every
working-memory delta to an append-only, *segmented* write-ahead log,
periodically checkpoints the full contents, compacts sealed segments,
and recovers by *checkpoint + log replay* — the classical recipe,
hardened so that a crash at any window lands on exactly one admissible
state (the journalled prefix).

On-disk layout
--------------
``checkpoint.jsonl``
    One serialized WME per line after a header line carrying the
    checkpoint's log sequence number (LSN).  Replaced atomically
    (tmp + rename + directory fsync).
``wal-<first-lsn 16 digits>.jsonl``
    One WAL segment per file, named by the first LSN it may contain so
    lexicographic filename order **is** LSN order.  Exactly one segment
    (the highest-named) is *active*; the rest are sealed and immutable.
    A record is ``{"lsn": n, "kind": "add"|"remove", "wme": ...}``;
    compaction may also write ``{"lsn": n, "kind": "noop"}`` markers
    that advance the replay LSN without mutating state.
``wal.jsonl``
    The legacy single-file log of the pre-segment format.  Recovery
    still replays it (ordered before every segment, since its LSNs are
    older); the first checkpoint that covers it deletes it.

Durability modes
----------------
``"always"``
    ``flush`` + ``fsync`` after every record; directory fsync after
    every file creation, rename, and deletion.  Survives power loss up
    to the last acknowledged delta.
``"batch"``
    ``flush`` per record; ``fsync`` only when a segment is sealed, at
    checkpoint/compaction boundaries, and on close.  Survives process
    crash up to the last delta, power loss up to the last boundary.
``"none"``
    ``flush`` per record, no fsync ever.  For benchmarks and bulk
    loads.

Crash-safety invariants
-----------------------
* A WAL record is written *after* its fault site and *after* the LSN
  is reserved, under the store mutex — LSNs are strictly increasing
  within a segment, and recovery asserts it.
* ``checkpoint()`` captures (elements, LSN) and seals the active
  segment under the store mutex (taking the working memory's lock
  first, mirroring the delta path's lock order), so every record with
  ``lsn <= checkpoint_lsn`` lives in sealed segments and every later
  delta lands in the fresh active segment: truncation deletes *only
  covered* segments and can never erase a post-capture delta.
* ``compact()`` merges sealed segments into one, dropping add/remove
  pairs that cancel (both records inside the merged range).  The merge
  commits by renaming over the *first* merged segment; a trailing noop
  marker pins the merged range's maximum LSN, so leftover old segments
  after a crash are fully *shadowed* (every LSN already replayed) and
  recovery skips, then deletes, them.
* Recovery tolerates a torn final log line, ignores ``*.tmp``
  leftovers, and completes any interrupted truncation.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterable

import repro.obs as obs_module
from repro.errors import WorkingMemoryError
from repro.wm.element import WME, ensure_timetag_floor
from repro.wm.memory import WMDelta, WorkingMemory
from repro.wm.schema import Catalog

_CHECKPOINT = "checkpoint.jsonl"
_LEGACY_WAL = "wal.jsonl"
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".jsonl"
_TMP_SUFFIX = ".tmp"

#: Supported fsync disciplines, strongest first.
DURABILITY_MODES = ("always", "batch", "none")

#: Every ``storage_fail`` fault site the store exposes.  The chaos
#: sweep (:mod:`repro.fault.storage_chaos`) crashes at each one and
#: proves recovery lands on the journalled prefix.
STORAGE_FAULT_SITES = (
    "wal:add",
    "wal:remove",
    "rotate:open",
    "checkpoint:tmp-write",
    "checkpoint:rename",
    "checkpoint:dirsync",
    "checkpoint:truncate",
    "compact:tmp-write",
    "compact:rename",
    "compact:truncate",
)


def serialize_wme(wme: WME) -> dict:
    """JSON-safe representation of a WME (timetag-preserving)."""
    return {
        "relation": wme.relation,
        "items": [[name, value] for name, value in wme.items],
        "timetag": wme.timetag,
    }


def deserialize_wme(payload: dict) -> WME:
    """Rebuild a WME from :func:`serialize_wme` output."""
    try:
        return WME(
            payload["relation"],
            tuple((name, value) for name, value in payload["items"]),
            payload["timetag"],
        )
    except (KeyError, TypeError) as exc:
        raise WorkingMemoryError(f"corrupt WME record: {payload!r}") from exc


def _segment_filename(first_lsn: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_lsn:016d}{_SEGMENT_SUFFIX}"


def _segment_first_lsn(path: Path) -> int:
    stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WorkingMemoryError(
            f"malformed WAL segment name: {path.name}"
        ) from exc


def _fsync_dir(directory: Path) -> None:
    """fsync a directory so entry creations/renames/unlinks are durable.

    Best-effort: platforms without directory fds (e.g. Windows) skip.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@dataclass
class SegmentInfo:
    """Bookkeeping for one sealed (immutable) WAL segment."""

    path: Path
    first_lsn: int
    last_lsn: int
    records: int
    bytes: int


@dataclass
class RecoveryReport:
    """What :meth:`DurableStore.open` did, for inspection and benches."""

    elements: int = 0
    checkpoint_lsn: int = 0
    replayed: int = 0
    shadowed: int = 0
    segments: int = 0
    torn_lines: int = 0
    cleaned: list[str] = field(default_factory=list)
    seconds: float = 0.0


class DurableStore:
    """Attaches persistence to a :class:`WorkingMemory`.

    Usage::

        wm = WorkingMemory()
        store = DurableStore(wm, "plant-state")   # journals from now on
        ... mutate wm ...
        store.checkpoint()                         # snapshot + truncate
        store.compact()                            # shrink sealed WAL
        store.close()

        wm2, store2 = DurableStore.open("plant-state")   # recover

    Parameters
    ----------
    memory:
        The working memory to journal.
    directory:
        Storage directory (created if missing).
    fault_injector:
        Optional :class:`repro.fault.FaultInjector`; its
        ``storage_fail`` faults raise :class:`StorageFailure` at the
        sites in :data:`STORAGE_FAULT_SITES`, each *before* the
        corresponding filesystem effect, simulating a crash there.
    durability:
        One of :data:`DURABILITY_MODES` (default ``"always"``).
    segment_max_records / segment_max_bytes:
        Rotation thresholds for the active WAL segment.
    observer:
        Observability sink; defaults to the module-level observer.
    """

    def __init__(
        self,
        memory: WorkingMemory,
        directory: str | Path,
        fault_injector=None,
        *,
        durability: str = "always",
        segment_max_records: int = 10_000,
        segment_max_bytes: int = 1 << 20,
        observer=None,
    ) -> None:
        self._init_runtime(
            memory,
            Path(directory),
            fault_injector,
            durability=durability,
            segment_max_records=segment_max_records,
            segment_max_bytes=segment_max_bytes,
            observer=observer,
            start_lsn=0,
            sealed=(),
        )

    def _init_runtime(
        self,
        memory: WorkingMemory,
        directory: Path,
        fault_injector,
        *,
        durability: str,
        segment_max_records: int,
        segment_max_bytes: int,
        observer,
        start_lsn: int,
        sealed: Iterable[SegmentInfo],
    ) -> None:
        """Shared constructor body for ``__init__`` and :meth:`open`."""
        if durability not in DURABILITY_MODES:
            raise WorkingMemoryError(
                f"unknown durability mode {durability!r}; "
                f"expected one of {DURABILITY_MODES}"
            )
        if segment_max_records < 1 or segment_max_bytes < 1:
            raise WorkingMemoryError("segment thresholds must be >= 1")
        self.memory = memory
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fault = fault_injector
        self.durability = durability
        self.segment_max_records = segment_max_records
        self.segment_max_bytes = segment_max_bytes
        self.obs = (
            observer if observer is not None else obs_module.get_observer()
        )
        self._lsn = start_lsn
        self._mutex = threading.Lock()
        self._maint_mutex = threading.Lock()  # serializes ckpt/compact
        self._sealed: list[SegmentInfo] = list(sealed)
        self._wal: IO[str] | None = None
        self._segment_path: Path | None = None
        self._segment_first = 0
        self._segment_records = 0
        self._segment_bytes = 0
        self.last_recovery: RecoveryReport | None = None
        self._open_active_segment()
        self.memory.subscribe(self._on_delta)
        self._attached = True

    # -- journalling -------------------------------------------------------------

    @property
    def lsn(self) -> int:
        """The last log sequence number written."""
        return self._lsn

    @property
    def active_segment_path(self) -> Path | None:
        """The segment file currently receiving records."""
        return self._segment_path

    def sealed_segments(self) -> list[SegmentInfo]:
        """Sealed (immutable) segments, oldest first."""
        with self._mutex:
            return list(self._sealed)

    def wal_bytes(self) -> int:
        """Total bytes across sealed segments plus the active one."""
        with self._mutex:
            return (
                sum(s.bytes for s in self._sealed) + self._segment_bytes
            )

    def _open_active_segment(self) -> None:
        """Open a fresh active segment named by the next LSN.

        Called with the mutex held (or before the store is shared).
        """
        path = self.directory / _segment_filename(self._lsn + 1)
        self._wal = open(path, "a", encoding="utf-8")
        self._segment_path = path
        self._segment_first = self._lsn + 1
        self._segment_records = 0
        self._segment_bytes = 0
        if self.durability == "always":
            _fsync_dir(self.directory)

    def _seal_active_segment(self) -> None:
        """Rotate: seal the active segment and open a successor.

        Called with the mutex held.  A segment with zero records is
        reused, not rotated.  The ``rotate:open`` fault site fires
        *before* any handle is touched, so an injected crash here
        leaves the active segment intact and writable.
        """
        if self._segment_records == 0:
            return
        if self.fault is not None:
            self.fault.storage_fault(site="rotate:open")
        assert self._wal is not None
        self._wal.flush()
        if self.durability in ("always", "batch"):
            os.fsync(self._wal.fileno())
        self._wal.close()
        sealed = SegmentInfo(
            path=self._segment_path,
            first_lsn=self._segment_first,
            last_lsn=self._lsn,
            records=self._segment_records,
            bytes=self._segment_bytes,
        )
        self._sealed.append(sealed)
        self._open_active_segment()
        if self.obs.enabled:
            self.obs.segment_rotated(
                sealed.path.name, sealed.records, sealed.bytes
            )

    def _on_delta(self, delta: WMDelta) -> None:
        with self._mutex:
            if self._wal is None:
                raise WorkingMemoryError("durable store is closed")
            if (
                self._segment_records >= self.segment_max_records
                or self._segment_bytes >= self.segment_max_bytes
            ):
                self._seal_active_segment()
            if self.fault is not None:
                # Fails *before* the LSN advances or the record is
                # written: the WAL stays well-formed and recovery sees
                # a store that simply never journalled this delta.
                self.fault.storage_fault(site=f"wal:{delta.kind}")
            lsn = self._lsn + 1
            line = json.dumps(
                {
                    "lsn": lsn,
                    "kind": delta.kind,
                    "wme": serialize_wme(delta.wme),
                }
            ) + "\n"
            self._wal.write(line)
            self._lsn = lsn
            self._segment_records += 1
            self._segment_bytes += len(line)
            if self.durability == "always":
                self._wal.flush()
                os.fsync(self._wal.fileno())
            elif self.durability == "batch":
                self._wal.flush()
            else:
                self._wal.flush()

    # -- checkpointing -----------------------------------------------------------

    def checkpoint(self) -> int:
        """Write a full snapshot and truncate covered WAL segments.

        Returns the number of elements checkpointed.  The capture
        (elements + LSN + sealing the active segment) happens under the
        working-memory lock and the store mutex — the same order the
        delta path takes — so no delta can slip between the snapshot
        and the truncation: anything journalled after the capture has
        ``lsn > checkpoint_lsn`` and lives in the new active segment,
        which is never truncated.  The snapshot itself is written
        outside the locks (tmp + fsync + rename + directory fsync), so
        writers keep journalling while the checkpoint lands.
        """
        start = time.perf_counter()
        with self._maint_mutex:
            elements, checkpoint_lsn = self._capture()
            self._write_snapshot(elements, checkpoint_lsn)
            dropped = self._truncate(checkpoint_lsn)
        if self.obs.enabled:
            self.obs.checkpoint_completed(
                len(elements),
                checkpoint_lsn,
                dropped,
                time.perf_counter() - start,
            )
        return len(elements)

    def _capture(self) -> tuple[list[WME], int]:
        """Atomically snapshot (elements, LSN) and seal the active
        segment.  Lock order: memory lock, then store mutex — the same
        order ``_on_delta`` observes (the memory lock is held across
        delta publication), so capture cannot deadlock with writers."""
        with self.memory.locked():
            with self._mutex:
                if self._wal is None:
                    raise WorkingMemoryError("durable store is closed")
                elements = sorted(self.memory, key=lambda w: w.timetag)
                checkpoint_lsn = self._lsn
                self._seal_active_segment()
        return elements, checkpoint_lsn

    def _write_snapshot(
        self, elements: list[WME], checkpoint_lsn: int
    ) -> None:
        """Atomically replace the checkpoint file (tmp, rename, dir
        fsync), with a fault site before each filesystem effect."""
        temp_path = self.directory / (_CHECKPOINT + _TMP_SUFFIX)
        if self.fault is not None:
            self.fault.storage_fault(site="checkpoint:tmp-write")
        with open(temp_path, "w", encoding="utf-8") as handle:
            handle.write(
                json.dumps({"checkpoint_lsn": checkpoint_lsn}) + "\n"
            )
            for wme in elements:
                handle.write(json.dumps(serialize_wme(wme)) + "\n")
            handle.flush()
            if self.durability in ("always", "batch"):
                os.fsync(handle.fileno())
        if self.fault is not None:
            self.fault.storage_fault(site="checkpoint:rename")
        os.replace(temp_path, self.directory / _CHECKPOINT)
        # Without this directory fsync a crash can resurrect the *old*
        # checkpoint after the WAL was truncated — the lost-update
        # window the recovery chaos sweep aims at.
        if self.fault is not None:
            self.fault.storage_fault(site="checkpoint:dirsync")
        if self.durability in ("always", "batch"):
            _fsync_dir(self.directory)

    def _truncate(self, checkpoint_lsn: int) -> int:
        """Delete sealed segments fully covered by the checkpoint.

        Only segments whose *last* LSN is ``<= checkpoint_lsn`` are
        removed; the active segment (post-capture deltas) is untouched.
        Returns the number of segments dropped.
        """
        if self.fault is not None:
            self.fault.storage_fault(site="checkpoint:truncate")
        with self._mutex:
            covered = [
                s for s in self._sealed if s.last_lsn <= checkpoint_lsn
            ]
            self._sealed = [
                s for s in self._sealed if s.last_lsn > checkpoint_lsn
            ]
        dropped = 0
        for segment in covered:
            segment.path.unlink(missing_ok=True)
            dropped += 1
        legacy = self.directory / _LEGACY_WAL
        if legacy.exists():
            legacy.unlink()
            dropped += 1
        if dropped and self.durability in ("always", "batch"):
            _fsync_dir(self.directory)
        return dropped

    # -- compaction --------------------------------------------------------------

    def compact(self) -> dict:
        """Merge sealed segments, dropping add/remove pairs that cancel.

        Background-free: the caller decides when; cost is proportional
        to the sealed WAL.  An ``add`` at LSN *a* and the ``remove`` of
        the same timetag at LSN *b* cancel when **both** lie in the
        merged (sealed) range — replaying neither yields the same
        state.  Records whose partner is outside the range (the add
        lives in the checkpoint or the active segment) are kept.

        The merged segment is committed by renaming over the *first*
        merged segment's name; when the last retained LSN is smaller
        than the range's maximum, a ``noop`` marker pins the maximum so
        that, if a crash strands the other old segments, every one of
        their LSNs is already shadowed and recovery skips them.

        Returns a summary dict (records/bytes before and after,
        segments merged).
        """
        start = time.perf_counter()
        with self._maint_mutex:
            with self._mutex:
                if self._wal is None:
                    raise WorkingMemoryError("durable store is closed")
                self._seal_active_segment()
                sealed = list(self._sealed)
            if len(sealed) == 0:
                return {
                    "segments_merged": 0,
                    "records_before": 0,
                    "records_after": 0,
                    "bytes_before": 0,
                    "bytes_after": 0,
                    "dropped": 0,
                }
            records: list[dict] = []
            for segment in sealed:
                records.extend(_read_segment(segment.path))
            retained, dropped = _cancel_pairs(records)
            max_covered = sealed[-1].last_lsn
            if not retained or retained[-1]["lsn"] < max_covered:
                retained.append({"lsn": max_covered, "kind": "noop"})

            first = sealed[0]
            temp_path = Path(str(first.path) + _TMP_SUFFIX)
            if self.fault is not None:
                self.fault.storage_fault(site="compact:tmp-write")
            total_bytes = 0
            with open(temp_path, "w", encoding="utf-8") as handle:
                for record in retained:
                    line = json.dumps(record) + "\n"
                    handle.write(line)
                    total_bytes += len(line)
                handle.flush()
                if self.durability in ("always", "batch"):
                    os.fsync(handle.fileno())
            if self.fault is not None:
                self.fault.storage_fault(site="compact:rename")
            os.replace(temp_path, first.path)
            if self.durability in ("always", "batch"):
                _fsync_dir(self.directory)
            merged = SegmentInfo(
                path=first.path,
                first_lsn=first.first_lsn,
                last_lsn=max_covered,
                records=len(retained),
                bytes=total_bytes,
            )
            with self._mutex:
                self._sealed = [merged] + [
                    s for s in self._sealed if s not in sealed
                ]
            if self.fault is not None:
                self.fault.storage_fault(site="compact:truncate")
            for segment in sealed[1:]:
                segment.path.unlink(missing_ok=True)
            if len(sealed) > 1 and self.durability in ("always", "batch"):
                _fsync_dir(self.directory)
        summary = {
            "segments_merged": len(sealed),
            "records_before": len(records),
            "records_after": len(retained),
            "bytes_before": sum(s.bytes for s in sealed),
            "bytes_after": total_bytes,
            "dropped": dropped,
        }
        if self.obs.enabled:
            self.obs.compaction_completed(
                summary["records_before"],
                summary["records_after"],
                summary["segments_merged"],
                time.perf_counter() - start,
            )
        return summary

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop journalling and close the log file."""
        if self._attached:
            self.memory.unsubscribe(self._on_delta)
            self._attached = False
        with self._mutex:
            if self._wal is not None:
                self._wal.flush()
                if self.durability in ("always", "batch"):
                    os.fsync(self._wal.fileno())
                self._wal.close()
                self._wal = None

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- recovery ----------------------------------------------------------------

    @staticmethod
    def open(
        directory: str | Path,
        catalog: Catalog | None = None,
        thread_safe: bool = False,
        fault_injector=None,
        *,
        durability: str = "always",
        segment_max_records: int = 10_000,
        segment_max_bytes: int = 1 << 20,
        observer=None,
    ) -> tuple[WorkingMemory, "DurableStore"]:
        """Recover a working memory from ``directory``.

        Loads the checkpoint (if any), replays every WAL segment in
        LSN order (the legacy single-file log first, then segments by
        filename), skipping records already covered by the checkpoint
        and records shadowed by an interrupted compaction, tolerating
        a torn final line per file, and deleting ``*.tmp`` leftovers
        and fully-covered segments (completing any interrupted
        truncation).  LSNs must be strictly increasing within each
        segment — a duplicate or regression is corruption (the
        unsynchronized-writer bug) and raises.

        Unlike the seed's recovery path, the returned store keeps the
        caller's configuration: ``fault_injector``, ``durability``,
        segment thresholds and ``observer`` are all threaded through,
        so a recovered store is chaos-testable like a fresh one.
        """
        start = time.perf_counter()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        report = RecoveryReport()
        memory = WorkingMemory(catalog=catalog, thread_safe=thread_safe)

        # Interrupted checkpoint/compaction leftovers are dead weight.
        for stray in directory.glob("*" + _TMP_SUFFIX):
            stray.unlink(missing_ok=True)
            report.cleaned.append(stray.name)

        checkpoint_lsn = 0
        max_timetag = 0
        checkpoint_path = directory / _CHECKPOINT
        if checkpoint_path.exists():
            with open(checkpoint_path, encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                checkpoint_lsn = int(header.get("checkpoint_lsn", 0))
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError:
                        report.torn_lines += 1
                        break  # torn tail from a crash mid-write
                    wme = deserialize_wme(payload)
                    memory.add(wme)
                    max_timetag = max(max_timetag, wme.timetag)
        report.checkpoint_lsn = checkpoint_lsn

        sources: list[Path] = []
        legacy = directory / _LEGACY_WAL
        if legacy.exists():
            sources.append(legacy)
        sources.extend(
            sorted(
                directory.glob(_SEGMENT_PREFIX + "*" + _SEGMENT_SUFFIX),
                key=_segment_first_lsn,
            )
        )

        last_lsn = checkpoint_lsn
        sealed: list[SegmentInfo] = []
        fully_covered: list[Path] = []
        for source in sources:
            seg_records = 0
            seg_bytes = 0
            seg_first = 0
            seg_last = 0
            seg_applied = 0
            previous = 0
            torn = False
            with open(source, encoding="utf-8") as handle:
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                    except json.JSONDecodeError:
                        torn = True
                        report.torn_lines += 1
                        break  # torn final record from a crash
                    lsn = int(record["lsn"])
                    if previous and lsn <= previous:
                        raise WorkingMemoryError(
                            f"{source.name}: non-monotonic LSN {lsn} "
                            f"after {previous} — the log was written "
                            "by an unsynchronized store"
                        )
                    previous = lsn
                    seg_records += 1
                    seg_bytes += len(line.encode("utf-8"))
                    seg_first = seg_first or lsn
                    seg_last = lsn
                    if lsn <= last_lsn:
                        # Covered by the checkpoint, or shadowed by a
                        # compacted segment after an interrupted merge.
                        report.shadowed += 1
                        continue
                    kind = record["kind"]
                    if kind == "noop":
                        pass
                    elif kind == "add":
                        wme = deserialize_wme(record["wme"])
                        memory.add(wme)
                        max_timetag = max(max_timetag, wme.timetag)
                    elif kind == "remove":
                        wme = deserialize_wme(record["wme"])
                        memory.remove(wme.timetag)
                        max_timetag = max(max_timetag, wme.timetag)
                    else:
                        raise WorkingMemoryError(
                            f"{source.name}: unknown WAL record kind "
                            f"{kind!r}"
                        )
                    last_lsn = lsn
                    seg_applied += 1
                    report.replayed += 1
            if source.name == _LEGACY_WAL:
                continue  # never re-adopted as a live segment
            if seg_records and seg_applied == 0 and not torn:
                # Every record already covered: an interrupted
                # truncation left this segment behind.  Finish the job.
                fully_covered.append(source)
            elif seg_records:
                sealed.append(
                    SegmentInfo(
                        path=source,
                        first_lsn=seg_first,
                        last_lsn=seg_last,
                        records=seg_records,
                        bytes=seg_bytes,
                    )
                )
            else:
                # Zero records: a pre-crash active segment that never
                # received a write, or an empty rotation leftover.
                fully_covered.append(source)

        for path in fully_covered:
            path.unlink(missing_ok=True)
            report.cleaned.append(path.name)
        if report.cleaned and durability in ("always", "batch"):
            _fsync_dir(directory)

        ensure_timetag_floor(max_timetag)
        store = DurableStore.__new__(DurableStore)
        store._init_runtime(
            memory,
            directory,
            fault_injector,
            durability=durability,
            segment_max_records=segment_max_records,
            segment_max_bytes=segment_max_bytes,
            observer=observer,
            start_lsn=last_lsn,
            sealed=sealed,
        )
        report.elements = len(memory)
        report.segments = len(sources)
        report.seconds = time.perf_counter() - start
        store.last_recovery = report
        if store.obs.enabled:
            store.obs.recovery_completed(
                report.elements,
                report.replayed,
                report.shadowed,
                report.segments,
                report.seconds,
            )
        return memory, store

    # -- inspection --------------------------------------------------------------

    @staticmethod
    def inspect(directory: str | Path) -> dict:
        """Describe on-disk state without opening a store.

        Returns checkpoint LSN/element count plus per-segment LSN
        ranges, record and byte counts — the ``repro storage inspect``
        payload.
        """
        directory = Path(directory)
        info: dict = {
            "directory": str(directory),
            "checkpoint": None,
            "segments": [],
            "legacy_wal": None,
            "total_wal_records": 0,
            "total_wal_bytes": 0,
        }
        checkpoint_path = directory / _CHECKPOINT
        if checkpoint_path.exists():
            with open(checkpoint_path, encoding="utf-8") as handle:
                header = json.loads(handle.readline())
                elements = sum(1 for line in handle if line.strip())
            info["checkpoint"] = {
                "checkpoint_lsn": int(header.get("checkpoint_lsn", 0)),
                "elements": elements,
                "bytes": checkpoint_path.stat().st_size,
            }
        sources = []
        legacy = directory / _LEGACY_WAL
        if legacy.exists():
            sources.append(legacy)
        sources.extend(
            sorted(
                directory.glob(_SEGMENT_PREFIX + "*" + _SEGMENT_SUFFIX),
                key=_segment_first_lsn,
            )
        )
        for source in sources:
            records = _read_segment(source, tolerate_torn=True)
            entry = {
                "name": source.name,
                "records": len(records),
                "bytes": source.stat().st_size,
                "first_lsn": records[0]["lsn"] if records else None,
                "last_lsn": records[-1]["lsn"] if records else None,
            }
            if source.name == _LEGACY_WAL:
                info["legacy_wal"] = entry
            else:
                info["segments"].append(entry)
            info["total_wal_records"] += len(records)
            info["total_wal_bytes"] += entry["bytes"]
        return info

    @staticmethod
    def segment_paths(directory: str | Path) -> list[Path]:
        """All WAL files in replay order (legacy first, then segments)."""
        directory = Path(directory)
        paths: list[Path] = []
        legacy = directory / _LEGACY_WAL
        if legacy.exists():
            paths.append(legacy)
        paths.extend(
            sorted(
                directory.glob(_SEGMENT_PREFIX + "*" + _SEGMENT_SUFFIX),
                key=_segment_first_lsn,
            )
        )
        return paths


def _read_segment(path: Path, tolerate_torn: bool = True) -> list[dict]:
    """All records of one WAL file, tolerating a torn final line."""
    records: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                if tolerate_torn:
                    break
                raise
    return records


def _cancel_pairs(records: list[dict]) -> tuple[list[dict], int]:
    """Drop add/remove pairs that cancel within ``records``.

    A pair cancels when the add and the remove of the same timetag are
    both present.  Timetags are unique per add (the store never re-adds
    a timetag), so pairing is unambiguous.  Returns (retained records
    in original order, number of records dropped).
    """
    adds: dict[int, int] = {}  # timetag -> record index
    drop: set[int] = set()
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind == "add":
            adds[record["wme"]["timetag"]] = index
        elif kind == "remove":
            partner = adds.pop(record["wme"]["timetag"], None)
            if partner is not None:
                drop.add(partner)
                drop.add(index)
        elif kind == "noop":
            drop.add(index)  # superseded by the fresh trailing marker
    retained = [
        record for index, record in enumerate(records)
        if index not in drop
    ]
    return retained, len(drop)
