"""Working-memory snapshots.

The execution-graph construction of Section 3 ("it is possible
(conceptually) to determine the allowable sequences of state changes")
requires exploring *alternative* futures from one state: fire P_i, look
at the resulting state, rewind, fire P_j instead.  :class:`WMSnapshot`
captures a store's contents so a search can restore or fork states.

Snapshots preserve timetags exactly, so recency-based conflict
resolution behaves identically on a restored state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wm.element import WME
from repro.wm.memory import WorkingMemory
from repro.wm.schema import Catalog


@dataclass(frozen=True)
class WMSnapshot:
    """An immutable capture of a working memory's live elements."""

    elements: tuple[WME, ...]

    @staticmethod
    def capture(memory: WorkingMemory) -> "WMSnapshot":
        """Snapshot the current live elements of ``memory``.

        WMEs are immutable, so capturing is a shallow copy: O(n) time,
        no per-element cloning.
        """
        return WMSnapshot(tuple(sorted(memory, key=lambda w: w.timetag)))

    def restore(self, memory: WorkingMemory) -> None:
        """Make ``memory`` contain exactly this snapshot's elements.

        Computes the symmetric difference against the live store and
        applies minimal add/remove deltas, so incremental matchers
        subscribed to the store see a correct delta stream rather than
        a clear-and-reload.
        """
        current = {w.timetag: w for w in memory}
        target = {w.timetag: w for w in self.elements}
        for timetag in list(current):
            if timetag not in target:
                memory.remove(timetag)
        for timetag, wme in target.items():
            if timetag not in current:
                memory.add(wme)

    def materialize(self, catalog: Catalog | None = None) -> WorkingMemory:
        """Build a brand-new :class:`WorkingMemory` holding this snapshot."""
        memory = WorkingMemory(catalog=catalog)
        for wme in self.elements:
            memory.add(wme)
        return memory

    def value_identity_set(self) -> frozenset[tuple]:
        """Value identities (timetag-free), for state-equality checks."""
        return frozenset(w.identity() for w in self.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __contains__(self, wme: object) -> bool:
        return isinstance(wme, WME) and wme in self.elements
