"""Undo logging for transactional abort of production firings.

The improved locking scheme of Section 4.3 *aborts* productions: when a
``Wa`` holder commits first, "the lock manager finds all productions
holding Rc lock on q and forces them to abort".  An aborted production
may already have executed part of its RHS (acquiring ``Wa`` locks and
writing), so working memory must be rolled back to the firing's start.

:class:`UndoLog` records the inverse of every delta a transaction makes
and replays the inverses in reverse order on abort — a classical
no-steal undo log specialized to WM add/remove deltas.
"""

from __future__ import annotations

from repro.wm.memory import WMDelta, WorkingMemory


class UndoLog:
    """Records deltas for one transaction scope and can roll them back.

    Usage::

        log = UndoLog(wm)
        log.attach()
        try:
            ... mutate wm ...
        except SomeAbort:
            log.rollback()
        finally:
            log.detach()
    """

    def __init__(self, memory: WorkingMemory) -> None:
        self._memory = memory
        self._deltas: list[WMDelta] = []
        self._attached = False
        self._rolling_back = False

    # -- listener lifecycle ----------------------------------------------------

    def attach(self) -> "UndoLog":
        """Start recording deltas published by the working memory."""
        if not self._attached:
            self._memory.subscribe(self._record)
            self._attached = True
        return self

    def detach(self) -> None:
        """Stop recording.  Safe to call twice."""
        if self._attached:
            self._memory.unsubscribe(self._record)
            self._attached = False

    def __enter__(self) -> "UndoLog":
        return self.attach()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.detach()

    # -- recording and rollback --------------------------------------------------

    def _record(self, delta: WMDelta) -> None:
        if not self._rolling_back:
            self._deltas.append(delta)

    def rollback(self) -> int:
        """Undo every recorded delta, most recent first.

        Returns the number of deltas undone.  The log is emptied, so a
        second call is a no-op.  Deltas published *during* rollback are
        not recorded (they would otherwise re-grow the log forever).
        """
        undone = 0
        self._rolling_back = True
        try:
            while self._deltas:
                delta = self._deltas.pop()
                self._memory.apply(delta.inverted())
                undone += 1
        finally:
            self._rolling_back = False
        return undone

    def commit(self) -> int:
        """Forget the recorded deltas (they become permanent).

        Returns the number of deltas discarded.
        """
        count = len(self._deltas)
        self._deltas.clear()
        return count

    def __len__(self) -> int:
        return len(self._deltas)

    @property
    def deltas(self) -> tuple[WMDelta, ...]:
        """The recorded deltas, oldest first (read-only view)."""
        return tuple(self._deltas)
