"""Secondary indexes over working memory.

The match phase of a *database* production system is a query workload:
condition elements are selections on relations.  A hash index per
(relation, attribute, value) triple lets the naive matcher and the Rete
alpha network avoid full scans, standing in for the DBMS indexes the
paper's setting assumes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.wm.element import Scalar, Timetag, WME


class AttributeIndex:
    """Hash index mapping (relation, attribute, value) to WME timetags.

    The index stores timetags rather than WMEs so that it never pins an
    element that the store has removed; lookups are resolved against
    the live store by :class:`~repro.wm.memory.WorkingMemory`.
    """

    def __init__(self) -> None:
        self._by_relation: dict[str, set[Timetag]] = defaultdict(set)
        self._by_value: dict[
            tuple[str, str, Scalar], set[Timetag]
        ] = defaultdict(set)

    def add(self, wme: WME) -> None:
        """Index ``wme`` under its relation and every attribute value."""
        self._by_relation[wme.relation].add(wme.timetag)
        for name, value in wme.items:
            if _hashable(value):
                self._by_value[(wme.relation, name, value)].add(wme.timetag)

    def remove(self, wme: WME) -> None:
        """Remove ``wme`` from all postings; absent entries are ignored."""
        self._by_relation[wme.relation].discard(wme.timetag)
        for name, value in wme.items:
            if _hashable(value):
                self._by_value[(wme.relation, name, value)].discard(
                    wme.timetag
                )

    def relation(self, relation: str) -> frozenset[Timetag]:
        """Timetags of all live elements of ``relation``."""
        return frozenset(self._by_relation.get(relation, ()))

    def equal(
        self, relation: str, attribute: str, value: Scalar
    ) -> frozenset[Timetag]:
        """Timetags of elements of ``relation`` with ``attribute == value``."""
        return frozenset(self._by_value.get((relation, attribute, value), ()))

    def lookup(
        self,
        relation: str,
        equalities: Iterable[tuple[str, Scalar]] = (),
    ) -> frozenset[Timetag]:
        """Intersect the postings for ``relation`` and every equality.

        Returns the candidate timetag set for a conjunctive selection;
        an empty equality list degrades to a relation scan.
        """
        result = self.relation(relation)
        for attribute, value in equalities:
            if not result:
                break
            result = result & self.equal(relation, attribute, value)
        return result

    def relations(self) -> Iterator[str]:
        """Iterate over relation names that have (or had) postings."""
        return iter(self._by_relation)

    def cardinality(self, relation: str) -> int:
        """Number of live elements currently indexed for ``relation``."""
        return len(self._by_relation.get(relation, ()))


def _hashable(value: Scalar) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True
