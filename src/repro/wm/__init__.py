"""Working-memory substrate: the "database" of the production system.

The paper stores working memory in a DBMS; here working memory is an
in-memory relational store with schemas, secondary indexes, an undo log
(so a production firing can be aborted, as the Rc/Ra/Wa scheme of
Section 4.3 requires), and snapshots (so the execution-graph search of
Section 3 can explore alternative futures).

Public classes
--------------
:class:`~repro.wm.element.WME`
    An immutable working-memory element: a relation name plus an
    attribute/value mapping, stamped with a creation timetag.
:class:`~repro.wm.schema.RelationSchema` / :class:`~repro.wm.schema.Catalog`
    Relational schemas and the system catalog.
:class:`~repro.wm.memory.WorkingMemory`
    The mutable store with make/modify/remove, listeners and indexes.
:class:`~repro.wm.undo.UndoLog`
    Records inverse operations for transactional abort.
"""

from repro.wm.element import WME, Timetag
from repro.wm.schema import Catalog, RelationSchema
from repro.wm.index import AttributeIndex
from repro.wm.memory import WMDelta, WorkingMemory
from repro.wm.undo import UndoLog
from repro.wm.snapshot import WMSnapshot
from repro.wm.storage import (
    DURABILITY_MODES,
    DurableStore,
    RecoveryReport,
    STORAGE_FAULT_SITES,
    SegmentInfo,
    deserialize_wme,
    serialize_wme,
)
from repro.wm.query import Query

__all__ = [
    "WME",
    "Timetag",
    "RelationSchema",
    "Catalog",
    "AttributeIndex",
    "WorkingMemory",
    "WMDelta",
    "UndoLog",
    "WMSnapshot",
    "DurableStore",
    "DURABILITY_MODES",
    "STORAGE_FAULT_SITES",
    "SegmentInfo",
    "RecoveryReport",
    "serialize_wme",
    "deserialize_wme",
    "Query",
]
