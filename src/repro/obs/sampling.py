"""Deterministic head-based trace sampling.

A production engine cannot afford the full span tree on every run —
PR 4 measured it at ~1.45× the uninstrumented engine — but it also
cannot afford to lose whole categories of evidence.  Head sampling is
the standard answer: decide *once, at the root*, whether a trace is
kept, and let every descendant span inherit that decision, so a
sampled run carries its complete run → cycle → phase → firing subtree
and an unsampled run costs almost nothing (a sentinel object and a
counter bump per would-be span).

Two properties the rest of the telemetry layer depends on:

* **Determinism.**  The keep/drop decision for the *n*-th root span is
  a pure function of ``(seed, rate, n)`` — a BLAKE2 hash mapped into
  the unit interval — so the same program run twice under the same
  seed and rate records the *identical* sampled span set.  Tests pin
  this; it also makes sampled benchmarks reproducible.
* **Whole-trace coherence.**  A child span is kept iff its root was
  kept.  There is no per-span coin flip, so analysis never sees a
  ``firing`` whose ``cycle`` is missing (the half-trace failure mode
  tail-sampling systems fight).

The sampler only gates *root* spans (spans started with no parent —
the engines' ``run`` spans and the store's standalone checkpoint /
compaction / recovery spans).  Aggregate telemetry (metrics, quantile
sketches, the per-rule profiler, health windows) is fed from observer
hooks, not spans, and therefore sees **every** run regardless of the
sampling decision — sampling trades away causal detail, never totals.
"""

from __future__ import annotations

import hashlib
import threading

#: Resolution of the deterministic unit-interval hash.
_SCALE = 1 << 32


class HeadSampler:
    """Seeded, rate-configurable keep/drop decisions for trace roots.

    Parameters
    ----------
    rate:
        Fraction of root spans to keep, in ``[0, 1]``.  ``1.0`` keeps
        everything (the ``full`` level's behavior), ``0.0`` drops
        everything.
    seed:
        Decision-stream seed.  Two samplers with the same seed and
        rate make the same decision for the same root index.
    """

    def __init__(self, rate: float = 0.1, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._threshold = int(rate * _SCALE)
        self._index = 0
        self._mutex = threading.Lock()
        #: Decisions made / kept so far (for accounting and tests).
        self.decisions = 0
        self.kept = 0

    def keep(self, index: int) -> bool:
        """The pure decision function: keep the ``index``-th root?

        Stateless and deterministic — usable offline to predict which
        traces a run kept.
        """
        if self._threshold >= _SCALE:
            return True
        if self._threshold <= 0:
            return False
        digest = hashlib.blake2b(
            f"{self.seed}:{index}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest[:4], "big") < self._threshold

    def decide(self) -> bool:
        """Consume the next root index and return its decision."""
        with self._mutex:
            self._index += 1
            index = self._index
            self.decisions += 1
            kept = self.keep(index)
            if kept:
                self.kept += 1
            return kept

    def reset(self) -> None:
        """Rewind the decision stream (same seed ⇒ same decisions)."""
        with self._mutex:
            self._index = 0
            self.decisions = 0
            self.kept = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<HeadSampler rate={self.rate} seed={self.seed} "
            f"kept={self.kept}/{self.decisions}>"
        )


class DroppedSpan:
    """The inert span a sampled-out trace gets instead of real spans.

    Supports the full mutation surface of
    :class:`~repro.obs.spans.Span` as no-ops, so instrumentation sites
    never branch on the sampling decision — they annotate, link,
    finish and context-manage exactly as they would a live span, and
    it all costs one method call.  Identity is the contract: the
    recorder hands out **one** instance, and ``span is
    recorder.dropped`` marks the whole subtree as sampled out (every
    child started under it inherits the drop).
    """

    __slots__ = ()

    #: Sentinel ids — never collide with real (positive) span ids.
    span_id = -1
    parent_id = None
    name = "(sampled-out)"
    start = 0.0
    end = 0.0
    tid = -1
    fields: dict = {}
    links: list = []
    events: list = []

    @property
    def duration(self) -> float:
        return 0.0

    @property
    def is_finished(self) -> bool:
        return True

    def annotate(self, **fields: object) -> "DroppedSpan":
        return self

    def event(self, name, ts=None, **fields: object) -> "DroppedSpan":
        return self

    def link(self, target, kind: str = "causes") -> "DroppedSpan":
        return self

    def finish(self, ts=None, **fields: object) -> "DroppedSpan":
        return self

    def __enter__(self) -> "DroppedSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def to_dict(self) -> dict:
        return {"span_id": self.span_id, "name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<DroppedSpan (sampled out)>"
