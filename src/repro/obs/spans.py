"""Causal spans: the tree-structured half of the observability layer.

Where :mod:`repro.obs.trace` records *flat* events and
:mod:`repro.obs.metrics` keeps label-less totals, the span layer
records *intervals with parents* — the structure the Section 5
questions need ("which lock wait bounded this wave?", "which Wa commit
caused this cascade of Rc aborts?").  The taxonomy the engines emit::

    run                          one engine run
    └─ cycle                     one wave (the paper's recognize-act cycle)
       ├─ phase.match            conflict-set ordering / selection
       ├─ phase.acquire          condition-lock acquisition
       │  └─ acquire             one candidate's condition locks
       │     └─ lock.acquire     one lock grant (dur = wait time)
       └─ phase.act              RHS execution in CR order
          └─ firing              one firing txn (commit/abort/defer)
             ├─ lock.acquire     action-lock grants
             └─ rhs              the RHS body

Design constraints (shared with the trace layer):

* **Explicit clock injection.**  The recorder stamps with its own
  ``clock`` (default :func:`time.perf_counter`); virtual-time owners
  construct the recorder with their simulator clock or use
  :meth:`SpanRecorder.record` with explicit timestamps, so wall and
  virtual time never mix inside one span tree.
* **Bounded memory.**  Started spans land in a ring; overflow drops
  the oldest and counts the loss (:attr:`SpanRecorder.dropped`).
* **Head sampling.**  An optional
  :class:`~repro.obs.sampling.HeadSampler` gates *root* spans: a
  sampled-out root returns the recorder's shared
  :class:`~repro.obs.sampling.DroppedSpan` sentinel, every child
  started under it inherits the drop, and the loss is counted
  exactly (:attr:`SpanRecorder.sampled_out`).  Kept traces record
  their complete subtree — sampling never half-drops a tree.
* **Causal links.**  A span can carry links to other spans — the
  rule-(ii) victim links to the committing Wa transaction's span
  (kind ``"rc_wa_abort"``), turning Table 4.1's commit-rule aborts
  into traversable chains.
* **Txn binding.**  Hooks that only know a transaction id (the lock
  manager, the fault injector, the Rc scheme) reach the right span
  through :meth:`bind`/:meth:`for_txn` — the engine binds each txn to
  its acquire/firing span for the span's lifetime.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.sampling import DroppedSpan, HeadSampler
from repro.obs.trace import _jsonable


class Span:
    """One interval in the causal tree.  Mutable until finished.

    Spans are created through a :class:`SpanRecorder` (never
    directly); mutation helpers are safe to call from any thread.
    """

    __slots__ = (
        "_recorder", "span_id", "parent_id", "name", "start", "end",
        "tid", "fields", "links", "events",
    )

    def __init__(
        self,
        recorder: "SpanRecorder",
        span_id: int,
        parent_id: int | None,
        name: str,
        start: float,
        tid: int,
        fields: dict,
    ) -> None:
        self._recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: float | None = None
        self.tid = tid
        self.fields = fields
        #: ``(target_span_id, kind)`` causal links.
        self.links: list[tuple[int, str]] = []
        #: ``(ts, name, fields)`` point annotations inside the span.
        self.events: list[tuple[float, str, dict]] = []

    # -- state -------------------------------------------------------------------------

    @property
    def duration(self) -> float | None:
        """Elapsed clock units, or None while still open."""
        return None if self.end is None else self.end - self.start

    @property
    def is_finished(self) -> bool:
        return self.end is not None

    # -- mutation ----------------------------------------------------------------------

    def annotate(self, **fields: object) -> "Span":
        """Merge fields into the span (allowed after finish)."""
        with self._recorder._mutex:
            self.fields.update(fields)
        return self

    def event(self, name: str, ts: float | None = None, **fields: object) -> "Span":
        """Record a point annotation inside the span (e.g. a fault)."""
        if ts is None:
            ts = self._recorder.clock()
        with self._recorder._mutex:
            self.events.append((ts, name, fields))
        return self

    def link(self, target: "Span | int", kind: str = "causes") -> "Span":
        """Attach a causal link to another span."""
        target_id = target.span_id if isinstance(target, Span) else target
        with self._recorder._mutex:
            self.links.append((target_id, kind))
        return self

    def finish(self, ts: float | None = None, **fields: object) -> "Span":
        """Close the span (idempotent: the first end timestamp wins)."""
        if ts is None:
            ts = self._recorder.clock()
        with self._recorder._mutex:
            if self.end is None:
                self.end = ts
            if fields:
                self.fields.update(fields)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finish()

    # -- serialization -----------------------------------------------------------------

    def to_dict(self) -> dict:
        with self._recorder._mutex:
            return {
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "name": self.name,
                "start": self.start,
                "end": self.end,
                "duration": self.duration,
                "tid": self.tid,
                "fields": {
                    k: _jsonable(v) for k, v in self.fields.items()
                },
                "links": [
                    {"target": target, "kind": kind}
                    for target, kind in self.links
                ],
                "events": [
                    {
                        "ts": ts,
                        "name": name,
                        **{k: _jsonable(v) for k, v in fields.items()},
                    }
                    for ts, name, fields in self.events
                ],
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.is_finished else "open"
        return (
            f"<Span {self.span_id} {self.name!r} parent={self.parent_id} "
            f"{state}>"
        )


class SpanRecorder:
    """Thread-safe bounded recorder of :class:`Span` trees.

    Parameters
    ----------
    capacity:
        Ring size; the oldest spans are evicted (and counted in
        :attr:`dropped`) once it fills.
    clock:
        Monotonic time source; pass a virtual clock when recording a
        discrete-event simulation so spans share the simulator's
        timeline.
    sampler:
        Optional :class:`~repro.obs.sampling.HeadSampler`.  When set,
        each *root* span (no parent) consumes one keep/drop decision;
        dropped roots (and their descendants) return the shared
        :attr:`dropped_span` sentinel and are counted in
        :attr:`sampled_out` instead of entering the ring.
    """

    def __init__(
        self,
        capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
        sampler: HeadSampler | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.dropped = 0
        self.sampler = sampler
        #: The shared sampled-out sentinel (identity marks the drop).
        self.dropped_span = DroppedSpan()
        #: Spans not recorded because their trace was sampled out.
        self.sampled_out = 0
        self._mutex = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._next_id = 0
        #: txn id -> the span currently carrying that transaction.
        self._txn_spans: dict[str, Span] = {}
        #: Explicit scope stack (cycle/phase spans) for components
        #: that have no parent handle (e.g. the partitioned matcher).
        self._scopes: list[Span] = []
        #: OS thread ident -> small stable lane id for exporters.
        self._lanes: dict[int, int] = {}

    # -- creation ----------------------------------------------------------------------

    def _lane(self) -> int:
        ident = threading.get_ident()
        lane = self._lanes.get(ident)
        if lane is None:
            lane = len(self._lanes)
            self._lanes[ident] = lane
        return lane

    def start(
        self,
        name: str,
        parent: Span | int | None = None,
        ts: float | None = None,
        **fields: object,
    ) -> Span:
        """Open a span; ``parent`` may be a span, an id, or None.

        With a sampler attached, a parentless span consumes one head
        decision; children of a sampled-out span (the
        :class:`DroppedSpan` sentinel or its ``-1`` id) inherit the
        drop.  The sentinel absorbs all mutation as no-ops, so call
        sites never branch on the decision.
        """
        if isinstance(parent, DroppedSpan) or parent == -1:
            # Single int += under the GIL; this is the hot dropped
            # path and must not pay a lock per sampled-out child.
            self.sampled_out += 1
            return self.dropped_span
        if parent is None and self.sampler is not None:
            if not self.sampler.decide():
                self.sampled_out += 1
                return self.dropped_span
        if ts is None:
            ts = self.clock()
        if isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        with self._mutex:
            self._next_id += 1
            span = Span(
                recorder=self,
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start=ts,
                tid=self._lane(),
                fields=dict(fields),
            )
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Span | int | None = None,
        **fields: object,
    ) -> Span:
        """Add an already-finished span with explicit timestamps.

        The post-hoc entry point for durations measured elsewhere
        (per-shard match times, virtual-time charges).
        """
        span = self.start(name, parent=parent, ts=start, **fields)
        span.finish(ts=end)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        parent: Span | int | None = None,
        scope: bool = False,
        **fields: object,
    ) -> Iterator[Span]:
        """Context-managed span; ``scope=True`` also pushes it on the
        scope stack for the duration of the block."""
        span = self.start(name, parent=parent, **fields)
        if scope:
            self.push_scope(span)
        try:
            yield span
        finally:
            if scope:
                self.pop_scope(span)
            span.finish()

    # -- scope stack -------------------------------------------------------------------

    def push_scope(self, span: Span) -> None:
        with self._mutex:
            self._scopes.append(span)

    def pop_scope(self, span: Span) -> None:
        with self._mutex:
            if span in self._scopes:
                self._scopes.remove(span)

    def current(self) -> Span | None:
        """The innermost scoped span (or None)."""
        with self._mutex:
            return self._scopes[-1] if self._scopes else None

    # -- txn binding -------------------------------------------------------------------

    def bind(self, txn_id: str, span: Span) -> None:
        """Route txn-keyed hooks (locks, faults, rule (ii)) to ``span``.

        Binding a sampled-out sentinel is skipped: ``for_txn`` then
        returns None and txn-keyed hooks short-circuit, which is both
        correct (the trace is dropped) and cheap.
        """
        if isinstance(span, DroppedSpan):
            return
        # Single dict ops are GIL-atomic; no lock on these hot paths.
        self._txn_spans[txn_id] = span

    def unbind(self, txn_id: str) -> None:
        self._txn_spans.pop(txn_id, None)

    def for_txn(self, txn_id: str) -> Span | None:
        return self._txn_spans.get(txn_id)

    def scope_dropped(self) -> bool:
        """True when the active scope's trace was sampled out.

        Instrumented hot loops (the engine's per-candidate span
        creation) use this once per wave to skip span construction
        entirely inside a dropped trace, instead of building kwargs
        for the sentinel to discard span by span.  Suppressed spans do
        not count in :attr:`sampled_out` — that counter tracks spans
        that actually reached the recorder.
        """
        scopes = self._scopes
        return bool(scopes) and scopes[-1].span_id == -1

    # -- inspection --------------------------------------------------------------------

    def spans(self, name: str | None = None) -> list[Span]:
        """Buffered spans (oldest first), optionally filtered by name.

        A ``name`` ending in ``"."`` matches the prefix family, as in
        :meth:`TraceCollector.events`.
        """
        with self._mutex:
            snapshot = list(self._spans)
        if name is None:
            return snapshot
        if name.endswith("."):
            return [s for s in snapshot if s.name.startswith(name)]
        return [s for s in snapshot if s.name == name]

    def get(self, span_id: int) -> Span | None:
        with self._mutex:
            for span in self._spans:
                if span.span_id == span_id:
                    return span
        return None

    def names(self) -> dict[str, int]:
        """Span counts per name — the quick shape of a span tree."""
        out: dict[str, int] = {}
        for span in self.spans():
            out[span.name] = out.get(span.name, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        with self._mutex:
            self._spans.clear()
            self._txn_spans.clear()
            self._scopes.clear()
            self.dropped = 0
            self.sampled_out = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._spans)

    # -- serialization -----------------------------------------------------------------

    def to_json_lines(self, name: str | None = None) -> str:
        """One JSON object per span, oldest first."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True)
            for span in self.spans(name)
        )
