"""Exporters: Chrome trace-event JSON, Prometheus text, JSONL spans.

The bridge from the in-process observability state to standard
tooling:

* :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome
  ``trace_event`` format (``chrome://tracing`` / Perfetto): each
  finished span becomes a complete (``"ph": "X"``) event on its
  recorder lane, span point-annotations become instant events, and
  causal links become flow (``"s"``/``"f"``) arrows — so a rule-(ii)
  abort renders as an arrow from the committing Wa firing to its
  victim.
* :func:`prometheus_text` — the Prometheus text exposition format for
  a :class:`~repro.obs.metrics.MetricsRegistry` snapshot (counters as
  ``_total``, histograms with cumulative ``le`` buckets), scrapeable
  or pushable as-is.
* :func:`spans_json_lines` — one JSON object per span, the archival
  format ``repro obs export --format jsonl`` emits and the
  critical-path analysis re-reads.

Timestamps: span clocks are seconds (wall or virtual); the Chrome
format wants microseconds, so spans are rebased to the earliest start
and scaled by 1e6 — virtual-time traces render on the same viewer.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanRecorder

_SECONDS_TO_US = 1e6


def _spans_of(source: "SpanRecorder | Iterable[Span]") -> list[Span]:
    if isinstance(source, SpanRecorder):
        return source.spans()
    return list(source)


# -- Chrome trace_event ------------------------------------------------------------------


def chrome_trace(
    source: "SpanRecorder | Iterable[Span]",
    process_name: str = "repro",
) -> dict:
    """Spans as a Chrome ``trace_event`` document (JSON-able dict).

    Loads in ``chrome://tracing`` and Perfetto.  Only finished spans
    become duration slices; open spans are skipped (their events are
    still emitted as instants so a crash mid-run loses nothing).
    """
    spans = _spans_of(source)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    if not spans:
        return {"traceEvents": events, "displayTimeUnit": "ms"}
    base = min(s.start for s in spans)

    def us(ts: float) -> float:
        return round((ts - base) * _SECONDS_TO_US, 3)

    flow_id = 0
    for span in spans:
        label = span.fields.get("rule") or span.fields.get("txn")
        name = f"{span.name}[{label}]" if label else span.name
        args = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **{k: _str_safe(v) for k, v in span.fields.items()},
        }
        if span.is_finished:
            events.append(
                {
                    "name": name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": us(span.start),
                    "dur": round(
                        (span.end - span.start) * _SECONDS_TO_US, 3
                    ),
                    "pid": 0,
                    "tid": span.tid,
                    "args": args,
                }
            )
        for ts, event_name, fields in span.events:
            events.append(
                {
                    "name": event_name,
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": us(ts),
                    "pid": 0,
                    "tid": span.tid,
                    "args": {
                        "span_id": span.span_id,
                        **{k: _str_safe(v) for k, v in fields.items()},
                    },
                }
            )
        for target_id, kind in span.links:
            target = next(
                (s for s in spans if s.span_id == target_id), None
            )
            if target is None or not target.is_finished:
                continue
            flow_id += 1
            # Arrow from the cause (target, e.g. the committing Wa
            # txn) to the effect (this span, e.g. the Rc victim).
            events.append(
                {
                    "name": kind,
                    "cat": "link",
                    "ph": "s",
                    "id": flow_id,
                    "ts": us(target.end),
                    "pid": 0,
                    "tid": target.tid,
                    "args": {"from": target.span_id, "to": span.span_id},
                }
            )
            events.append(
                {
                    "name": kind,
                    "cat": "link",
                    "ph": "f",
                    "bp": "e",
                    "id": flow_id,
                    "ts": us(span.end if span.is_finished else span.start),
                    "pid": 0,
                    "tid": span.tid,
                    "args": {"from": target.span_id, "to": span.span_id},
                }
            )
    events.sort(
        key=lambda e: (
            e.get("ph") != "M", e.get("ts", 0.0), e.get("ph") != "X",
        )
    )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _str_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_str_safe(v) for v in value]
    return repr(value)


def chrome_trace_json(
    source: "SpanRecorder | Iterable[Span]",
    process_name: str = "repro",
    indent: int | None = None,
) -> str:
    return json.dumps(
        chrome_trace(source, process_name=process_name), indent=indent
    )


# -- Prometheus text exposition ----------------------------------------------------------


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    metric = "".join(out)
    if metric and metric[0].isdigit():
        metric = "_" + metric
    return "repro_" + metric


def _fmt_value(value: object) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def prometheus_text(
    source: "MetricsRegistry | dict[str, dict]",
) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Counters gain the conventional ``_total`` suffix; gauges also
    export their high watermark as ``<name>_max``; histograms export
    cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``
    (the shape ``histogram_quantile`` expects); quantile sketches
    export as Prometheus summaries — pre-computed
    ``{quantile="..."}`` series plus ``_sum``/``_count``.
    """
    snapshot = (
        source.snapshot() if isinstance(source, MetricsRegistry) else source
    )
    lines: list[str] = []
    for name in sorted(snapshot):
        snap = snapshot[name]
        metric = _prom_name(name)
        kind = snap.get("type")
        if kind == "counter":
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {_fmt_value(snap['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt_value(snap['value'])}")
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {_fmt_value(snap['max'])}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            buckets = snap.get("buckets", {})
            for bound, count in buckets.items():
                if bound == "+inf":
                    continue
                cumulative += count
                lines.append(
                    f'{metric}_bucket{{le="{bound}"}} {cumulative}'
                )
            cumulative += buckets.get("+inf", 0)
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_fmt_value(snap['sum'])}")
            lines.append(f"{metric}_count {snap['count']}")
        elif kind == "sketch":
            lines.append(f"# TYPE {metric} summary")
            for q, estimate in snap.get("quantiles", {}).items():
                lines.append(
                    f'{metric}{{quantile="{q}"}} {_fmt_value(estimate)}'
                )
            lines.append(f"{metric}_sum {_fmt_value(snap['sum'])}")
            lines.append(f"{metric}_count {snap['count']}")
        else:  # pragma: no cover - future instrument types
            lines.append(f"# {name}: unknown instrument type {kind!r}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- JSONL spans -------------------------------------------------------------------------


def spans_json_lines(source: "SpanRecorder | Iterable[Span]") -> str:
    """One JSON object per span, oldest first."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True)
        for span in _spans_of(source)
    )


def load_spans_json_lines(text: str) -> list[dict]:
    """Parse a JSONL span dump back into span dicts (for analysis)."""
    out = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
