"""Structured trace events with a bounded ring-buffer collector.

The Section 5 evaluation is entirely about *measured* behavior — abort
rates under the Rc/Ra/Wa commit rule, lock-wait time under 2PL,
speedup against processors.  The trace layer is the raw-material side
of that measurement: instrumented components (lock manager, schemes,
engines, simulators) emit small immutable :class:`TraceEvent` records
— lock request → grant/wait/deny/cancel, rule-(ii) abort, wave
start/end, rollback — into a :class:`TraceCollector`.

Design constraints:

* **Bounded memory.**  Events live in a ring buffer; overflow drops
  the oldest and counts the loss (``dropped``) rather than growing or
  raising, so tracing can stay on across arbitrarily long runs.
* **Monotonic timestamps.**  The default clock is
  :func:`time.perf_counter`; discrete-event simulators substitute
  their virtual clock via :meth:`TraceCollector.emit_at`, so wall and
  virtual time never mix within one record.
* **Machine readable.**  ``to_json_lines`` emits one JSON object per
  event, the format the ``repro trace`` CLI prints and benchmarks
  archive.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator, NamedTuple


class TraceEvent(NamedTuple):
    """One instrumented occurrence.

    ``kind`` is a dotted lowercase path (``"lock.grant"``,
    ``"wave.start"``, ``"rc.rule_ii_abort"``); ``fields`` carry the
    event-specific scalars (txn ids, object reprs, durations).

    A named tuple rather than a frozen dataclass: construction is one
    C call, and at the ``full`` observer level every hook builds one
    of these, so the constructor is a hot path.
    """

    seq: int
    ts: float
    kind: str
    fields: tuple = ()

    def get(self, key: str, default: object = None) -> object:
        for name, value in self.fields:
            if name == key:
                return value
        return default

    def to_dict(self) -> dict:
        out: dict = {"seq": self.seq, "ts": self.ts, "kind": self.kind}
        out.update(self.fields)
        return out

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"[{self.ts:.6f}] {self.kind} {payload}".rstrip()


def _jsonable(value: object) -> object:
    """Coerce a field value to something ``json.dumps`` accepts.

    Containers are converted structurally (sets deterministically, by
    sorted repr); everything else non-scalar falls back to ``repr``.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return [_jsonable(v) for v in sorted(value, key=repr)]
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


class TraceCollector:
    """Thread-safe bounded collector of :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest events are evicted (and counted
        in :attr:`dropped`) once it fills.
    clock:
        Monotonic time source used by :meth:`emit`; defaults to
        :func:`time.perf_counter`.
    """

    def __init__(
        self,
        capacity: int = 65_536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._mutex = threading.Lock()

    # -- emission ------------------------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> TraceEvent:
        """Record an event stamped with the collector's clock."""
        return self.emit_at(self.clock(), kind, **fields)

    def emit_at(self, ts: float, kind: str, **fields: object) -> TraceEvent:
        """Record an event with an explicit timestamp (virtual time)."""
        with self._mutex:
            self._seq += 1
            event = TraceEvent(
                seq=self._seq,
                ts=ts,
                kind=kind,
                fields=tuple(fields.items()),
            )
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(event)
            return event

    @contextmanager
    def span(self, kind: str, **fields: object) -> Iterator[TraceEvent]:
        """Emit ``kind.start`` / ``kind.end`` around a block.

        The end event repeats the start fields and adds the elapsed
        ``duration`` (in clock units), so wave and firing intervals can
        be reconstructed without pairing logic downstream.  Both
        timestamps come from the *collector's* clock; owners living on
        a different (virtual) clock must use :meth:`span_at` instead,
        or the record would mix wall and virtual time — the invariant
        this module promises never to break.
        """
        with self.span_at(kind, self.clock, **fields) as start:
            yield start

    @contextmanager
    def span_at(
        self,
        kind: str,
        clock: Callable[[], float],
        **fields: object,
    ) -> Iterator[TraceEvent]:
        """:meth:`span`, stamped with a caller-supplied clock.

        The virtual-time counterpart of :meth:`emit_at`: a simulator
        passes its own clock and both the start and end events (and the
        computed ``duration``) live on that timeline.  A caller-supplied
        ``duration`` field would silently collide with the computed one,
        so it is rejected.
        """
        if "duration" in fields:
            raise ValueError(
                f"span {kind!r}: 'duration' is computed by the span and "
                "cannot be passed as a field"
            )
        start = self.emit_at(clock(), f"{kind}.start", **fields)
        try:
            yield start
        finally:
            end_ts = clock()
            self.emit_at(
                end_ts, f"{kind}.end", duration=end_ts - start.ts, **fields
            )

    # -- inspection ----------------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All buffered events (oldest first), optionally one kind.

        A ``kind`` ending in ``"."`` matches the whole prefix family
        (``events("lock.")`` returns grants, waits, denials, ...).
        """
        with self._mutex:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        if kind.endswith("."):
            return [e for e in snapshot if e.kind.startswith(kind)]
        return [e for e in snapshot if e.kind == kind]

    def kinds(self) -> dict[str, int]:
        """Event counts per kind — the quick shape of a trace."""
        out: dict[str, int] = {}
        for event in self.events():
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def clear(self) -> None:
        with self._mutex:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._events)

    # -- serialization -------------------------------------------------------------------

    def to_json_lines(self, kind: str | None = None) -> str:
        """One JSON object per line, oldest event first."""
        return "\n".join(
            json.dumps(
                {k: _jsonable(v) for k, v in event.to_dict().items()},
                sort_keys=True,
            )
            for event in self.events(kind)
        )
