"""Counters, gauges and fixed-bucket histograms with JSON snapshots.

The aggregate side of the observability layer: where the trace records
*what happened when*, the metrics registry keeps the running totals
the Section 5 figures are made of — lock-wait time distributions, wave
widths, abort/defer/commit rates, match latency, queue depth.

Instruments are deliberately minimal (Prometheus-shaped, no labels):

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-set value plus high-watermark (queue depths);
* :class:`Histogram` — fixed upper-bound buckets with count/sum, so a
  snapshot is O(buckets) regardless of how many observations flowed
  through the hot path;
* :class:`QuantileSketch` — a fixed-budget reservoir with
  deterministic seeding, the always-on percentile instrument
  (p50/p95/p99 of cycle latency, lock wait, firing duration, ...)
  whose memory never grows past its budget.

A :class:`MetricsRegistry` owns the instruments by name and produces
one JSON-able snapshot of everything — the payload ``repro metrics``
prints and the benchmark harness archives next to its ``BENCH_*.json``
results.  Registration is copy-on-write: readers (``snapshot``,
``names``, ``get``) dereference one immutable dict and never take the
registry mutex, so a scrape racing a ``_get_or_create`` on another
thread always sees a consistent instrument table.
"""

from __future__ import annotations

import json
import random
import threading
import zlib
from bisect import bisect_left
from typing import Sequence

#: Default histogram buckets for durations in seconds: exponential
#: from 1 microsecond to 10 s (lock waits and match latencies at test
#: and bench scale land comfortably inside).
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for small cardinalities (wave width, queue depth).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing total.

    ``inc`` runs under a per-instrument lock: worker threads (the
    threaded wave executor, partitioned match shards) update shared
    instruments directly, and an unlocked read-modify-write would
    drop increments under contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; remembers its high watermark."""

    __slots__ = ("name", "value", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """Fixed cumulative-style buckets (counts per upper bound).

    ``buckets`` are strictly increasing upper bounds; observations
    above the last bound land in the implicit ``+inf`` bucket.  Counts
    here are *per-bucket* (not cumulative); the snapshot carries the
    bounds so consumers can cumulate either way.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "sum", "min", "max", "_lock",
    )

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name}: bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(self.bounds, self.counts)
            }
            buckets["+inf"] = self.counts[-1]
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": buckets,
            }


#: Quantiles every sketch reports by default.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.9, 0.95, 0.99)

#: Default reservoir budget.  Rank-space standard error for quantile q
#: is ~sqrt(q(1-q)/k); at k = 512 the p95 estimate sits within ~1
#: percentile rank and p99 within ~0.5 — plenty for health thresholds
#: and dashboard percentiles at a fixed 4 KiB of floats.
DEFAULT_SKETCH_BUDGET = 512


class QuantileSketch:
    """Fixed-memory streaming quantiles: a seeded reservoir (Vitter's
    algorithm R).

    The always-on counterpart of :class:`Histogram`: where the
    histogram answers "how many landed under each bound", the sketch
    answers "what is p99" without pre-chosen bounds.  Memory is fixed
    at ``budget`` floats; every observation past the budget replaces a
    uniformly random resident.

    Seeding is **deterministic by name** (CRC32 of the instrument
    name unless an explicit seed is given), so the same observation
    stream produces the same reservoir — and therefore the same
    reported percentiles — across runs.  That keeps sampled
    benchmarks and golden tests reproducible.
    """

    __slots__ = (
        "name", "budget", "quantiles", "count", "sum", "min", "max",
        "_values", "_rng", "_lock",
    )

    def __init__(
        self,
        name: str,
        budget: int = DEFAULT_SKETCH_BUDGET,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        seed: int | None = None,
    ) -> None:
        if budget < 1:
            raise ValueError(
                f"sketch {name}: budget must be >= 1, got {budget}"
            )
        qs = tuple(float(q) for q in quantiles)
        if any(not 0.0 < q < 1.0 for q in qs):
            raise ValueError(
                f"sketch {name}: quantiles must be in (0, 1), got {qs}"
            )
        self.name = name
        self.budget = budget
        self.quantiles = qs
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._values: list[float] = []
        self._rng = random.Random(
            zlib.crc32(name.encode("utf-8")) if seed is None else seed
        )
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self._values) < self.budget:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.budget:
                    self._values[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Nearest-rank estimate of quantile ``q`` (None when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if not self._values:
                return None
            ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
        if q >= 1.0:
            rank = len(ordered) - 1
        return ordered[rank]

    def snapshot(self) -> dict:
        with self._lock:
            ordered = sorted(self._values)
            count, total = self.count, self.sum
            vmin = self.min if self.count else None
            vmax = self.max if self.count else None
        estimates: dict[str, float | None] = {}
        for q in self.quantiles:
            if not ordered:
                estimates[f"{q:g}"] = None
                continue
            rank = min(len(ordered) - 1, max(0, round(q * len(ordered)) - 1))
            estimates[f"{q:g}"] = ordered[rank]
        return {
            "type": "sketch",
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": vmin,
            "max": vmax,
            "budget": self.budget,
            "quantiles": estimates,
        }


Instrument = "Counter | Gauge | Histogram | QuantileSketch"


class MetricsRegistry:
    """Named instruments with idempotent creation and one snapshot.

    ``counter``/``gauge``/``histogram``/``sketch`` return the existing
    instrument when the name is already registered (so call sites need
    no create-or-lookup dance); asking for a name under a different
    instrument type is a bug and raises.

    Thread contract: the instrument table is **copy-on-write** — a
    writer inside ``_get_or_create`` builds a new dict and publishes
    it with one reference assignment, so ``snapshot()``, ``names()``
    and ``get()`` read a single immutable table without taking the
    mutex.  A scrape that races registration sees either the table
    before or after the new instrument, never a half-updated view
    (pinned by the register-while-snapshot hammer test).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._mutex = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def sketch(
        self,
        name: str,
        budget: int = DEFAULT_SKETCH_BUDGET,
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
    ) -> QuantileSketch:
        return self._get_or_create(
            name,
            QuantileSketch,
            lambda: QuantileSketch(name, budget=budget, quantiles=quantiles),
        )

    def _get_or_create(self, name, cls, factory):
        # Lock-free fast path: one atomic read of the published table.
        existing = self._instruments.get(name)
        if existing is None:
            with self._mutex:
                existing = self._instruments.get(name)
                if existing is None:
                    instrument = factory()
                    updated = dict(self._instruments)
                    updated[name] = instrument
                    # One reference assignment publishes the new table.
                    self._instruments = updated
                    return instrument
        if not isinstance(existing, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}, not {cls.__name__}"
            )
        return existing

    def get(self, name: str):
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-able mapping, sorted by name.

        Iterates one published table: concurrent registrations land in
        a *replacement* dict, so the iteration can never see a
        mid-mutation view.
        """
        items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
