"""Counters, gauges and fixed-bucket histograms with JSON snapshots.

The aggregate side of the observability layer: where the trace records
*what happened when*, the metrics registry keeps the running totals
the Section 5 figures are made of — lock-wait time distributions, wave
widths, abort/defer/commit rates, match latency, queue depth.

Instruments are deliberately minimal (Prometheus-shaped, no labels):

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-set value plus high-watermark (queue depths);
* :class:`Histogram` — fixed upper-bound buckets with count/sum, so a
  snapshot is O(buckets) regardless of how many observations flowed
  through the hot path.

A :class:`MetricsRegistry` owns the instruments by name and produces
one JSON-able snapshot of everything — the payload ``repro metrics``
prints and the benchmark harness archives next to its ``BENCH_*.json``
results.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Sequence

#: Default histogram buckets for durations in seconds: exponential
#: from 1 microsecond to 10 s (lock waits and match latencies at test
#: and bench scale land comfortably inside).
TIME_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for small cardinalities (wave width, queue depth).
COUNT_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
)


class Counter:
    """A monotonically increasing total.

    ``inc`` runs under a per-instrument lock: worker threads (the
    threaded wave executor, partitioned match shards) update shared
    instruments directly, and an unlocked read-modify-write would
    drop increments under contention.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative inc {amount}")
        with self._lock:
            self.value += amount

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "counter", "value": self.value}


class Gauge:
    """A point-in-time value; remembers its high watermark."""

    __slots__ = ("name", "value", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            if value > self.max:
                self.max = value

    def snapshot(self) -> dict:
        with self._lock:
            return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """Fixed cumulative-style buckets (counts per upper bound).

    ``buckets`` are strictly increasing upper bounds; observations
    above the last bound land in the implicit ``+inf`` bucket.  Counts
    here are *per-bucket* (not cumulative); the snapshot carries the
    bounds so consumers can cumulate either way.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "sum", "min", "max", "_lock",
    )

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram {name}: bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = +inf
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            buckets = {
                f"{bound:g}": count
                for bound, count in zip(self.bounds, self.counts)
            }
            buckets["+inf"] = self.counts[-1]
            return {
                "type": "histogram",
                "count": self.count,
                "sum": self.sum,
                "mean": self.mean,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named instruments with idempotent creation and one snapshot.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (so call sites need no
    create-or-lookup dance); asking for a name under a different
    instrument type is a bug and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._mutex = threading.Lock()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(
        self, name: str, buckets: Sequence[float] = TIME_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, buckets)
        )

    def _get_or_create(self, name, cls, factory):
        with self._mutex:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        with self._mutex:
            return self._instruments.get(name)

    def names(self) -> list[str]:
        with self._mutex:
            return sorted(self._instruments)

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-able mapping, sorted by name."""
        with self._mutex:
            items = sorted(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in items}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
