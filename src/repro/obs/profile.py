"""Per-rule self-time profiler: where does each production spend its wall?

The paper's measurement question — match vs. lock vs. RHS — asked
continuously, per production, at production-run cost.  The profiler is
a pure aggregate: a dict of per-rule accumulators fed from the span
close hooks in the engines, so it works at every observer level
(including ``sampled`` runs where most span trees are dropped —
profiling sees *every* firing, sampling only thins the causal detail).

Four buckets per rule:

* ``match``   — recognize time.  Engine-level match latency lands on
  the ``(match)`` pseudo-rule because the matcher does not know which
  rule's candidates a wave will select; partitioned flush time is part
  of this window (or of the firing that triggered it) and is therefore
  *not* double-recorded here.
* ``lock_wait`` — time a rule's transaction spent queued for locks.
  Lock grants only know the transaction id, so waits park in a
  per-transaction pending table and are claimed by the next
  ``record_acquire``/``record_firing`` for that transaction — the
  call that *does* know the rule.
* ``acquire`` — lock acquisition self-time (acquire span duration
  minus the claimed lock wait).
* ``rhs``     — right-hand-side execution self-time (firing span
  duration minus any wait claimed inside it — the threaded executor
  acquires locks inside the firing attempt).

``coverage()`` is the honesty check: attributed seconds over run wall
seconds.  The obs issue requires ≥ 0.9 on a Manners run; anything
lower means an engine phase is not reporting its close times.
"""

from __future__ import annotations

import threading

#: Attribution buckets, in display order.
BUCKETS = ("match", "lock_wait", "acquire", "rhs")

#: Pseudo-rule that owns engine-level match time.
MATCH_RULE = "(match)"


class RuleStats:
    """Accumulated self-time for one production."""

    __slots__ = ("rule", "firings", "match", "lock_wait", "acquire", "rhs")

    def __init__(self, rule: str) -> None:
        self.rule = rule
        self.firings = 0
        self.match = 0.0
        self.lock_wait = 0.0
        self.acquire = 0.0
        self.rhs = 0.0

    @property
    def total(self) -> float:
        return self.match + self.lock_wait + self.acquire + self.rhs

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "firings": self.firings,
            "total_seconds": self.total,
            "match": self.match,
            "lock_wait": self.lock_wait,
            "acquire": self.acquire,
            "rhs": self.rhs,
        }


class RuleProfiler:
    """Thread-safe per-rule time attribution.

    All mutation runs under one lock; every record call is a handful
    of float adds, cheap enough for the always-on ``sampled`` level.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._rules: dict[str, RuleStats] = {}
        #: Lock-wait seconds parked per transaction until a rule-aware
        #: close (acquire/firing) claims them.
        self._pending_wait: dict[str, float] = {}
        self.run_wall = 0.0
        self.runs = 0

    def _stats(self, rule: str) -> RuleStats:
        stats = self._rules.get(rule)
        if stats is None:
            stats = RuleStats(rule)
            self._rules[rule] = stats
        return stats

    # -- feeding (called from Observer hooks) ----------------------------------------------

    def record_wait(self, txn_id: str, seconds: float) -> None:
        """A lock grant reported ``seconds`` of queue wait for a txn."""
        if seconds <= 0.0:
            return
        with self._mutex:
            self._pending_wait[txn_id] = (
                self._pending_wait.get(txn_id, 0.0) + seconds
            )

    def record_match(self, seconds: float) -> None:
        """Engine-level match latency for one cycle."""
        with self._mutex:
            self._stats(MATCH_RULE).match += seconds

    def record_acquire(
        self, rule: str, txn_id: str, seconds: float
    ) -> None:
        """An acquire span closed: claim the txn's parked lock wait."""
        with self._mutex:
            wait = min(self._pending_wait.pop(txn_id, 0.0), seconds)
            stats = self._stats(rule)
            stats.lock_wait += wait
            stats.acquire += max(0.0, seconds - wait)

    def record_firing(
        self, rule: str, txn_id: str | None, seconds: float
    ) -> None:
        """A firing span closed: RHS self-time (minus waits inside it)."""
        with self._mutex:
            wait = 0.0
            if txn_id is not None:
                wait = min(self._pending_wait.pop(txn_id, 0.0), seconds)
            stats = self._stats(rule)
            stats.firings += 1
            stats.lock_wait += wait
            stats.rhs += max(0.0, seconds - wait)

    def record_run(self, wall_seconds: float) -> None:
        """A run span closed; wall time is the coverage denominator."""
        with self._mutex:
            self.runs += 1
            self.run_wall += wall_seconds

    # -- reading ---------------------------------------------------------------------------

    def attributed(self) -> float:
        """Total seconds attributed across all rules and buckets."""
        with self._mutex:
            return sum(s.total for s in self._rules.values())

    def coverage(self) -> float | None:
        """Attributed / run wall, or None before any run finished.

        Can exceed 1.0 under the threaded executor (thread self-times
        sum across cores); the acceptance bar is a floor, not a ceiling.
        """
        with self._mutex:
            if self.run_wall <= 0.0:
                return None
            total = sum(s.total for s in self._rules.values())
            return total / self.run_wall

    def top(self, n: int = 10) -> list[RuleStats]:
        """The ``n`` most expensive rules by total self-time."""
        with self._mutex:
            ranked = sorted(
                self._rules.values(), key=lambda s: s.total, reverse=True
            )
        return ranked[:n]

    def snapshot(self) -> dict:
        with self._mutex:
            rules = sorted(
                (s.to_dict() for s in self._rules.values()),
                key=lambda row: row["total_seconds"],
                reverse=True,
            )
            run_wall = self.run_wall
            runs = self.runs
            unclaimed = sum(self._pending_wait.values())
        attributed = sum(row["total_seconds"] for row in rules)
        return {
            "runs": runs,
            "run_wall_seconds": run_wall,
            "attributed_seconds": attributed,
            "coverage": (attributed / run_wall) if run_wall > 0 else None,
            "unclaimed_wait_seconds": unclaimed,
            "rules": rules,
        }

    def clear(self) -> None:
        with self._mutex:
            self._rules.clear()
            self._pending_wait.clear()
            self.run_wall = 0.0
            self.runs = 0


def render_profile(snapshot: dict, top_n: int = 10) -> str:
    """The ``repro obs profile`` table: top-N rules by self-time."""
    rules = snapshot["rules"][:top_n]
    lines = []
    run_wall = snapshot["run_wall_seconds"]
    coverage = snapshot["coverage"]
    lines.append(
        f"runs={snapshot['runs']}  wall={run_wall:.6f}s  "
        f"attributed={snapshot['attributed_seconds']:.6f}s"
        + (f"  coverage={coverage:.1%}" if coverage is not None else "")
    )
    header = (
        f"{'rule':<28} {'firings':>7} {'total':>10} {'match':>10} "
        f"{'lock_wait':>10} {'acquire':>10} {'rhs':>10} {'share':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rules:
        total = row["total_seconds"]
        share = total / run_wall if run_wall > 0 else 0.0
        lines.append(
            f"{row['rule']:<28.28} {row['firings']:>7} {total:>10.6f} "
            f"{row['match']:>10.6f} {row['lock_wait']:>10.6f} "
            f"{row['acquire']:>10.6f} {row['rhs']:>10.6f} {share:>6.1%}"
        )
    if not rules:
        lines.append("(no attributed time)")
    return "\n".join(lines)
