"""Observability: traces + metrics + causal spans for engines and locks.

The measurement substrate behind the Section 5 evaluation, and — as
of the telemetry PR — an always-on production layer: head-sampled
span trees (:mod:`repro.obs.sampling`), fixed-memory quantile
sketches (:class:`QuantileSketch`), a per-rule self-time profiler
(:mod:`repro.obs.profile`) and a rolling-window health watchdog
(:mod:`repro.obs.health`).  Core pieces:

* :mod:`repro.obs.trace` — immutable :class:`TraceEvent` records in a
  bounded ring buffer (:class:`TraceCollector`);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms with a JSON snapshot;
* :mod:`repro.obs.spans` — the causal :class:`Span` tree (cycle →
  phase → firing → lock) with rule-(ii) abort links;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, Prometheus
  text exposition, and JSONL span dumps;
* :mod:`repro.obs.observer` — the :class:`Observer` facade whose
  semantic hooks the lock manager, lock schemes, engines and
  simulators call.

Instrumentation is **off by default**: components resolve the
module-level default observer at construction time, and that default
is the inert :data:`NULL_OBSERVER` until :func:`enable` (or the
:func:`observed` context manager) installs a live one.  Every hot-path
call site is guarded with ``if obs.enabled:``, so a run without
observability pays one attribute load per site.

Typical use::

    import repro.obs as obs

    with obs.observed() as observer:
        engine = ParallelEngine(rules, wm, scheme="rc")
        engine.run()
    print(observer.trace.kinds())
    print(observer.metrics.to_json())

Components also accept an explicit ``observer=`` argument for
isolated measurement (several engines, separate registries).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.obs.health import (
    GREEN,
    HealthMonitor,
    HealthReport,
    RED,
    YELLOW,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
    TIME_BUCKETS,
)
from repro.obs.observer import (
    LEVELS,
    NULL_OBSERVER,
    NullObserver,
    Observer,
)
from repro.obs.profile import RuleProfiler, render_profile
from repro.obs.sampling import DroppedSpan, HeadSampler
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import TraceCollector, TraceEvent

_default: Observer | NullObserver = NULL_OBSERVER


def get_observer() -> Observer | NullObserver:
    """The observer newly constructed components will attach to."""
    return _default


def set_observer(
    observer: Observer | NullObserver,
) -> Observer | NullObserver:
    """Install ``observer`` as the default; returns the previous one."""
    global _default
    previous = _default
    _default = observer
    return previous


def enable(
    trace_capacity: int = 65_536,
    clock: Callable[[], float] | None = None,
    level: str = "full",
    sample_rate: float = 0.1,
    sample_seed: int = 0,
) -> Observer:
    """Create a live :class:`Observer` and make it the default.

    Only components constructed *after* this call pick it up — enable
    observability before building engines/managers.
    """
    observer = Observer(
        trace_capacity=trace_capacity, clock=clock, level=level,
        sample_rate=sample_rate, sample_seed=sample_seed,
    )
    set_observer(observer)
    return observer


def disable() -> None:
    """Restore the inert default observer."""
    set_observer(NULL_OBSERVER)


@contextmanager
def observed(
    trace_capacity: int = 65_536,
    clock: Callable[[], float] | None = None,
    level: str = "full",
    sample_rate: float = 0.1,
    sample_seed: int = 0,
) -> Iterator[Observer]:
    """Scoped :func:`enable`: restores the previous default on exit."""
    observer = Observer(
        trace_capacity=trace_capacity, clock=clock, level=level,
        sample_rate=sample_rate, sample_seed=sample_seed,
    )
    previous = set_observer(observer)
    try:
        yield observer
    finally:
        set_observer(previous)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileSketch",
    "MetricsRegistry",
    "TIME_BUCKETS",
    "COUNT_BUCKETS",
    "TraceCollector",
    "TraceEvent",
    "Span",
    "SpanRecorder",
    "HeadSampler",
    "DroppedSpan",
    "RuleProfiler",
    "render_profile",
    "HealthMonitor",
    "HealthReport",
    "GREEN",
    "YELLOW",
    "RED",
    "LEVELS",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "get_observer",
    "set_observer",
    "enable",
    "disable",
    "observed",
]
