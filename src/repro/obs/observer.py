"""The observer facade: named hooks over one trace + one registry.

Instrumented components (lock manager, lock schemes, engines,
simulators) do not build trace events or look up metrics themselves —
they call semantic hooks on an :class:`Observer` (``lock_granted``,
``rule_ii_abort``, ``wave_finished``, ...).  The observer translates
each hook into a trace event and the matching metric updates, keeping
every instrumentation point a one-liner and the naming scheme in one
place.

The hot-path contract: components hold a reference to an observer and
guard every hook call with ``if obs.enabled:``.  The default observer
is :data:`NULL_OBSERVER` (``enabled = False``), so an uninstrumented
run costs one attribute load and a falsy branch per site — nothing is
allocated, stamped or counted (the < 5 % bench-regression budget in
the observability issue).
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    TIME_BUCKETS,
)
from repro.obs.trace import TraceCollector


class Observer:
    """Live observer: every hook traces and meters.

    Parameters
    ----------
    trace_capacity:
        Ring-buffer size for the trace collector.
    clock:
        Monotonic time source shared by trace and wait-timing; pass a
        virtual clock when observing a discrete-event simulation.
    """

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 65_536,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if clock is None:
            self.trace = TraceCollector(capacity=trace_capacity)
        else:
            self.trace = TraceCollector(
                capacity=trace_capacity, clock=clock
            )
        self.metrics = MetricsRegistry()
        self._mutex = threading.Lock()
        m = self.metrics
        self._lock_wait = m.histogram("lock.wait_seconds", TIME_BUCKETS)
        self._queue_depth = m.gauge("lock.queue_depth")
        self._wave_width = m.histogram("wave.width", COUNT_BUCKETS)
        self._match_latency = m.histogram(
            "engine.match_seconds", TIME_BUCKETS
        )
        self._shard_match = m.histogram(
            "match.shard_seconds", TIME_BUCKETS
        )
        self._batch_size = m.histogram("match.batch_size", COUNT_BUCKETS)
        self._merge_time = m.histogram("match.merge_seconds", TIME_BUCKETS)
        self._retry_delay = m.histogram(
            "retry.backoff_seconds", TIME_BUCKETS
        )

    def clock(self) -> float:
        return self.trace.clock()

    # -- lock manager ----------------------------------------------------------------------

    def lock_granted(
        self, txn_id: str, obj: object, mode: str,
        waited: float, queued: bool,
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.grants").inc()
            self._lock_wait.observe(waited)
        self.trace.emit(
            "lock.grant", txn=txn_id, obj=repr(obj), mode=mode,
            waited=waited, queued=queued,
        )

    def lock_queued(
        self, txn_id: str, obj: object, mode: str, depth: int
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.waits").inc()
            self._queue_depth.set(depth)
        self.trace.emit(
            "lock.wait", txn=txn_id, obj=repr(obj), mode=mode, depth=depth
        )

    def lock_denied(
        self, txn_id: str, obj: object, mode: str, reason: str
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.denials").inc()
        self.trace.emit(
            "lock.deny", txn=txn_id, obj=repr(obj), mode=mode,
            reason=reason,
        )

    def lock_cancelled(self, txn_id: str, obj: object, mode: str) -> None:
        with self._mutex:
            self.metrics.counter("lock.cancels").inc()
        self.trace.emit(
            "lock.cancel", txn=txn_id, obj=repr(obj), mode=mode
        )

    # -- lock schemes ----------------------------------------------------------------------

    def txn_committed(self, txn_id: str, scheme: str) -> None:
        with self._mutex:
            self.metrics.counter("txn.commits").inc()
        self.trace.emit("txn.commit", txn=txn_id, scheme=scheme)

    def txn_aborted(self, txn_id: str, scheme: str, reason: str) -> None:
        with self._mutex:
            self.metrics.counter("txn.aborts").inc()
        self.trace.emit(
            "txn.abort", txn=txn_id, scheme=scheme, reason=reason
        )

    def rule_ii_abort(
        self, victim_id: str, committer_id: str, objs: Iterable[object]
    ) -> None:
        """A Wa commit force-aborted an Rc holder (Section 4.3)."""
        with self._mutex:
            self.metrics.counter("rc.rule_ii_aborts").inc()
        self.trace.emit(
            "rc.rule_ii_abort", victim=victim_id, committer=committer_id,
            objs=tuple(repr(o) for o in objs),
        )

    def revalidation_spared(
        self, holder_id: str, committer_id: str
    ) -> None:
        with self._mutex:
            self.metrics.counter("rc.revalidated").inc()
        self.trace.emit(
            "rc.revalidated", holder=holder_id, committer=committer_id
        )

    # -- engines ---------------------------------------------------------------------------

    def wave_started(self, wave: int, candidates: int) -> None:
        with self._mutex:
            self._wave_width.observe(candidates)
        self.trace.emit("wave.start", wave=wave, candidates=candidates)

    def wave_finished(
        self, wave: int, committed: int, aborted: int, deferred: int,
        duration: float,
    ) -> None:
        with self._mutex:
            m = self.metrics
            m.counter("wave.count").inc()
            m.counter("firing.committed").inc(committed)
            m.counter("firing.aborted").inc(aborted)
            m.counter("firing.deferred").inc(deferred)
        self.trace.emit(
            "wave.end", wave=wave, committed=committed, aborted=aborted,
            deferred=deferred, duration=duration,
        )

    def firing_committed(self, rule: str, cycle: int) -> None:
        self.trace.emit("firing.commit", rule=rule, cycle=cycle)

    def rollback(self, txn_id: str, undone: int) -> None:
        with self._mutex:
            self.metrics.counter("engine.rollbacks").inc()
        self.trace.emit("engine.rollback", txn=txn_id, undone=undone)

    def match_latency(self, seconds: float) -> None:
        with self._mutex:
            self._match_latency.observe(seconds)

    # -- robustness (faults / retries / deadlocks) -----------------------------------------

    def fault_injected(
        self, kind: str, txn_id: str, site: str, detail: str = ""
    ) -> None:
        """The fault layer fired one injected fault at a site."""
        with self._mutex:
            self.metrics.counter("fault.injected").inc()
            self.metrics.counter(f"fault.injected.{kind}").inc()
        self.trace.emit(
            "fault.injected", kind=kind, txn=txn_id, site=site,
            detail=detail,
        )

    def retry_attempt(
        self, rule: str, attempt: int, delay: float, reason: str
    ) -> None:
        """A timed-out/aborted firing is being re-driven after backoff."""
        with self._mutex:
            self.metrics.counter("retry.attempts").inc()
            self._retry_delay.observe(delay)
        self.trace.emit(
            "retry.attempt", rule=rule, attempt=attempt, delay=delay,
            reason=reason,
        )

    def retry_exhausted(self, rule: str, attempts: int, reason: str) -> None:
        """A firing used up its retry budget and was abandoned."""
        with self._mutex:
            self.metrics.counter("retry.exhausted").inc()
        self.trace.emit(
            "retry.exhausted", rule=rule, attempts=attempts, reason=reason
        )

    def deadlock_victim(
        self, txn_id: str, cycle: Iterable[str], policy: str
    ) -> None:
        """Deadlock detection chose and aborted a victim."""
        with self._mutex:
            self.metrics.counter("deadlock.victims").inc()
        self.trace.emit(
            "deadlock.victim", victim=txn_id, cycle=tuple(cycle),
            policy=policy,
        )

    # -- partitioned match -----------------------------------------------------------------

    def shard_match(self, shard: int, seconds: float, deltas: int) -> None:
        """One shard finished matching a delta batch."""
        with self._mutex:
            self._shard_match.observe(seconds)
        self.trace.emit(
            "match.shard", shard=shard, seconds=seconds, deltas=deltas
        )

    def match_batch(
        self, size: int, shards: int, merge_seconds: float
    ) -> None:
        """A partitioned delta batch was matched and merged."""
        with self._mutex:
            self.metrics.counter("match.batches").inc()
            self._batch_size.observe(size)
            self._merge_time.observe(merge_seconds)
        self.trace.emit(
            "match.batch", size=size, shards=shards,
            merge_seconds=merge_seconds,
        )

    # -- simulators ------------------------------------------------------------------------

    def sim_event(self, ts: float, kind: str, **fields: object) -> None:
        """Virtual-time event from a discrete-event simulation."""
        with self._mutex:
            self.metrics.counter(f"{kind}.count").inc()
        self.trace.emit_at(ts, kind, **fields)

    def sim_observe(
        self, name: str, value: float,
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> None:
        """Record a virtual-time duration into a named histogram."""
        with self._mutex:
            self.metrics.histogram(name, buckets).observe(value)


def _noop(self, *args, **kwargs) -> None:
    return None


class NullObserver:
    """The disabled observer: every hook is a no-op.

    ``enabled`` is False, so correctly guarded call sites never even
    invoke the hooks; the no-op methods are a safety net for unguarded
    (cold-path) calls.
    """

    enabled = False

    def clock(self) -> float:
        return 0.0


for _name in [
    attr
    for attr in vars(Observer)
    if not attr.startswith("_") and callable(getattr(Observer, attr))
    and attr != "clock"
]:
    setattr(NullObserver, _name, _noop)


#: The process-wide disabled observer (see :mod:`repro.obs`).
NULL_OBSERVER = NullObserver()
