"""The observer facade: named hooks over one trace + registry + spans.

Instrumented components (lock manager, lock schemes, engines,
simulators) do not build trace events or look up metrics themselves —
they call semantic hooks on an :class:`Observer` (``lock_granted``,
``rule_ii_abort``, ``wave_finished``, ...).  The observer translates
each hook into a trace event, the matching metric updates, and — when
span recording is on — the matching mutation of the causal span tree
(:mod:`repro.obs.spans`), keeping every instrumentation point a
one-liner and the naming scheme in one place.

Hooks that only know a transaction id reach the right span through
the recorder's txn binding: the engines bind each transaction to its
acquire/firing span, so a lock grant becomes a ``lock.acquire`` child
span, a fault annotates the firing it hit, and a rule-(ii) abort
links the victim's span to the committing Wa transaction's span.

The hot-path contract: components hold a reference to an observer and
guard every hook call with ``if obs.enabled:``.  The default observer
is :data:`NULL_OBSERVER` (``enabled = False``), so an uninstrumented
run costs one attribute load and a falsy branch per site — nothing is
allocated, stamped or counted (the < 5 % bench-regression budget in
the observability issue).  A live observer's cost is tiered by
``level``: ``"metrics"`` (counters/histograms only), ``"trace"``
(+ ring-buffer events — the PR-1 behavior), ``"full"`` (+ spans, the
default); ``benchmarks/bench_obs_overhead.py`` measures the tiers.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable

from repro.obs.metrics import (
    COUNT_BUCKETS,
    MetricsRegistry,
    TIME_BUCKETS,
)
from repro.obs.spans import Span, SpanRecorder
from repro.obs.trace import TraceCollector

#: Observer cost tiers, cheapest first.
LEVELS = ("metrics", "trace", "full")


class Observer:
    """Live observer: every hook traces, meters and (optionally) spans.

    Parameters
    ----------
    trace_capacity:
        Ring-buffer size for the trace collector (and, by default,
        the span recorder).
    clock:
        Monotonic time source shared by trace, spans and wait-timing;
        pass a virtual clock when observing a discrete-event
        simulation.
    level:
        ``"metrics"``, ``"trace"``, or ``"full"`` (default): how much
        each hook records.  ``"full"`` is the only level with a
        :attr:`spans` recorder.
    span_capacity:
        Ring size for the span recorder; defaults to ``trace_capacity``.
    """

    enabled = True

    def __init__(
        self,
        trace_capacity: int = 65_536,
        clock: Callable[[], float] | None = None,
        level: str = "full",
        span_capacity: int | None = None,
    ) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown observer level {level!r}; expected one of {LEVELS}"
            )
        self.level = level
        if clock is None:
            self.trace = TraceCollector(capacity=trace_capacity)
        else:
            self.trace = TraceCollector(
                capacity=trace_capacity, clock=clock
            )
        self._trace_on = level in ("trace", "full")
        self.spans: SpanRecorder | None = None
        if level == "full":
            self.spans = SpanRecorder(
                capacity=(
                    span_capacity if span_capacity is not None
                    else trace_capacity
                ),
                clock=self.trace.clock,
            )
        self.metrics = MetricsRegistry()
        self._mutex = threading.Lock()
        m = self.metrics
        self._lock_wait = m.histogram("lock.wait_seconds", TIME_BUCKETS)
        self._queue_depth = m.gauge("lock.queue_depth")
        self._wave_width = m.histogram("wave.width", COUNT_BUCKETS)
        self._match_latency = m.histogram(
            "engine.match_seconds", TIME_BUCKETS
        )
        self._shard_match = m.histogram(
            "match.shard_seconds", TIME_BUCKETS
        )
        self._batch_size = m.histogram("match.batch_size", COUNT_BUCKETS)
        self._merge_time = m.histogram("match.merge_seconds", TIME_BUCKETS)
        self._retry_delay = m.histogram(
            "retry.backoff_seconds", TIME_BUCKETS
        )
        self._ckpt_seconds = m.histogram(
            "storage.checkpoint_seconds", TIME_BUCKETS
        )
        self._compact_seconds = m.histogram(
            "storage.compaction_seconds", TIME_BUCKETS
        )
        self._recovery_seconds = m.histogram(
            "storage.recovery_seconds", TIME_BUCKETS
        )

    def clock(self) -> float:
        return self.trace.clock()

    def _span_for_txn(self, txn_id: str) -> Span | None:
        return self.spans.for_txn(txn_id) if self.spans is not None else None

    # -- lock manager ----------------------------------------------------------------------

    def lock_granted(
        self, txn_id: str, obj: object, mode: str,
        waited: float, queued: bool,
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.grants").inc()
            self._lock_wait.observe(waited)
        if self._trace_on:
            self.trace.emit(
                "lock.grant", txn=txn_id, obj=repr(obj), mode=mode,
                waited=waited, queued=queued,
            )
        if self.spans is not None:
            owner = self.spans.for_txn(txn_id)
            if owner is not None:
                now = self.spans.clock()
                self.spans.record(
                    "lock.acquire", start=now - waited, end=now,
                    parent=owner, obj=repr(obj), mode=mode,
                    waited=waited, queued=queued,
                )

    def lock_queued(
        self, txn_id: str, obj: object, mode: str, depth: int
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.waits").inc()
            self._queue_depth.set(depth)
        if self._trace_on:
            self.trace.emit(
                "lock.wait", txn=txn_id, obj=repr(obj), mode=mode,
                depth=depth,
            )

    def lock_denied(
        self, txn_id: str, obj: object, mode: str, reason: str
    ) -> None:
        with self._mutex:
            self.metrics.counter("lock.denials").inc()
        if self._trace_on:
            self.trace.emit(
                "lock.deny", txn=txn_id, obj=repr(obj), mode=mode,
                reason=reason,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event(
                "lock.deny", obj=repr(obj), mode=mode, reason=reason
            )

    def lock_cancelled(self, txn_id: str, obj: object, mode: str) -> None:
        with self._mutex:
            self.metrics.counter("lock.cancels").inc()
        if self._trace_on:
            self.trace.emit(
                "lock.cancel", txn=txn_id, obj=repr(obj), mode=mode
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("lock.cancel", obj=repr(obj), mode=mode)

    # -- lock schemes ----------------------------------------------------------------------

    def txn_committed(self, txn_id: str, scheme: str) -> None:
        with self._mutex:
            self.metrics.counter("txn.commits").inc()
        if self._trace_on:
            self.trace.emit("txn.commit", txn=txn_id, scheme=scheme)
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.annotate(status="committed", scheme=scheme)

    def txn_aborted(self, txn_id: str, scheme: str, reason: str) -> None:
        with self._mutex:
            self.metrics.counter("txn.aborts").inc()
        if self._trace_on:
            self.trace.emit(
                "txn.abort", txn=txn_id, scheme=scheme, reason=reason
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.annotate(status="aborted", abort_reason=reason)

    def rule_ii_abort(
        self, victim_id: str, committer_id: str, objs: Iterable[object]
    ) -> None:
        """A Wa commit force-aborted an Rc holder (Section 4.3).

        With spans on, the victim's span gets a causal link to the
        committing Wa transaction's span (kind ``"rc_wa_abort"``) —
        the edge the abort-chain analysis walks.
        """
        objs = tuple(repr(o) for o in objs)
        with self._mutex:
            self.metrics.counter("rc.rule_ii_aborts").inc()
        if self._trace_on:
            self.trace.emit(
                "rc.rule_ii_abort", victim=victim_id,
                committer=committer_id, objs=objs,
            )
        if self.spans is not None:
            victim = self.spans.for_txn(victim_id)
            committer = self.spans.for_txn(committer_id)
            if victim is not None and committer is not None:
                victim.link(committer, kind="rc_wa_abort")
                victim.annotate(
                    aborted_by_txn=committer_id,
                    aborted_by_span=committer.span_id,
                    conflict_objs=objs,
                )
                committer.event(
                    "rc.rule_ii_abort", victim=victim_id, objs=objs
                )

    def revalidation_spared(
        self, holder_id: str, committer_id: str
    ) -> None:
        with self._mutex:
            self.metrics.counter("rc.revalidated").inc()
        if self._trace_on:
            self.trace.emit(
                "rc.revalidated", holder=holder_id, committer=committer_id
            )
        owner = self._span_for_txn(holder_id)
        if owner is not None:
            owner.event("rc.revalidated", committer=committer_id)

    # -- engines ---------------------------------------------------------------------------

    def wave_started(self, wave: int, candidates: int) -> None:
        with self._mutex:
            self._wave_width.observe(candidates)
        if self._trace_on:
            self.trace.emit("wave.start", wave=wave, candidates=candidates)

    def wave_finished(
        self, wave: int, committed: int, aborted: int, deferred: int,
        duration: float,
    ) -> None:
        with self._mutex:
            m = self.metrics
            m.counter("wave.count").inc()
            m.counter("firing.committed").inc(committed)
            m.counter("firing.aborted").inc(aborted)
            m.counter("firing.deferred").inc(deferred)
        if self._trace_on:
            self.trace.emit(
                "wave.end", wave=wave, committed=committed,
                aborted=aborted, deferred=deferred, duration=duration,
            )

    def firing_committed(self, rule: str, cycle: int) -> None:
        if self._trace_on:
            self.trace.emit("firing.commit", rule=rule, cycle=cycle)

    def rollback(self, txn_id: str, undone: int) -> None:
        with self._mutex:
            self.metrics.counter("engine.rollbacks").inc()
        if self._trace_on:
            self.trace.emit("engine.rollback", txn=txn_id, undone=undone)
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("engine.rollback", undone=undone)

    def match_latency(self, seconds: float) -> None:
        with self._mutex:
            self._match_latency.observe(seconds)

    # -- robustness (faults / retries / deadlocks) -----------------------------------------

    def fault_injected(
        self, kind: str, txn_id: str, site: str, detail: str = ""
    ) -> None:
        """The fault layer fired one injected fault at a site.

        With spans on, the fault annotates the span it fired inside
        (the bound acquire/firing span of ``txn_id``).
        """
        with self._mutex:
            self.metrics.counter("fault.injected").inc()
            self.metrics.counter(f"fault.injected.{kind}").inc()
        if self._trace_on:
            self.trace.emit(
                "fault.injected", kind=kind, txn=txn_id, site=site,
                detail=detail,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event(f"fault.{kind}", site=site, detail=detail)

    def retry_attempt(
        self, rule: str, attempt: int, delay: float, reason: str
    ) -> None:
        """A timed-out/aborted firing is being re-driven after backoff."""
        with self._mutex:
            self.metrics.counter("retry.attempts").inc()
            self._retry_delay.observe(delay)
        if self._trace_on:
            self.trace.emit(
                "retry.attempt", rule=rule, attempt=attempt, delay=delay,
                reason=reason,
            )

    def retry_exhausted(self, rule: str, attempts: int, reason: str) -> None:
        """A firing used up its retry budget and was abandoned."""
        with self._mutex:
            self.metrics.counter("retry.exhausted").inc()
        if self._trace_on:
            self.trace.emit(
                "retry.exhausted", rule=rule, attempts=attempts,
                reason=reason,
            )

    def deadlock_victim(
        self, txn_id: str, cycle: Iterable[str], policy: str
    ) -> None:
        """Deadlock detection chose and aborted a victim."""
        cycle = tuple(cycle)
        with self._mutex:
            self.metrics.counter("deadlock.victims").inc()
        if self._trace_on:
            self.trace.emit(
                "deadlock.victim", victim=txn_id, cycle=cycle,
                policy=policy,
            )
        owner = self._span_for_txn(txn_id)
        if owner is not None:
            owner.event("deadlock.victim", cycle=cycle, policy=policy)

    # -- partitioned match -----------------------------------------------------------------

    def shard_match(self, shard: int, seconds: float, deltas: int) -> None:
        """One shard finished matching a delta batch."""
        with self._mutex:
            self._shard_match.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "match.shard", shard=shard, seconds=seconds, deltas=deltas
            )

    def match_batch(
        self, size: int, shards: int, merge_seconds: float
    ) -> None:
        """A partitioned delta batch was matched and merged."""
        with self._mutex:
            self.metrics.counter("match.batches").inc()
            self._batch_size.observe(size)
            self._merge_time.observe(merge_seconds)
        if self._trace_on:
            self.trace.emit(
                "match.batch", size=size, shards=shards,
                merge_seconds=merge_seconds,
            )

    # -- durable storage -------------------------------------------------------------------

    def checkpoint_completed(
        self, elements: int, lsn: int, truncated: int, seconds: float
    ) -> None:
        """The durable store landed a snapshot and truncated the WAL."""
        with self._mutex:
            self.metrics.counter("storage.checkpoints").inc()
            self.metrics.counter(
                "storage.segments_truncated"
            ).inc(truncated)
            self._ckpt_seconds.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "storage.checkpoint", elements=elements, lsn=lsn,
                truncated=truncated, seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.checkpoint", start=now - seconds, end=now,
                elements=elements, lsn=lsn, truncated=truncated,
            )

    def compaction_completed(
        self,
        records_before: int,
        records_after: int,
        segments_merged: int,
        seconds: float,
    ) -> None:
        """Sealed WAL segments were merged and cancelling pairs dropped."""
        with self._mutex:
            self.metrics.counter("storage.compactions").inc()
            self.metrics.counter("storage.records_compacted").inc(
                max(0, records_before - records_after)
            )
            self._compact_seconds.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "storage.compaction", records_before=records_before,
                records_after=records_after, segments=segments_merged,
                seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.compaction", start=now - seconds, end=now,
                records_before=records_before,
                records_after=records_after, segments=segments_merged,
            )

    def segment_rotated(
        self, segment: str, records: int, bytes_: int
    ) -> None:
        """The active WAL segment was sealed and a successor opened."""
        with self._mutex:
            self.metrics.counter("storage.rotations").inc()
        if self._trace_on:
            self.trace.emit(
                "storage.rotate", segment=segment, records=records,
                bytes=bytes_,
            )

    def recovery_completed(
        self,
        elements: int,
        replayed: int,
        shadowed: int,
        segments: int,
        seconds: float,
    ) -> None:
        """A store recovered a working memory from disk."""
        with self._mutex:
            self.metrics.counter("storage.recoveries").inc()
            self._recovery_seconds.observe(seconds)
        if self._trace_on:
            self.trace.emit(
                "storage.recovery", elements=elements, replayed=replayed,
                shadowed=shadowed, segments=segments, seconds=seconds,
            )
        if self.spans is not None:
            now = self.spans.clock()
            self.spans.record(
                "storage.recovery", start=now - seconds, end=now,
                elements=elements, replayed=replayed,
                shadowed=shadowed, segments=segments,
            )

    # -- simulators ------------------------------------------------------------------------

    def sim_event(self, ts: float, kind: str, **fields: object) -> None:
        """Virtual-time event from a discrete-event simulation."""
        with self._mutex:
            self.metrics.counter(f"{kind}.count").inc()
        if self._trace_on:
            self.trace.emit_at(ts, kind, **fields)

    def sim_observe(
        self, name: str, value: float,
        buckets: tuple[float, ...] = TIME_BUCKETS,
    ) -> None:
        """Record a virtual-time duration into a named histogram."""
        with self._mutex:
            self.metrics.histogram(name, buckets).observe(value)


def _noop(self, *args, **kwargs) -> None:
    return None


class NullObserver:
    """The disabled observer: every hook is a no-op.

    ``enabled`` is False, so correctly guarded call sites never even
    invoke the hooks; the no-op methods are a safety net for unguarded
    (cold-path) calls.  ``spans`` is None, matching a live observer
    below the ``"full"`` level.
    """

    enabled = False
    spans = None

    def clock(self) -> float:
        return 0.0


for _name in [
    attr
    for attr in vars(Observer)
    if not attr.startswith("_") and callable(getattr(Observer, attr))
    and attr != "clock"
]:
    setattr(NullObserver, _name, _noop)


#: The process-wide disabled observer (see :mod:`repro.obs`).
NULL_OBSERVER = NullObserver()
